//! End-to-end reproduction tests for every table and figure of the DSN
//! 2002 paper's evaluation (§6).
//!
//! These are the headline guarantees of the repository: each assertion
//! cites the paper value it reproduces.

use fmperf::core::{expected_reward, solve_configurations, Analysis, RewardSpec};
use fmperf::ftlqn::examples::{das_woodside_system, DasWoodsideSystem};
use fmperf::ftlqn::Configuration;
use fmperf::mama::{arch, ComponentSpace, KnowTable};
use std::collections::BTreeMap;

/// Paper-style C1..C6 / failed labels.
fn label(sys: &DasWoodsideSystem, c: &Configuration) -> &'static str {
    if c.is_failed() {
        return "failed";
    }
    let a = c.user_chains.contains(&sys.user_a);
    let b = c.user_chains.contains(&sys.user_b);
    let backup = c
        .used_services
        .values()
        .any(|&e| e == sys.e_a2 || e == sys.e_b2);
    match (a, b, backup) {
        (true, false, false) => "C1",
        (true, false, true) => "C2",
        (false, true, false) => "C3",
        (false, true, true) => "C4",
        (true, true, false) => "C5",
        (true, true, true) => "C6",
        _ => "other",
    }
}

fn column(sys: &DasWoodsideSystem, case: &str) -> BTreeMap<&'static str, f64> {
    let graph = sys.fault_graph().unwrap();
    let dist = match case {
        "perfect" => {
            let space = ComponentSpace::app_only(&sys.model);
            Analysis::new(&graph, &space).enumerate()
        }
        _ => {
            let mama = match case {
                "centralized" => arch::centralized(sys, 0.1),
                "distributed" => arch::distributed_as_published(sys, 0.1),
                "hierarchical" => arch::hierarchical(sys, 0.1),
                "network" => arch::network(sys, 0.1),
                other => panic!("unknown case {other}"),
            };
            let space = ComponentSpace::build(&sys.model, &mama);
            let table = KnowTable::build(&graph, &mama, &space);
            Analysis::new(&graph, &space)
                .with_knowledge(&table)
                .with_unmonitored_known(case == "distributed")
                .enumerate()
        }
    };
    let mut out = BTreeMap::new();
    for (c, p) in dist.iter() {
        *out.entry(label(sys, c)).or_insert(0.0) += p;
    }
    out
}

fn assert_column(case: &str, expect: &[(&str, f64)]) {
    let sys = das_woodside_system();
    let got = column(&sys, case);
    for &(lbl, val) in expect {
        let g = got.get(lbl).copied().unwrap_or(0.0);
        assert!(
            (g - val).abs() < 0.0015,
            "{case}: {lbl} = {g:.4}, paper says {val:.3}"
        );
    }
}

/// Table 1 / Table 2, perfect-knowledge column.
#[test]
fn table2_perfect_knowledge_column() {
    assert_column(
        "perfect",
        &[
            ("C1", 0.125),
            ("C2", 0.024),
            ("C3", 0.125),
            ("C4", 0.024),
            ("C5", 0.531),
            ("C6", 0.101),
            ("failed", 0.071),
        ],
    );
}

/// Table 1 / Table 2, centralized column.
#[test]
fn table2_centralized_column() {
    assert_column(
        "centralized",
        &[
            ("C1", 0.117),
            ("C2", 0.021),
            ("C3", 0.117),
            ("C4", 0.021),
            ("C5", 0.314),
            ("C6", 0.057),
            ("failed", 0.354),
        ],
    );
}

/// Table 2, distributed column — as published (see EXPERIMENTS.md for
/// the forensic reconstruction).
#[test]
fn table2_distributed_column() {
    assert_column(
        "distributed",
        &[
            ("C1", 0.082),
            ("C2", 0.041),
            ("C3", 0.307),
            ("C4", 0.036),
            ("C5", 0.349),
            ("C6", 0.046),
            ("failed", 0.139),
        ],
    );
}

/// Table 2, hierarchical column.
#[test]
fn table2_hierarchical_column() {
    assert_column(
        "hierarchical",
        &[
            ("C1", 0.225),
            ("C2", 0.014),
            ("C3", 0.076),
            ("C4", 0.014),
            ("C5", 0.206),
            ("C6", 0.037),
            ("failed", 0.428),
        ],
    );
}

/// Table 2, network column.
#[test]
fn table2_network_column() {
    assert_column(
        "network",
        &[
            ("C1", 0.148),
            ("C2", 0.026),
            ("C3", 0.148),
            ("C4", 0.026),
            ("C5", 0.282),
            ("C6", 0.049),
            ("failed", 0.321),
        ],
    );
}

/// §6.3 in-text state-space sizes: 256, 16384, 65536, 262144, 65536.
#[test]
fn statespace_sizes_match_paper() {
    let sys = das_woodside_system();
    let graph = sys.fault_graph().unwrap();
    let space = ComponentSpace::app_only(&sys.model);
    assert_eq!(Analysis::new(&graph, &space).state_space_size(), 256);
    let expect = [
        (arch::ArchKind::Centralized, 16384u64),
        (arch::ArchKind::Distributed, 65536),
        (arch::ArchKind::Hierarchical, 262144),
        (arch::ArchKind::Network, 65536),
    ];
    for (kind, states) in expect {
        let mama = arch::build(kind, &sys, 0.1);
        let space = ComponentSpace::build(&sys.model, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        let analysis = Analysis::new(&graph, &space).with_knowledge(&table);
        assert_eq!(analysis.state_space_size(), states, "{}", kind.name());
    }
}

/// §6.2 expected rewards with equal weights: perfect ~0.85, centralized
/// ~0.55 (our LQN differs from LQNS by a few percent on shared
/// configurations; the paper's own C3/C4 throughput entries are
/// inconsistent with its average-throughput rows — see EXPERIMENTS.md).
#[test]
fn expected_rewards_near_paper() {
    let sys = das_woodside_system();
    let graph = sys.fault_graph().unwrap();
    let spec = RewardSpec::new()
        .weight(sys.user_a, 1.0)
        .weight(sys.user_b, 1.0);

    let space = ComponentSpace::app_only(&sys.model);
    let dist = Analysis::new(&graph, &space).enumerate();
    let perfs = solve_configurations(&sys.model, &dist.configurations()).unwrap();
    let r = expected_reward(&dist, &perfs, &spec);
    assert!(
        (0.80..=0.95).contains(&r),
        "perfect-knowledge reward {r}, paper ~0.85"
    );

    let mama = arch::centralized(&sys, 0.1);
    let space = ComponentSpace::build(&sys.model, &mama);
    let table = KnowTable::build(&graph, &mama, &space);
    let dist = Analysis::new(&graph, &space)
        .with_knowledge(&table)
        .enumerate();
    let perfs = solve_configurations(&sys.model, &dist.configurations()).unwrap();
    let r = expected_reward(&dist, &perfs, &spec);
    assert!(
        (0.50..=0.66).contains(&r),
        "centralized reward {r}, paper ~0.55"
    );
}

/// Figure 11: as the weight of UserB grows, the architectures rank
/// distributed > network > centralized > hierarchical.
#[test]
fn figure11_ranking_reproduces() {
    let sys = das_woodside_system();
    let graph = sys.fault_graph().unwrap();
    let spec = RewardSpec::new()
        .weight(sys.user_a, 1.0)
        .weight(sys.user_b, 4.0);

    let mut rewards: BTreeMap<&str, f64> = BTreeMap::new();
    for case in ["centralized", "distributed", "hierarchical", "network"] {
        let mama = match case {
            "centralized" => arch::centralized(&sys, 0.1),
            "distributed" => arch::distributed_as_published(&sys, 0.1),
            "hierarchical" => arch::hierarchical(&sys, 0.1),
            _ => arch::network(&sys, 0.1),
        };
        let space = ComponentSpace::build(&sys.model, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        let dist = Analysis::new(&graph, &space)
            .with_knowledge(&table)
            .with_unmonitored_known(case == "distributed")
            .enumerate();
        let perfs = solve_configurations(&sys.model, &dist.configurations()).unwrap();
        rewards.insert(case, expected_reward(&dist, &perfs, &spec));
    }
    assert!(rewards["distributed"] > rewards["network"]);
    assert!(rewards["network"] > rewards["centralized"]);
    assert!(rewards["centralized"] > rewards["hierarchical"]);
}

/// The paper's §6.2 partial-coverage narrative: proc3 fails with ag2
/// down -> configuration C2 (A reconfigures, B does not) instead of C6.
#[test]
fn partial_coverage_story_reproduces() {
    use fmperf::ftlqn::{Component, KnowPolicy};
    let sys = das_woodside_system();
    let graph = sys.fault_graph().unwrap();
    let mama = arch::centralized(&sys, 0.1);
    let space = ComponentSpace::build(&sys.model, &mama);
    let table = KnowTable::build(&graph, &mama, &space);

    let mut state = space.all_up();
    state[sys.model.component_index(Component::Processor(sys.proc3))] = false;
    let ag2 = mama.component_by_name("ag2").unwrap();
    state[space.mama_index(ag2)] = false;

    let oracle = table.oracle(&state);
    let cfg = graph.configuration(&state, &oracle, KnowPolicy::AnyFailedComponent);
    assert_eq!(label(&sys, &cfg), "C2");
}
