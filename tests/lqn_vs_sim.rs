//! Validates the analytic LQN solver (which replaces the paper's LQNS
//! tool) against the independent discrete-event simulator on every
//! operational configuration of the Figure 1 system, and on a deeper
//! three-tier system.

use fmperf::core::Analysis;
use fmperf::ftlqn::examples::das_woodside_system;
use fmperf::ftlqn::lower::lower;
use fmperf::lqn::{solve, LqnModel, Multiplicity};
use fmperf::mama::ComponentSpace;
use fmperf::sim::{simulate, SimOptions};

fn sim_opts(seed: u64) -> SimOptions {
    SimOptions {
        horizon: 30_000.0,
        warmup: 3_000.0,
        seed,
        ..SimOptions::default()
    }
}

#[test]
fn analytic_tracks_simulation_on_all_paper_configurations() {
    let sys = das_woodside_system();
    let graph = sys.fault_graph().unwrap();
    let space = ComponentSpace::app_only(&sys.model);
    let dist = Analysis::new(&graph, &space).enumerate();

    for (ix, config) in dist.configurations().into_iter().enumerate() {
        if config.is_failed() {
            continue;
        }
        let lowered = lower(&sys.model, &config).unwrap();
        let ana = solve(&lowered.model).unwrap();
        let sim = simulate(&lowered.model, sim_opts(100 + ix as u64)).unwrap();
        for &chain in &[sys.user_a, sys.user_b] {
            if let Some(t) = lowered.task(chain) {
                let fa = ana.task_throughput(t);
                let fs = sim.task_throughput(t);
                let rel = (fa - fs).abs() / fs.max(1e-9);
                assert!(
                    rel < 0.12,
                    "config #{ix}, chain {}: analytic {fa:.3} vs sim {fs:.3}",
                    sys.model.task_name(chain)
                );
            }
        }
    }
}

#[test]
fn analytic_tracks_simulation_on_three_tier_chain() {
    let mut m = LqnModel::new();
    let pc = m.add_processor("pc", Multiplicity::Infinite);
    let p1 = m.add_processor("p1", Multiplicity::Finite(2));
    let p2 = m.add_processor("p2", Multiplicity::Finite(1));
    let p3 = m.add_processor("p3", Multiplicity::Finite(1));
    let users = m.add_reference_task("users", pc, 25, 0.5);
    let web = m.add_task("web", p1, Multiplicity::Finite(8));
    let app = m.add_task("app", p2, Multiplicity::Finite(4));
    let db = m.add_task("db", p3, Multiplicity::Finite(2));
    let e_u = m.add_entry("u", users, 0.0);
    let e_w = m.add_entry("w", web, 0.004);
    let e_a = m.add_entry("a", app, 0.010);
    let e_d = m.add_entry("d", db, 0.016);
    m.add_call(e_u, e_w, 1.0).unwrap();
    m.add_call(e_w, e_a, 1.0).unwrap();
    m.add_call(e_a, e_d, 2.0).unwrap();

    let ana = solve(&m).unwrap();
    let sim = simulate(&m, sim_opts(7)).unwrap();
    let fa = ana.task_throughput(users);
    let fs = sim.task_throughput(users);
    let rel = (fa - fs).abs() / fs;
    assert!(rel < 0.12, "three-tier: analytic {fa:.3} vs sim {fs:.3}");

    // Utilisation comparisons at the bottleneck.
    let ua = ana.processor_utilization(p3);
    let us = sim.processor_utilization(p3);
    assert!(
        (ua - us).abs() < 0.08,
        "db processor: analytic {ua:.3} vs sim {us:.3}"
    );
}

#[test]
fn simulation_confidence_interval_brackets_analytic_lightly_loaded() {
    // At light load approximate MVA is essentially exact, so the DES
    // confidence interval should bracket (or nearly bracket) it.
    let mut m = LqnModel::new();
    let pc = m.add_processor("pc", Multiplicity::Infinite);
    let ps = m.add_processor("ps", Multiplicity::Finite(1));
    let users = m.add_reference_task("users", pc, 4, 5.0);
    let srv = m.add_task("srv", ps, Multiplicity::Finite(2));
    let e_u = m.add_entry("u", users, 0.0);
    let e_s = m.add_entry("s", srv, 0.05);
    m.add_call(e_u, e_s, 1.0).unwrap();

    let ana = solve(&m).unwrap();
    let sim = simulate(&m, sim_opts(11)).unwrap();
    let ci = sim.chain_confidence(users).unwrap();
    let x = ana.task_throughput(users);
    assert!(
        ci.contains(x) || (x - ci.mean).abs() < 0.02,
        "analytic {x} outside CI [{}, {}]",
        ci.low(),
        ci.high()
    );
}
