//! Golden lint results for the shipped paper models: all five must be
//! error-free, and their warnings are pinned here so any lint or model
//! change that alters them is noticed.
//!
//! The expected warnings are well-understood properties of the paper's
//! §6 study setup:
//!
//! * FM211 (both user groups, every model): the paper drives the
//!   Figure 1 system with zero-think (saturated) users on purpose, to
//!   measure capacity under failures.
//! * FM110 (`proc1`/`proc2` in the published-distributed and network
//!   architectures): those architectures have no watch on the
//!   application processors, so no deciding task can learn their state
//!   — a genuine coverage gap between the four §6 architectures.
//! * FM301 (`m1`/`proc5` in the centralized architecture): the single
//!   central manager — and the processor it runs on — is a structural
//!   management-plane SPOF, which is exactly the weakness the paper's
//!   hierarchical and distributed variants exist to remove.

use fmperf::lint::{lint, LintCode, Severity};
use fmperf::text::parse_lenient;

fn model_diags(name: &str) -> Vec<(LintCode, Severity)> {
    let path = format!("{}/models/{name}.fmp", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    let parsed = parse_lenient(&src).unwrap_or_else(|e| panic!("{path}: {e}"));
    lint(&parsed)
        .into_iter()
        .map(|d| (d.code, d.severity))
        .collect()
}

fn warnings(diags: &[(LintCode, Severity)]) -> Vec<LintCode> {
    diags
        .iter()
        .filter(|(_, s)| *s == Severity::Warning)
        .map(|&(c, _)| c)
        .collect()
}

#[test]
fn all_paper_models_lint_without_errors() {
    for name in [
        "paper-centralized",
        "paper-distributed-as-drawn",
        "paper-distributed-as-published",
        "paper-hierarchical",
        "paper-network",
    ] {
        let diags = model_diags(name);
        assert!(
            !diags.iter().any(|(_, s)| *s == Severity::Error),
            "{name}: {diags:?}"
        );
        // Every model gets exactly one state-space note.
        assert_eq!(
            diags
                .iter()
                .filter(|&&(c, _)| c == LintCode::StateSpace)
                .count(),
            1,
            "{name}: {diags:?}"
        );
    }
}

#[test]
fn expected_warnings_centralized() {
    // The structural audit proves the single manager (and its host
    // processor) is an order-1 coverage cut.
    let w = warnings(&model_diags("paper-centralized"));
    assert_eq!(
        w,
        vec![
            LintCode::ManagementSpof,
            LintCode::ManagementSpof,
            LintCode::SaturatedUsers,
            LintCode::SaturatedUsers,
        ]
    );
}

#[test]
fn expected_warnings_distributed_as_drawn() {
    // The mutual manager notification (dm1 <-> dm2) is watch-fed and
    // must NOT trip FM111.
    let w = warnings(&model_diags("paper-distributed-as-drawn"));
    assert_eq!(w, vec![LintCode::SaturatedUsers, LintCode::SaturatedUsers]);
}

#[test]
fn expected_warnings_distributed_as_published() {
    let w = warnings(&model_diags("paper-distributed-as-published"));
    assert_eq!(
        w,
        vec![
            LintCode::Unmonitored,
            LintCode::Unmonitored,
            LintCode::SaturatedUsers,
            LintCode::SaturatedUsers,
        ]
    );
}

#[test]
fn expected_warnings_hierarchical() {
    let w = warnings(&model_diags("paper-hierarchical"));
    assert_eq!(w, vec![LintCode::SaturatedUsers, LintCode::SaturatedUsers]);
}

#[test]
fn expected_warnings_network() {
    let w = warnings(&model_diags("paper-network"));
    assert_eq!(
        w,
        vec![
            LintCode::Unmonitored,
            LintCode::Unmonitored,
            LintCode::SaturatedUsers,
            LintCode::SaturatedUsers,
        ]
    );
}

#[test]
fn json_lint_of_centralized_has_zero_errors() {
    let path = format!(
        "{}/models/paper-centralized.fmp",
        env!("CARGO_MANIFEST_DIR")
    );
    let src = std::fs::read_to_string(&path).unwrap();
    let parsed = parse_lenient(&src).unwrap();
    let diags = lint(&parsed);
    let json = fmperf::lint::render_json(&path, &diags);
    assert!(json.contains("\"errors\": 0"), "{json}");
}
