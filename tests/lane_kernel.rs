//! Lane-kernel differentials on the shipped paper models: the
//! SIMD-width lane scan must agree with the scalar compiled kernel —
//! and with the naive reference enumerator — **exactly**, at every
//! supported lane width.  `ConfigDistribution` compares probabilities
//! with `==`, so these are bit-identity assertions, not tolerances.

use fmperf::core::{Analysis, LANE_WIDTH};
use fmperf::ftlqn::FaultGraph;
use fmperf::mama::{ComponentSpace, KnowTable};
use fmperf::text::parse;

/// Every shipped model file with its knowledge default (see
/// `tests/mtbdd_engine.rs` for the `paper-distributed-as-published`
/// reading).
const MODELS: [(&str, bool); 5] = [
    ("paper-centralized.fmp", false),
    ("paper-distributed-as-drawn.fmp", false),
    ("paper-distributed-as-published.fmp", true),
    ("paper-hierarchical.fmp", false),
    ("paper-network.fmp", false),
];

fn load(name: &str) -> fmperf::text::ParsedModel {
    let path = format!("{}/models/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    parse(&src).unwrap_or_else(|e| panic!("{path}: {e}"))
}

#[test]
fn lane_kernel_is_bit_identical_on_every_model_file() {
    assert_eq!(LANE_WIDTH, 8);
    for (name, unmonitored) in MODELS {
        let m = load(name);
        let graph = FaultGraph::build(&m.app).unwrap();
        let space = ComponentSpace::build(&m.app, &m.mama);
        let table = KnowTable::build(&graph, &m.mama, &space);
        let analysis = Analysis::new(&graph, &space)
            .with_knowledge(&table)
            .with_unmonitored_known(unmonitored);
        let kernel = analysis.compile().expect("paper models compile");
        let scalar = kernel.enumerate_scalar();
        assert_eq!(
            scalar,
            analysis.enumerate_naive(),
            "{name}: scalar kernel vs naive"
        );
        for width in [1usize, 2, 4, 8] {
            assert_eq!(
                kernel.enumerate_with_lane_width(width),
                scalar,
                "{name}: lane width {width} vs scalar"
            );
        }
        // The default engine path is the full-width lane scan.
        assert_eq!(kernel.enumerate(), scalar, "{name}: default vs scalar");
    }
}
