//! Concurrent soak test for the `fmperf serve` daemon.
//!
//! Eight client threads hammer one live server with a mix of valid,
//! invalid and deadline-starved requests (plus fault injections via the
//! test routes) and assert the crash-tolerance contract end to end:
//!
//! * every connection is answered — none dropped, none hung;
//! * deliberately panicking requests answer `500` and the pool keeps
//!   serving (zero poisoned workers at drain);
//! * every deadline-starved request degrades to a sampling engine and
//!   reports a confidence interval;
//! * repeated analyses of the same model hit the compiled-model cache;
//! * a saturated single-worker server sheds with `503 Retry-After`;
//! * and the observability contract holds under load: every response
//!   carries a request id matching an access-log line, the per-endpoint
//!   histograms count exactly the requests served, queue-wait shows up
//!   under saturation, shed 503s carry ids, and `/debug/slow` returns
//!   the span tree of a deliberately starved request.

use fmperf::serve::{ServeConfig, Server, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const MODEL: &str = "processor pc cores inf\nprocessor p1 fail 0.1\n\
    users u on pc population 5 think 1.0\ntask s on p1 fail 0.1\n\
    entry eu of u\nentry es of s demand 0.2\ncall eu -> es\n\
    mgmtproc pm fail 0.05\nmanager mgr on pm fail 0.05\n\
    watch alive s -> mgr\nwatch alive p1 -> mgr\nreward u 1.0\n";

fn start(threads: usize, queue_depth: usize) -> ServerHandle {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads,
        queue_depth,
        test_routes: true,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port")
}

/// Like [`start`], but with a JSON-lines access log at `log_path`.
fn start_logged(threads: usize, queue_depth: usize, log_path: &std::path::Path) -> ServerHandle {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads,
        queue_depth,
        access_log: Some(log_path.to_str().expect("utf-8 path").into()),
        test_routes: true,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port")
}

/// A fresh per-test temp path (tests run in one process; the name keys
/// them apart).
fn temp_log(name: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("fmperf-soak-{}-{name}.log", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// The `x-fmperf-request-id` header value of a raw response.
fn header_id(response: &str) -> u64 {
    response
        .lines()
        .find_map(|l| l.strip_prefix("x-fmperf-request-id: "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("response must carry a request id: {response}"))
}

/// The first sample value of the `/metrics` line starting with `prefix`.
fn metric_value(metrics: &str, prefix: &str) -> u64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(prefix))
        .and_then(|rest| rest.trim().parse().ok())
        .unwrap_or_else(|| panic!("metric {prefix} missing: {metrics}"))
}

/// One raw HTTP exchange; panics (failing the test) if the connection
/// is refused or closed without a complete response.
fn send(addr: SocketAddr, raw: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read response");
    assert!(out.starts_with("HTTP/1.1 "), "incomplete response: {out:?}");
    out
}

fn post(addr: SocketAddr, target: &str, body: &str) -> String {
    send(
        addr,
        &format!(
            "POST {target} HTTP/1.1\r\nHost: soak\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn status_of(response: &str) -> u16 {
    response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line")
}

#[test]
fn mixed_load_soak() {
    let server = start(4, 32);
    let addr = server.local_addr();
    let answered = Arc::new(AtomicU64::new(0));

    const CLIENTS: usize = 8;
    const ROUNDS: usize = 6;
    let mut handles = Vec::new();
    for client in 0..CLIENTS {
        let answered = Arc::clone(&answered);
        handles.push(std::thread::spawn(move || {
            for round in 0..ROUNDS {
                match (client + round) % 4 {
                    // Valid analysis; after the very first compile every
                    // one of these is a cache hit.
                    0 => {
                        let reply = post(addr, "/v1/analyze", MODEL);
                        assert_eq!(status_of(&reply), 200, "{reply}");
                        assert!(reply.contains("\"model_hash\": \"sha256:"), "{reply}");
                        assert!(
                            reply.contains("\"cache\": \"hit\"")
                                || reply.contains("\"cache\": \"miss\""),
                            "{reply}"
                        );
                    }
                    // Hostile garbage: bounded diagnostics, never a 5xx.
                    1 => {
                        let reply = post(addr, "/v1/analyze", "bogus\nnonsense line\n");
                        assert_eq!(status_of(&reply), 400, "{reply}");
                        assert!(reply.contains("\"diagnostics\""), "{reply}");
                    }
                    // Deadline-starved: every exact rung refused via the
                    // caps, so the answer must be a sampled engine with
                    // a finite confidence interval.  `policy=all` keys
                    // these apart from the healthy requests' cache
                    // entry (a cache hit would rightly beat degrading).
                    2 => {
                        let reply = post(
                            addr,
                            "/v1/analyze?budget_ms=40&budget_states=1&budget_nodes=1\
                             &budget_memo=1&samples=2000&policy=all",
                            MODEL,
                        );
                        assert_eq!(status_of(&reply), 200, "{reply}");
                        assert!(
                            reply.contains("\"engine\": \"monte-carlo\"")
                                || reply.contains("\"engine\": \"importance-sampling\""),
                            "starved request must degrade: {reply}"
                        );
                        assert!(reply.contains("\"estimate\""), "{reply}");
                        assert!(reply.contains("\"failed_half_width\""), "{reply}");
                        assert!(reply.contains("\"descents\""), "{reply}");
                    }
                    // Fault injection: the handler panics, the request
                    // answers 500, and the pool survives.
                    _ => {
                        let reply =
                            send(addr, "POST /v1/test/panic HTTP/1.1\r\nHost: soak\r\n\r\n");
                        assert_eq!(status_of(&reply), 500, "{reply}");
                    }
                }
                answered.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    for h in handles {
        h.join().expect("client thread");
    }
    assert_eq!(
        answered.load(Ordering::Relaxed),
        (CLIENTS * ROUNDS) as u64,
        "every request answered"
    );

    // The pool still serves after a dozen injected panics.
    let health = send(addr, "GET /healthz HTTP/1.1\r\nHost: soak\r\n\r\n");
    assert_eq!(status_of(&health), 200);
    let reply = post(addr, "/v1/analyze", MODEL);
    assert!(reply.contains("\"cache\": \"hit\""), "{reply}");

    let report = server.shutdown();
    assert_eq!(report.worker_panics, 0, "no worker escaped isolation");
    assert!(report.panics_caught >= (CLIENTS * ROUNDS / 4) as u64);
    assert!(report.served >= (CLIENTS * ROUNDS) as u64);
}

#[test]
fn saturation_sheds_with_retry_after() {
    // One worker, a one-slot queue, and a request that parks the worker:
    // concurrent clients must see 503 + Retry-After, not hangs.
    let server = start(1, 1);
    let addr = server.local_addr();

    let sleeper = std::thread::spawn(move || {
        send(
            addr,
            "GET /v1/test/sleep?ms=1500 HTTP/1.1\r\nHost: soak\r\n\r\n",
        )
    });
    // Let the sleeper occupy the worker before flooding.
    std::thread::sleep(Duration::from_millis(300));

    let mut sheds = 0;
    let mut answered = 0;
    let mut flooders = Vec::new();
    for _ in 0..8 {
        flooders.push(std::thread::spawn(move || {
            send(addr, "GET /healthz HTTP/1.1\r\nHost: soak\r\n\r\n")
        }));
    }
    for f in flooders {
        let reply = f.join().expect("flooder thread");
        answered += 1;
        if status_of(&reply) == 503 {
            assert!(
                reply.to_ascii_lowercase().contains("retry-after: 1"),
                "shed response carries Retry-After: {reply}"
            );
            assert!(
                reply.contains("\"request_id\": "),
                "shed 503 carries a request id in its body: {reply}"
            );
            header_id(&reply);
            sheds += 1;
        }
    }
    assert_eq!(answered, 8, "every flooded connection answered");
    assert!(sheds >= 1, "saturation must shed at least one request");

    assert_eq!(status_of(&sleeper.join().unwrap()), 200);

    // The admitted flooders sat in the queue behind the sleeper, so the
    // saturated queue must show up in the queue-wait histogram.
    let metrics = send(addr, "GET /metrics HTTP/1.1\r\nHost: soak\r\n\r\n");
    let ops_wait_sum = metric_value(
        &metrics,
        "fmperf_request_queue_wait_ns_sum{endpoint=\"ops\"} ",
    );
    assert!(
        ops_wait_sum > 0,
        "queue-wait histogram non-zero under saturation: {metrics}"
    );

    let report = server.shutdown();
    assert_eq!(report.worker_panics, 0);
    assert!(report.shed >= sheds as u64);
}

#[test]
fn drain_completes_inflight_work() {
    let log_path = temp_log("drain");
    let server = start_logged(2, 8, &log_path);
    let addr = server.local_addr();

    // Park a request, then ask the daemon to drain while it is still
    // in flight; the sleeper must complete, not be dropped.
    let sleeper = std::thread::spawn(move || {
        send(
            addr,
            "GET /v1/test/sleep?ms=800 HTTP/1.1\r\nHost: soak\r\n\r\n",
        )
    });
    std::thread::sleep(Duration::from_millis(200));
    let quit = send(addr, "POST /quitquitquit HTTP/1.1\r\nHost: soak\r\n\r\n");
    assert_eq!(status_of(&quit), 200, "{quit}");

    assert_eq!(
        status_of(&sleeper.join().unwrap()),
        200,
        "in-flight request drained"
    );
    let report = server.wait();
    assert_eq!(report.worker_panics, 0);

    // Drain leaves zero unlogged in-flight requests: every admitted
    // request (the sleeper included) has its access-log line.
    let log = std::fs::read_to_string(&log_path).expect("access log");
    let lines: Vec<&str> = log.lines().collect();
    assert_eq!(
        lines.len() as u64,
        report.access_lines,
        "every written line accounted for"
    );
    let non_shed = lines
        .iter()
        .filter(|l| !l.contains("\"disposition\": \"shed\""))
        .count() as u64;
    assert_eq!(non_shed, report.served, "no served request went unlogged");
    assert!(
        log.contains("/v1/test/sleep"),
        "the drained in-flight request is logged: {log}"
    );
    assert!(
        log.contains("\"disposition\": \"drain\"") || log.contains("\"disposition\": \"ok\""),
        "{log}"
    );
    let _ = std::fs::remove_file(&log_path);
}

#[test]
fn observability_end_to_end() {
    let log_path = temp_log("obs");
    let server = start_logged(2, 16, &log_path);
    let addr = server.local_addr();

    // A handful of healthy analyses (first compiles, the rest hit the
    // cache) plus one deliberately starved request that descends the
    // ladder — the slowest request the daemon will see.
    let mut ids = Vec::new();
    for _ in 0..4 {
        let reply = post(addr, "/v1/analyze", MODEL);
        assert_eq!(status_of(&reply), 200, "{reply}");
        let id = header_id(&reply);
        assert!(
            reply.contains(&format!("\"request_id\": {id}")),
            "header id matches body: {reply}"
        );
        assert!(
            reply.contains("\"timings\": {\"queue_wait_ns\": "),
            "{reply}"
        );
        ids.push(id);
    }
    let starved = post(
        addr,
        "/v1/analyze?budget_ms=40&budget_states=1&budget_nodes=1\
         &budget_memo=1&samples=2000&policy=all",
        MODEL,
    );
    assert_eq!(status_of(&starved), 200, "{starved}");
    let starved_id = header_id(&starved);
    ids.push(starved_id);

    // The analyze latency histogram counts exactly the analyze
    // requests served so far.
    let metrics = send(addr, "GET /metrics HTTP/1.1\r\nHost: soak\r\n\r\n");
    assert_eq!(
        metric_value(
            &metrics,
            "fmperf_request_duration_ns_count{endpoint=\"analyze\"} ",
        ),
        5,
        "{metrics}"
    );
    assert!(
        metrics.contains("fmperf_request_duration_ns_bucket{endpoint=\"analyze\",le=\"+Inf\"} 5"),
        "{metrics}"
    );
    assert!(metrics.contains("# TYPE fmperf_request_duration_ns histogram"));
    assert!(
        metrics.contains("fmperf_build_info{version=\""),
        "{metrics}"
    );
    assert!(
        metric_value(&metrics, "fmperf_access_log_lines_total ") >= 5,
        "{metrics}"
    );

    // The starved request is in the slow ring with a non-empty span
    // tree (parse at minimum; the ladder descent adds more).
    let slow = send(addr, "GET /debug/slow HTTP/1.1\r\nHost: soak\r\n\r\n");
    assert_eq!(status_of(&slow), 200, "{slow}");
    assert!(
        slow.contains(&format!("\"id\": {starved_id}")),
        "the starved request is retained: {slow}"
    );
    assert!(slow.contains("\"phase\": \"parse\""), "{slow}");
    assert!(
        slow.contains("\"spans\": [{"),
        "non-empty span tree: {slow}"
    );

    let ids_from_responses = ids.clone();
    let report = server.shutdown();
    assert_eq!(report.worker_panics, 0);

    // Every response id has its access-log line, every line is a flat
    // JSON object, and nothing served went unlogged.
    let log = std::fs::read_to_string(&log_path).expect("access log");
    let lines: Vec<&str> = log.lines().collect();
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "JSONL line: {line}"
        );
        assert!(line.contains("\"id\": "), "{line}");
        assert!(line.contains("\"total_ns\": "), "{line}");
    }
    for id in ids_from_responses {
        assert!(
            lines.iter().any(|l| l.contains(&format!("\"id\": {id},"))),
            "response id {id} must appear in the access log: {log}"
        );
    }
    let non_shed = lines
        .iter()
        .filter(|l| !l.contains("\"disposition\": \"shed\""))
        .count() as u64;
    assert_eq!(non_shed, report.served, "zero unlogged requests");
    assert!(
        log.contains("\"engine\": \"monte-carlo\"")
            || log.contains("\"engine\": \"importance-sampling\""),
        "the starved request logs its degraded engine: {log}"
    );
    assert!(log.contains("\"cache\": \"hit\""), "{log}");
    let _ = std::fs::remove_file(&log_path);
}
