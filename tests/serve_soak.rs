//! Concurrent soak test for the `fmperf serve` daemon.
//!
//! Eight client threads hammer one live server with a mix of valid,
//! invalid and deadline-starved requests (plus fault injections via the
//! test routes) and assert the crash-tolerance contract end to end:
//!
//! * every connection is answered — none dropped, none hung;
//! * deliberately panicking requests answer `500` and the pool keeps
//!   serving (zero poisoned workers at drain);
//! * every deadline-starved request degrades to a sampling engine and
//!   reports a confidence interval;
//! * repeated analyses of the same model hit the compiled-model cache;
//! * a saturated single-worker server sheds with `503 Retry-After`.

use fmperf::serve::{ServeConfig, Server, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const MODEL: &str = "processor pc cores inf\nprocessor p1 fail 0.1\n\
    users u on pc population 5 think 1.0\ntask s on p1 fail 0.1\n\
    entry eu of u\nentry es of s demand 0.2\ncall eu -> es\n\
    mgmtproc pm fail 0.05\nmanager mgr on pm fail 0.05\n\
    watch alive s -> mgr\nwatch alive p1 -> mgr\nreward u 1.0\n";

fn start(threads: usize, queue_depth: usize) -> ServerHandle {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads,
        queue_depth,
        test_routes: true,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port")
}

/// One raw HTTP exchange; panics (failing the test) if the connection
/// is refused or closed without a complete response.
fn send(addr: SocketAddr, raw: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read response");
    assert!(out.starts_with("HTTP/1.1 "), "incomplete response: {out:?}");
    out
}

fn post(addr: SocketAddr, target: &str, body: &str) -> String {
    send(
        addr,
        &format!(
            "POST {target} HTTP/1.1\r\nHost: soak\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn status_of(response: &str) -> u16 {
    response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line")
}

#[test]
fn mixed_load_soak() {
    let server = start(4, 32);
    let addr = server.local_addr();
    let answered = Arc::new(AtomicU64::new(0));

    const CLIENTS: usize = 8;
    const ROUNDS: usize = 6;
    let mut handles = Vec::new();
    for client in 0..CLIENTS {
        let answered = Arc::clone(&answered);
        handles.push(std::thread::spawn(move || {
            for round in 0..ROUNDS {
                match (client + round) % 4 {
                    // Valid analysis; after the very first compile every
                    // one of these is a cache hit.
                    0 => {
                        let reply = post(addr, "/v1/analyze", MODEL);
                        assert_eq!(status_of(&reply), 200, "{reply}");
                        assert!(reply.contains("\"model_hash\": \"sha256:"), "{reply}");
                        assert!(
                            reply.contains("\"cache\": \"hit\"")
                                || reply.contains("\"cache\": \"miss\""),
                            "{reply}"
                        );
                    }
                    // Hostile garbage: bounded diagnostics, never a 5xx.
                    1 => {
                        let reply = post(addr, "/v1/analyze", "bogus\nnonsense line\n");
                        assert_eq!(status_of(&reply), 400, "{reply}");
                        assert!(reply.contains("\"diagnostics\""), "{reply}");
                    }
                    // Deadline-starved: every exact rung refused via the
                    // caps, so the answer must be a sampled engine with
                    // a finite confidence interval.  `policy=all` keys
                    // these apart from the healthy requests' cache
                    // entry (a cache hit would rightly beat degrading).
                    2 => {
                        let reply = post(
                            addr,
                            "/v1/analyze?budget_ms=40&budget_states=1&budget_nodes=1\
                             &budget_memo=1&samples=2000&policy=all",
                            MODEL,
                        );
                        assert_eq!(status_of(&reply), 200, "{reply}");
                        assert!(
                            reply.contains("\"engine\": \"monte-carlo\"")
                                || reply.contains("\"engine\": \"importance-sampling\""),
                            "starved request must degrade: {reply}"
                        );
                        assert!(reply.contains("\"estimate\""), "{reply}");
                        assert!(reply.contains("\"failed_half_width\""), "{reply}");
                        assert!(reply.contains("\"descents\""), "{reply}");
                    }
                    // Fault injection: the handler panics, the request
                    // answers 500, and the pool survives.
                    _ => {
                        let reply =
                            send(addr, "POST /v1/test/panic HTTP/1.1\r\nHost: soak\r\n\r\n");
                        assert_eq!(status_of(&reply), 500, "{reply}");
                    }
                }
                answered.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    for h in handles {
        h.join().expect("client thread");
    }
    assert_eq!(
        answered.load(Ordering::Relaxed),
        (CLIENTS * ROUNDS) as u64,
        "every request answered"
    );

    // The pool still serves after a dozen injected panics.
    let health = send(addr, "GET /healthz HTTP/1.1\r\nHost: soak\r\n\r\n");
    assert_eq!(status_of(&health), 200);
    let reply = post(addr, "/v1/analyze", MODEL);
    assert!(reply.contains("\"cache\": \"hit\""), "{reply}");

    let report = server.shutdown();
    assert_eq!(report.worker_panics, 0, "no worker escaped isolation");
    assert!(report.panics_caught >= (CLIENTS * ROUNDS / 4) as u64);
    assert!(report.served >= (CLIENTS * ROUNDS) as u64);
}

#[test]
fn saturation_sheds_with_retry_after() {
    // One worker, a one-slot queue, and a request that parks the worker:
    // concurrent clients must see 503 + Retry-After, not hangs.
    let server = start(1, 1);
    let addr = server.local_addr();

    let sleeper = std::thread::spawn(move || {
        send(
            addr,
            "GET /v1/test/sleep?ms=1500 HTTP/1.1\r\nHost: soak\r\n\r\n",
        )
    });
    // Let the sleeper occupy the worker before flooding.
    std::thread::sleep(Duration::from_millis(300));

    let mut sheds = 0;
    let mut answered = 0;
    let mut flooders = Vec::new();
    for _ in 0..8 {
        flooders.push(std::thread::spawn(move || {
            send(addr, "GET /healthz HTTP/1.1\r\nHost: soak\r\n\r\n")
        }));
    }
    for f in flooders {
        let reply = f.join().expect("flooder thread");
        answered += 1;
        if status_of(&reply) == 503 {
            assert!(
                reply.to_ascii_lowercase().contains("retry-after: 1"),
                "shed response carries Retry-After: {reply}"
            );
            sheds += 1;
        }
    }
    assert_eq!(answered, 8, "every flooded connection answered");
    assert!(sheds >= 1, "saturation must shed at least one request");

    assert_eq!(status_of(&sleeper.join().unwrap()), 200);
    let report = server.shutdown();
    assert_eq!(report.worker_panics, 0);
    assert!(report.shed >= sheds as u64);
}

#[test]
fn drain_completes_inflight_work() {
    let server = start(2, 8);
    let addr = server.local_addr();

    // Park a request, then ask the daemon to drain while it is still
    // in flight; the sleeper must complete, not be dropped.
    let sleeper = std::thread::spawn(move || {
        send(
            addr,
            "GET /v1/test/sleep?ms=800 HTTP/1.1\r\nHost: soak\r\n\r\n",
        )
    });
    std::thread::sleep(Duration::from_millis(200));
    let quit = send(addr, "POST /quitquitquit HTTP/1.1\r\nHost: soak\r\n\r\n");
    assert_eq!(status_of(&quit), 200, "{quit}");

    assert_eq!(
        status_of(&sleeper.join().unwrap()),
        200,
        "in-flight request drained"
    );
    let report = server.wait();
    assert_eq!(report.worker_panics, 0);
}
