//! Differential tests for the fault-injection campaign.
//!
//! For each of the paper's four management architectures, the campaign's
//! per-scenario numbers are recomputed from scratch by mutating the
//! model by hand — pinning the injected element's failure probability to
//! 1 and re-running the exact analysis — and must agree bit-for-bit.
//! The centralized architecture additionally gets hand-computed coverage
//! expectations: its single manager is a single point of knowledge.

use fmperf::core::{run_campaign, Analysis, CampaignOptions};
use fmperf::ftlqn::examples::das_woodside_system;
use fmperf::ftlqn::FaultGraph;
use fmperf::mama::{arch, single_scenarios, ComponentSpace, KnowTable, MamaModel};
use std::collections::BTreeSet;

/// Recomputes one injected model's failure probability and covered set
/// with the plain unguarded exact engine, mirroring the campaign's
/// coverage probe.
fn recompute(
    graph: &FaultGraph<'_>,
    mama: &MamaModel,
    opts: &CampaignOptions,
) -> (f64, BTreeSet<String>) {
    let space = ComponentSpace::build(graph.model(), mama);
    let table = KnowTable::build(graph, mama, &space);
    let analysis = Analysis::new(graph, &space)
        .with_knowledge(&table)
        .with_policy(opts.policy)
        .with_unmonitored_known(opts.unmonitored_known);
    let dist = analysis.enumerate();

    let mut probe = space.all_up();
    for (ix, up) in probe.iter_mut().enumerate() {
        if space.up_prob(ix) == 0.0 {
            *up = false;
        }
    }
    let mut covered = BTreeSet::new();
    for (&(component, _decider), know) in table.iter() {
        if know.holds(&probe) {
            covered.insert(graph.model().component_name(component).to_string());
        }
    }
    (dist.failed_probability(), covered)
}

/// Campaign results must match an independent hand-mutation of the model
/// for every single-injection scenario of every architecture.
#[test]
fn campaign_matches_hand_mutated_models() {
    let sys = das_woodside_system();
    let graph = sys.fault_graph().unwrap();
    let architectures: [(&str, MamaModel); 4] = [
        ("centralized", arch::centralized(&sys, 0.1)),
        ("distributed", arch::distributed_as_published(&sys, 0.1)),
        ("hierarchical", arch::hierarchical(&sys, 0.1)),
        ("network", arch::network(&sys, 0.1)),
    ];
    for (name, mama) in &architectures {
        let opts = CampaignOptions {
            unmonitored_known: *name == "distributed",
            ..CampaignOptions::default()
        };
        let report = run_campaign(&graph, mama, None, &opts);
        assert_eq!(report.failures().count(), 0, "{name}: no scenario may fail");

        let scenarios = single_scenarios(mama);
        assert_eq!(
            report.scenarios.len(),
            scenarios.len(),
            "{name}: campaign must cover every single-injection scenario"
        );
        for (outcome, scenario) in report.scenarios.iter().zip(&scenarios) {
            let analysed = outcome.result.as_ref().expect("no failures");
            assert_eq!(
                outcome.label,
                scenario.label(mama),
                "{name}: scenario order"
            );

            let injected = scenario.apply(mama);
            let (failed, covered) = recompute(&graph, &injected, &opts);
            assert_eq!(
                analysed.failed_probability, failed,
                "{name}/{}: failure probability differs from hand mutation",
                outcome.label
            );
            assert_eq!(
                analysed.covered, covered,
                "{name}/{}: covered set differs from hand mutation",
                outcome.label
            );
            // Injections only remove knowledge and availability.
            assert!(
                analysed.failed_probability >= report.baseline.failed_probability - 1e-12,
                "{name}/{}: an injection cannot improve availability",
                outcome.label
            );
            assert_eq!(
                analysed.coverage_loss(),
                analysed.newly_uncovered.len(),
                "{name}/{}: coverage loss must count the newly uncovered",
                outcome.label
            );
        }
    }
}

/// Hand-computed coverage expectations for the centralized architecture:
/// the single manager `m1` (and the processor `proc5` it runs on) is a
/// single point of knowledge, while killing one agent only blinds the
/// manager to what that agent watched.
#[test]
fn centralized_injections_match_hand_computed_coverage() {
    let sys = das_woodside_system();
    let graph = sys.fault_graph().unwrap();
    let mama = arch::centralized(&sys, 0.1);
    let report = run_campaign(&graph, &mama, None, &CampaignOptions::default());

    let baseline = &report.baseline;
    assert!(
        !baseline.covered.is_empty(),
        "centralized baseline must cover something"
    );

    let by_label = |label: &str| {
        report
            .scenarios
            .iter()
            .find(|s| s.label == label)
            .unwrap_or_else(|| panic!("scenario {label} missing"))
            .result
            .as_ref()
            .expect("scenario analyses cleanly")
    };

    // Killing the only manager loses every covered component.
    let kill_mgr = by_label("kill-manager(m1)");
    assert!(kill_mgr.covered.is_empty(), "no knowledge without m1");
    assert_eq!(
        kill_mgr.newly_uncovered,
        baseline.covered.iter().cloned().collect::<Vec<_>>(),
        "everything the baseline covered is newly uncovered"
    );
    assert_eq!(kill_mgr.coverage_loss(), baseline.covered.len());

    // Failing the management processor strands the manager: identical
    // knowledge outcome.
    let fail_proc = by_label("fail-processor(proc5)");
    assert_eq!(fail_proc.covered, kill_mgr.covered);
    assert_eq!(fail_proc.failed_probability, kill_mgr.failed_probability);

    // ag3 is the only sensing path for the Server1 task (proc3 keeps its
    // direct alive-watch from m1): killing it uncovers exactly Server1.
    let kill_ag3 = by_label("kill-agent(ag3)");
    assert_eq!(kill_ag3.newly_uncovered, vec!["Server1".to_string()]);
    assert_eq!(kill_ag3.coverage_loss(), 1);

    // ag1 only carries AppA's notification hop; the servers stay covered
    // through AppB's decider pairs, so no *component* loses coverage —
    // but availability still suffers.
    let kill_ag1 = by_label("kill-agent(ag1)");
    assert_eq!(kill_ag1.coverage_loss(), 0);
    assert!(kill_ag1.failed_probability > baseline.failed_probability + 1e-9);
}
