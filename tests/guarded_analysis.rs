//! Property-based tests for the budget-guarded degradation ladder.
//!
//! Random layered applications are wrapped in random [`synthesize`]d
//! management planes and analysed under adversarial budgets — expired
//! deadlines, one-state caps, single-node MTBDD limits, empty memo
//! allowances.  The ladder's contract: it never panics, it always comes
//! back with a distribution, and whenever it stays on an exact scan rung
//! the result is bit-identical to the unguarded engine.

use fmperf::core::{Analysis, AnalysisBudget, EngineKind, GuardedOptions};
use fmperf::ftlqn::{FaultGraph, FtlqnModel, RequestTarget};
use fmperf::lqn::Multiplicity;
use fmperf::mama::{synthesize, ComponentSpace, KnowTable, SynthOptions};
use proptest::prelude::*;
use std::time::Duration;

/// Parameters drawn by proptest; the scenario is built deterministically
/// from them.
#[derive(Debug, Clone)]
struct Params {
    chains: usize,
    servers: usize,
    fail_app: Vec<f64>,
    mgmt_fail: f64,
    domains: usize,
    hierarchical: bool,
}

fn params() -> impl Strategy<Value = Params> {
    (
        1usize..=2,
        1usize..=2,
        proptest::collection::vec(0.0f64..0.4, 6),
        0.0f64..0.4,
        1usize..=3,
        any::<bool>(),
    )
        .prop_map(
            |(chains, servers, fail_app, mgmt_fail, domains, hierarchical)| Params {
                chains,
                servers,
                fail_app,
                mgmt_fail,
                domains,
                hierarchical,
            },
        )
}

/// Budgets that hit every refusal path: expired deadlines, one-state
/// caps, single-node MTBDD limits, empty memo allowances — plus the
/// generous defaults that should sail through on the first rung.
fn budgets() -> impl Strategy<Value = AnalysisBudget> {
    (
        prop_oneof![
            Just(None),
            Just(Some(Duration::ZERO)),
            Just(Some(Duration::from_secs(30))),
        ],
        prop_oneof![
            Just(1u64),
            Just(16),
            Just(1024),
            Just(1u64 << 22),
            Just(u64::MAX)
        ],
        prop_oneof![Just(1usize), Just(64), Just(usize::MAX)],
        prop_oneof![Just(0usize), Just(8), Just(usize::MAX)],
    )
        .prop_map(
            |(deadline, max_states, max_mtbdd_nodes, max_memo_entries)| AnalysisBudget {
                deadline,
                max_states,
                max_mtbdd_nodes,
                max_memo_entries,
            },
        )
}

/// A layered app (users → department task → server pool over priority
/// services) plus a synthesised management plane.
fn build(p: &Params) -> (FtlqnModel, fmperf::mama::MamaModel) {
    let mut app = FtlqnModel::new();
    let pc = app.add_processor("user-pc", 0.0, Multiplicity::Infinite);

    let mut server_entries = Vec::new();
    for s in 0..p.servers {
        let proc = app.add_processor(
            format!("sp{s}"),
            p.fail_app[s % p.fail_app.len()],
            Multiplicity::Finite(1),
        );
        let task = app.add_task(
            format!("srv{s}"),
            proc,
            p.fail_app[(s + 1) % p.fail_app.len()],
            Multiplicity::Finite(1),
        );
        server_entries.push(app.add_entry(format!("serve{s}"), task, 0.3 + 0.1 * s as f64));
    }

    for c in 0..p.chains {
        let proc = app.add_processor(
            format!("ap{c}"),
            p.fail_app[(2 + c) % p.fail_app.len()],
            Multiplicity::Finite(1),
        );
        let task = app.add_task(
            format!("app{c}"),
            proc,
            p.fail_app[(4 + c) % p.fail_app.len()],
            Multiplicity::Finite(1),
        );
        let users = app.add_reference_task(format!("users{c}"), pc, 0.0, 5, 1.0);
        let e_u = app.add_entry(format!("u{c}"), users, 0.0);
        let e_a = app.add_entry(format!("a{c}"), task, 0.2);
        app.add_request(e_u, RequestTarget::Entry(e_a), 1.0, None);
        let svc = app.add_service(format!("svc{c}"));
        for &e in &server_entries {
            app.add_alternative(svc, e, None);
        }
        app.add_request(e_a, RequestTarget::Service(svc), 1.0, None);
    }
    app.validate().expect("generated app model must validate");

    let mama = synthesize(
        &app,
        &SynthOptions {
            mgmt_fail_prob: p.mgmt_fail,
            domains: p.domains,
            hierarchical: p.hierarchical,
        },
    );
    mama.validate(&app)
        .expect("synthesised plane must validate");
    (app, mama)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The ladder's whole contract in one property: no budget — however
    /// hostile — panics or comes back empty-handed, and the exact scan
    /// rungs are bit-identical to the unguarded engine.
    #[test]
    fn any_budget_yields_a_result(p in params(), budget in budgets(), seed in 0u64..1 << 48) {
        let (app, mama) = build(&p);
        let graph = FaultGraph::build(&app).unwrap();
        let space = ComponentSpace::build(&app, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        let analysis = Analysis::new(&graph, &space).with_knowledge(&table);

        let threads = 1 + (seed % 3) as usize;
        let report = analysis.analyze_guarded(&GuardedOptions {
            budget,
            samples: 4_000,
            seed,
            threads,
            ..GuardedOptions::default()
        });

        prop_assert!(
            (report.distribution.total_probability() - 1.0).abs() < 1e-9,
            "engine {:?} does not normalise",
            report.engine
        );
        prop_assert_eq!(
            report.estimate.is_some(),
            !report.engine.is_exact(),
            "a CI comes back exactly when sampling ran"
        );
        match report.engine {
            // The scan rungs share the unguarded dispatch — bit-identical
            // to the unguarded twin with the same thread split.
            EngineKind::Exact | EngineKind::Bitmask => {
                let twin = if threads > 1 {
                    analysis.enumerate_parallel(threads)
                } else {
                    analysis.enumerate()
                };
                prop_assert_eq!(&report.distribution, &twin);
            }
            // The MTBDD multiplies factors in diagram order.
            EngineKind::Mtbdd => {
                prop_assert!(report.distribution.max_abs_diff(&analysis.enumerate()) < 1e-9);
            }
            EngineKind::MonteCarlo | EngineKind::Importance => {
                let est = report.estimate.as_ref().unwrap();
                prop_assert!(est.batches >= 2, "CI needs at least two batches");
                prop_assert!(est.failed_half_width.is_finite());
                prop_assert_eq!(est.seed, seed);
                // The sampling rung's auto-selection is part of the
                // contract: importance sampling fires exactly when a
                // rare-event component exists, and its diagnostics ride
                // along in the estimate.
                prop_assert_eq!(
                    report.engine == EngineKind::Importance,
                    analysis.has_rare_event_components()
                );
                prop_assert_eq!(
                    est.is.is_some(),
                    report.engine == EngineKind::Importance
                );
            }
        }
        // Every rung that was given up on is accounted for.
        for d in &report.descents {
            prop_assert!(d.engine != report.engine, "descended past the engine that answered");
        }
    }

    /// An already-expired deadline falls all the way to Monte Carlo —
    /// and still reports a finite confidence interval over ≥2 batches.
    #[test]
    fn expired_deadline_lands_on_monte_carlo(p in params(), seed in 0u64..1 << 48) {
        let (app, mama) = build(&p);
        let graph = FaultGraph::build(&app).unwrap();
        let space = ComponentSpace::build(&app, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        let analysis = Analysis::new(&graph, &space).with_knowledge(&table);

        let report = analysis.analyze_guarded(&GuardedOptions {
            budget: AnalysisBudget {
                deadline: Some(Duration::ZERO),
                ..AnalysisBudget::default()
            },
            samples: 4_000,
            seed,
            threads: 1,
            ..GuardedOptions::default()
        });
        prop_assert!(
            !report.engine.is_exact(),
            "expired deadline must land on a sampling rung, got {:?}",
            report.engine
        );
        prop_assert_eq!(report.descents.len(), 3, "all three exact rungs must decline");
        let est = report.estimate.expect("sampling reports an estimate");
        prop_assert!(est.batches >= 2);
        prop_assert!((report.distribution.total_probability() - 1.0).abs() < 1e-9);
    }
}

/// Deterministic spot-check mirroring the CLI's `--budget-states 16`
/// acceptance path: a 16-state cap on a 2^14-state model rules out every
/// exact rung, and the Monte Carlo answer still lands near the truth.
#[test]
fn tiny_state_cap_degrades_to_sampling() {
    let sys = fmperf::ftlqn::examples::das_woodside_system();
    let mama = fmperf::mama::arch::centralized(&sys, 0.1);
    let graph = sys.fault_graph().unwrap();
    let space = ComponentSpace::build(&sys.model, &mama);
    let table = KnowTable::build(&graph, &mama, &space);
    let analysis = Analysis::new(&graph, &space).with_knowledge(&table);

    let report = analysis.analyze_guarded(&GuardedOptions {
        budget: AnalysisBudget {
            max_states: 16,
            ..AnalysisBudget::default()
        },
        samples: 60_000,
        seed: 7,
        threads: 1,
        ..GuardedOptions::default()
    });
    assert_eq!(report.engine, EngineKind::MonteCarlo);
    assert_eq!(report.descents.len(), 3);
    let exact = analysis.enumerate().failed_probability();
    let est = report.estimate.expect("sampling reports an estimate");
    assert!(
        (est.failed_mean - exact).abs() < 5.0 * est.failed_half_width.max(1e-3),
        "estimate {} too far from exact {}",
        est.failed_mean,
        exact
    );
}
