//! Differential properties of the compiled bitmask kernel: on randomly
//! generated applications wrapped in synthesised management planes, the
//! kernel must agree with the naive reference enumerator *exactly* (the
//! distributions compare with `==`, not a tolerance), and every compiled
//! `know` predicate must answer like the interpreted [`KnowTable`]
//! oracle in every reachable state.

use fmperf::core::Analysis;
use fmperf::ftlqn::{FaultGraph, FtlqnModel, KnowPolicy, RequestTarget};
use fmperf::lqn::Multiplicity;
use fmperf::mama::{synthesize, ComponentSpace, KnowTable, SynthOptions};
use proptest::prelude::*;

/// Parameters drawn by proptest; the scenario is built deterministically
/// from them.
#[derive(Debug, Clone)]
struct Params {
    chains: usize,
    servers: usize,
    /// Priority order of server indices per chain (prefix used).
    prefs: Vec<Vec<usize>>,
    fail_app: Vec<f64>,
    mgmt_fail: f64,
    domains: usize,
    hierarchical: bool,
}

fn params() -> impl Strategy<Value = Params> {
    (
        1usize..=2,
        1usize..=2,
        proptest::collection::vec(proptest::collection::vec(0usize..2, 2), 2),
        proptest::collection::vec(0.0f64..0.4, 6),
        0.0f64..0.4,
        1usize..=3,
        any::<bool>(),
    )
        .prop_map(
            |(chains, servers, prefs, fail_app, mgmt_fail, domains, hierarchical)| Params {
                chains,
                servers,
                prefs,
                fail_app,
                mgmt_fail,
                domains,
                hierarchical,
            },
        )
}

/// A layered application: user chains calling a priority service over a
/// shared server pool (the same shape as `tests/properties.rs`, app side
/// only — management comes from [`synthesize`]).
fn build_app(p: &Params) -> FtlqnModel {
    let mut app = FtlqnModel::new();
    let pc = app.add_processor("user-pc", 0.0, Multiplicity::Infinite);

    let mut server_entries = Vec::new();
    for s in 0..p.servers {
        let proc = app.add_processor(
            format!("sp{s}"),
            p.fail_app[s % p.fail_app.len()],
            Multiplicity::Finite(1),
        );
        let task = app.add_task(
            format!("srv{s}"),
            proc,
            p.fail_app[(s + 1) % p.fail_app.len()],
            Multiplicity::Finite(1),
        );
        server_entries.push(app.add_entry(format!("serve{s}"), task, 0.3 + 0.1 * s as f64));
    }

    for c in 0..p.chains {
        let proc = app.add_processor(
            format!("ap{c}"),
            p.fail_app[(2 + c) % p.fail_app.len()],
            Multiplicity::Finite(1),
        );
        let task = app.add_task(
            format!("app{c}"),
            proc,
            p.fail_app[(4 + c) % p.fail_app.len()],
            Multiplicity::Finite(1),
        );
        let users = app.add_reference_task(format!("users{c}"), pc, 0.0, 5, 1.0);
        let e_u = app.add_entry(format!("u{c}"), users, 0.0);
        let e_a = app.add_entry(format!("a{c}"), task, 0.2);
        app.add_request(e_u, RequestTarget::Entry(e_a), 1.0, None);
        let svc = app.add_service(format!("svc{c}"));
        let mut used = Vec::new();
        for &sx in &p.prefs[c] {
            let sx = sx % p.servers;
            if !used.contains(&sx) {
                used.push(sx);
                app.add_alternative(svc, server_entries[sx], None);
            }
        }
        if used.is_empty() {
            app.add_alternative(svc, server_entries[0], None);
        }
        app.add_request(e_a, RequestTarget::Service(svc), 1.0, None);
    }
    app.validate().expect("generated app model must validate");
    app
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The compiled kernel's distribution equals the naive reference
    /// enumerator's, bit for bit, under every policy and knowledge
    /// default, on every synthesised management plane.
    #[test]
    fn compiled_distribution_equals_naive(p in params()) {
        let app = build_app(&p);
        let mama = synthesize(&app, &SynthOptions {
            mgmt_fail_prob: p.mgmt_fail,
            domains: p.domains,
            hierarchical: p.hierarchical,
        });
        mama.validate(&app).expect("synthesised plane must validate");
        let graph = FaultGraph::build(&app).unwrap();
        let space = ComponentSpace::build(&app, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        for policy in [KnowPolicy::AnyFailedComponent, KnowPolicy::AllFailedComponents] {
            for unmonitored in [false, true] {
                let analysis = Analysis::new(&graph, &space)
                    .with_knowledge(&table)
                    .with_policy(policy)
                    .with_unmonitored_known(unmonitored);
                let kernel = analysis.compile().expect("small models always compile");
                prop_assert_eq!(
                    kernel.enumerate(),
                    analysis.enumerate_naive(),
                    "{:?}/unmonitored={}", policy, unmonitored
                );
            }
        }
    }

    /// Every supported lane width of the lane-parallel scan reproduces
    /// the scalar kernel bit for bit, on every synthesised management
    /// plane.  The synthesised planes cover state spaces both smaller
    /// than a lane block and with odd/even remainders modulo the lane
    /// width, so the single-state fallback path is exercised alongside
    /// the aligned block path.
    #[test]
    fn lane_scan_equals_scalar_scan(p in params()) {
        let app = build_app(&p);
        let mama = synthesize(&app, &SynthOptions {
            mgmt_fail_prob: p.mgmt_fail,
            domains: p.domains,
            hierarchical: p.hierarchical,
        });
        mama.validate(&app).expect("synthesised plane must validate");
        let graph = FaultGraph::build(&app).unwrap();
        let space = ComponentSpace::build(&app, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        for policy in [KnowPolicy::AnyFailedComponent, KnowPolicy::AllFailedComponents] {
            for unmonitored in [false, true] {
                let analysis = Analysis::new(&graph, &space)
                    .with_knowledge(&table)
                    .with_policy(policy)
                    .with_unmonitored_known(unmonitored);
                let kernel = analysis.compile().expect("small models always compile");
                let scalar = kernel.enumerate_scalar();
                for width in [1usize, 2, 4, 8] {
                    prop_assert_eq!(
                        kernel.enumerate_with_lane_width(width),
                        scalar.clone(),
                        "{:?}/unmonitored={}/width={}", policy, unmonitored, width
                    );
                }
            }
        }
    }

    /// Every compiled `know` bitmask answers exactly like the
    /// interpreted oracle, state by state, under both unmonitored
    /// defaults.
    #[test]
    fn compiled_know_matches_oracle_state_by_state(p in params()) {
        let app = build_app(&p);
        let mama = synthesize(&app, &SynthOptions {
            mgmt_fail_prob: p.mgmt_fail,
            domains: p.domains,
            hierarchical: p.hierarchical,
        });
        let graph = FaultGraph::build(&app).unwrap();
        let space = ComponentSpace::build(&app, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        let compiled = table.compile(&space).expect("small tables always compile");
        let fallible = space.fallible_indices();
        let n_states: u64 = 1 << fallible.len();
        // Full sweep when feasible, an even stride otherwise.
        let stride = (n_states / 4096).max(1);
        let mut state = space.all_up();
        let mut word = 0;
        while word < n_states {
            for (b, &ix) in fallible.iter().enumerate() {
                state[ix] = word & (1 << b) != 0;
            }
            for default in [false, true] {
                let oracle = table.oracle(&state).default_for_missing(default);
                let answers = compiled.answers(word, default);
                for (j, (c, t, know)) in compiled.pairs().enumerate() {
                    let fast = if know.is_never() { default } else { know.eval(word) };
                    prop_assert_eq!(
                        fast,
                        fmperf::ftlqn::KnowledgeOracle::knows(&oracle, c, t),
                        "pair ({:?}, {:?}) at word {:#b}, default {}",
                        c, t, word, default
                    );
                    prop_assert_eq!(answers & (1 << j) != 0, fast);
                }
            }
            word += stride;
        }
    }
}
