//! Recorder correctness across the five paper models: metrics merge
//! exactly under parallel enumeration, and instrumentation — enabled or
//! not — never perturbs a result bit.

use fmperf::core::{Analysis, AnalysisBudget, EngineKind, GuardedOptions};
use fmperf::ftlqn::FaultGraph;
use fmperf::mama::{ComponentSpace, KnowTable};
use fmperf::obs::{Counter, MetricsRecorder, NullRecorder};
use fmperf::text::parse_lenient;

/// Every checked-in paper model with its exact P[failed] under the
/// blockwise Gray walker (golden values: any engine change that
/// perturbs a single bit of the trajectory trips these).
const MODELS: [(&str, f64); 5] = [
    ("models/paper-centralized.fmp", 0.3538467639622855),
    ("models/paper-distributed-as-drawn.fmp", 0.39482710890963413),
    (
        "models/paper-distributed-as-published.fmp",
        0.5695327899999291,
    ),
    ("models/paper-hierarchical.fmp", 0.4280211883165981),
    ("models/paper-network.fmp", 0.3214716221207389),
];

fn with_analysis<T>(path: &str, f: impl FnOnce(Analysis<'_>) -> T) -> T {
    let src = std::fs::read_to_string(path).unwrap();
    let parsed = parse_lenient(&src).unwrap();
    let graph = FaultGraph::build(&parsed.model.app).unwrap();
    let space = ComponentSpace::build(&parsed.model.app, &parsed.model.mama);
    let table = KnowTable::build(&graph, &parsed.model.mama, &space);
    f(Analysis::new(&graph, &space).with_knowledge(&table))
}

/// Per-thread metric cells must merge exactly: the counter totals of a
/// 4-way parallel scan equal the single-threaded totals, and the memo
/// fast-path invariant (hits + misses = states visited) holds under any
/// partitioning.
#[test]
fn parallel_metric_merge_is_exact_on_all_paper_models() {
    for (path, _) in MODELS {
        with_analysis(path, |analysis| {
            let single = MetricsRecorder::new();
            let seq = analysis.with_recorder(&single).enumerate();

            let sharded = MetricsRecorder::new();
            let par = analysis.with_recorder(&sharded).enumerate_parallel(4);

            // Partitioned accumulation reorders float additions; the
            // counters below must still merge *exactly*.
            assert!(seq.max_abs_diff(&par) < 1e-12, "{path}: results diverge");
            for c in [
                Counter::StatesVisited,
                Counter::GrayCodeSteps,
                Counter::KnowGuardEvals,
            ] {
                assert_eq!(
                    single.counter(c),
                    sharded.counter(c),
                    "{path}: {} differs between 1 and 4 threads",
                    c.name()
                );
            }
            for (label, rec) in [("single", &single), ("parallel", &sharded)] {
                assert_eq!(
                    rec.counter(Counter::MemoHits) + rec.counter(Counter::MemoMisses),
                    rec.counter(Counter::StatesVisited),
                    "{path}/{label}: memo accounting leaks states"
                );
            }
            assert_eq!(
                single.counter(Counter::StatesVisited),
                seq.states_explored(),
                "{path}: recorder disagrees with the distribution"
            );
        });
    }
}

/// Instrumented runs — whether the recorder is a `NullRecorder` or a
/// live `MetricsRecorder` — must be bit-identical to the plain engines
/// and to the pre-instrumentation golden values.
#[test]
fn recorders_never_perturb_results() {
    for (path, golden) in MODELS {
        with_analysis(path, |analysis| {
            let plain = analysis.enumerate();
            assert_eq!(
                plain.failed_probability(),
                golden,
                "{path}: golden value drifted"
            );

            let null = NullRecorder;
            let nulled = analysis.with_recorder(&null).enumerate();
            assert_eq!(plain.max_abs_diff(&nulled), 0.0, "{path}: NullRecorder");
            assert_eq!(nulled.failed_probability(), golden, "{path}: NullRecorder");

            let metrics = MetricsRecorder::new();
            let metered = analysis.with_recorder(&metrics).enumerate();
            assert_eq!(plain.max_abs_diff(&metered), 0.0, "{path}: MetricsRecorder");
            assert_eq!(
                metered.failed_probability(),
                golden,
                "{path}: MetricsRecorder"
            );
        });
    }
}

/// Regression for the Monte Carlo rung's provenance: when the guarded
/// ladder degrades all the way down, `states_explored` reports the
/// samples actually drawn (not 0) and the estimate carries a finite
/// batch-means confidence interval.
#[test]
fn degraded_monte_carlo_reports_samples_and_ci() {
    with_analysis("models/paper-hierarchical.fmp", |analysis| {
        let opts = GuardedOptions {
            budget: AnalysisBudget {
                deadline: None,
                max_states: 16,
                max_mtbdd_nodes: 1,
                max_memo_entries: 1,
            },
            samples: 40_000,
            seed: 7,
            threads: 2,
            ..GuardedOptions::default()
        };
        let report = analysis.analyze_guarded(&opts);
        assert_eq!(
            report.engine,
            EngineKind::MonteCarlo,
            "{:?}",
            report.descents
        );
        assert_eq!(report.descents.len(), 3);

        let est = report.estimate.expect("MC rung always carries an estimate");
        assert_eq!(est.samples, 40_000);
        assert_eq!(report.distribution.states_explored(), est.samples);
        assert!(est.batches >= 2, "batch-means CI needs ≥ 2 batches");
        assert!(est.failed_half_width.is_finite() && est.failed_half_width >= 0.0);
        assert!((est.failed_mean - report.distribution.failed_probability()).abs() < 1e-12);
    });
}
