//! Property-based tests over randomly generated FTLQN application models
//! and MAMA management architectures.
//!
//! The generator builds layered systems with one or two user chains,
//! department applications, and a pool of data servers reachable through
//! priority services; management is a random one-manager architecture
//! with per-node agents.  The properties assert the global invariants of
//! the analysis engines rather than specific numbers.

use fmperf::core::{Analysis, MonteCarloOptions};
use fmperf::ftlqn::{
    Component, FaultGraph, FtlqnModel, KnowPolicy, PerfectKnowledge, RequestTarget,
};
use fmperf::lqn::Multiplicity;
use fmperf::mama::model::ConnectorKind;
use fmperf::mama::{ComponentSpace, KnowTable, MamaModel};
use proptest::prelude::*;

/// Everything needed to analyse one random scenario.
#[derive(Debug)]
struct Scenario {
    app: FtlqnModel,
    mama: MamaModel,
}

/// Parameters drawn by proptest; the scenario is built deterministically
/// from them.
#[derive(Debug, Clone)]
struct Params {
    chains: usize,
    servers: usize,
    /// Priority order of server indices per chain (prefix used).
    prefs: Vec<Vec<usize>>,
    alts_per_chain: Vec<usize>,
    fail_app: Vec<f64>,
    fail_mgmt: f64,
    agent_on_servers: bool,
    monitor_procs: bool,
}

fn params() -> impl Strategy<Value = Params> {
    (
        1usize..=2,
        1usize..=2,
        proptest::collection::vec(proptest::collection::vec(0usize..2, 2), 2),
        proptest::collection::vec(1usize..=2, 2),
        proptest::collection::vec(0.0f64..0.4, 8),
        0.0f64..0.4,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(
                chains,
                servers,
                prefs,
                alts,
                fail_app,
                fail_mgmt,
                agent_on_servers,
                monitor_procs,
            )| {
                Params {
                    chains,
                    servers,
                    prefs,
                    alts_per_chain: alts,
                    fail_app,
                    fail_mgmt,
                    agent_on_servers,
                    monitor_procs,
                }
            },
        )
}

fn build(p: &Params) -> Scenario {
    let mut app = FtlqnModel::new();
    let pc = app.add_processor("user-pc", 0.0, Multiplicity::Infinite);

    // Server pool.
    let mut server_tasks = Vec::new();
    let mut server_entries = Vec::new();
    let mut server_procs = Vec::new();
    for s in 0..p.servers {
        let proc = app.add_processor(
            format!("sp{s}"),
            p.fail_app[s % p.fail_app.len()],
            Multiplicity::Finite(1),
        );
        let task = app.add_task(
            format!("srv{s}"),
            proc,
            p.fail_app[(s + 1) % p.fail_app.len()],
            Multiplicity::Finite(1),
        );
        server_entries.push(app.add_entry(format!("serve{s}"), task, 0.3 + 0.1 * s as f64));
        server_tasks.push(task);
        server_procs.push(proc);
    }

    // Chains: users -> app task -> service over a preference prefix.
    let mut app_tasks = Vec::new();
    let mut app_procs = Vec::new();
    for c in 0..p.chains {
        let proc = app.add_processor(
            format!("ap{c}"),
            p.fail_app[(2 + c) % p.fail_app.len()],
            Multiplicity::Finite(1),
        );
        let task = app.add_task(
            format!("app{c}"),
            proc,
            p.fail_app[(4 + c) % p.fail_app.len()],
            Multiplicity::Finite(1),
        );
        let users = app.add_reference_task(format!("users{c}"), pc, 0.0, 5, 1.0);
        let e_u = app.add_entry(format!("u{c}"), users, 0.0);
        let e_a = app.add_entry(format!("a{c}"), task, 0.2);
        app.add_request(e_u, RequestTarget::Entry(e_a), 1.0, None);
        let svc = app.add_service(format!("svc{c}"));
        let n_alts = p.alts_per_chain[c].min(p.servers);
        let mut used = Vec::new();
        for &sx in &p.prefs[c] {
            let sx = sx % p.servers;
            if !used.contains(&sx) {
                used.push(sx);
                app.add_alternative(svc, server_entries[sx], None);
            }
            if used.len() == n_alts {
                break;
            }
        }
        if used.is_empty() {
            app.add_alternative(svc, server_entries[0], None);
        }
        app.add_request(e_a, RequestTarget::Service(svc), 1.0, None);
        app_tasks.push(task);
        app_procs.push(proc);
    }
    app.validate().expect("generated app model must validate");

    // Management: one manager, agents on app nodes (+ optionally server
    // nodes), processor pings optional.
    let mut mama = MamaModel::new();
    let m_proc_mgr = mama.add_mgmt_processor("mgr-node", p.fail_mgmt);
    let mgr = mama.add_manager("mgr", m_proc_mgr, p.fail_mgmt);
    let mut m_server_procs = Vec::new();
    for s in 0..p.servers {
        let mp = mama.add_app_processor(format!("sp{s}"), server_procs[s]);
        let mt = mama.add_app_task(format!("srv{s}"), server_tasks[s], mp);
        if p.agent_on_servers {
            let ag = mama.add_agent(format!("sag{s}"), mp, p.fail_mgmt);
            mama.watch(format!("hb-s{s}"), ConnectorKind::AliveWatch, mt, ag);
            mama.watch(format!("st-s{s}"), ConnectorKind::StatusWatch, ag, mgr);
        } else {
            mama.watch(format!("hb-s{s}"), ConnectorKind::AliveWatch, mt, mgr);
        }
        if p.monitor_procs {
            mama.watch(format!("ping-s{s}"), ConnectorKind::AliveWatch, mp, mgr);
        }
        m_server_procs.push(mp);
    }
    for c in 0..p.chains {
        let mp = mama.add_app_processor(format!("ap{c}"), app_procs[c]);
        let mt = mama.add_app_task(format!("app{c}"), app_tasks[c], mp);
        let ag = mama.add_agent(format!("aag{c}"), mp, p.fail_mgmt);
        mama.watch(format!("hb-a{c}"), ConnectorKind::AliveWatch, mt, ag);
        mama.watch(format!("st-a{c}"), ConnectorKind::StatusWatch, ag, mgr);
        mama.notify(format!("cmd-m{c}"), mgr, ag);
        mama.notify(format!("cmd-a{c}"), ag, mt);
        if p.monitor_procs {
            mama.watch(format!("ping-a{c}"), ConnectorKind::AliveWatch, mp, mgr);
        }
    }
    mama.validate(&app)
        .expect("generated MAMA model must validate");
    Scenario { app, mama }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The symbolic engine is exact: it must agree with brute-force
    /// enumeration on every random scenario, under both know policies.
    #[test]
    fn symbolic_equals_enumeration(p in params()) {
        let s = build(&p);
        let graph = FaultGraph::build(&s.app).unwrap();
        let space = ComponentSpace::build(&s.app, &s.mama);
        let table = KnowTable::build(&graph, &s.mama, &space);
        for policy in [KnowPolicy::AnyFailedComponent, KnowPolicy::AllFailedComponents] {
            for unmonitored in [false, true] {
                let analysis = Analysis::new(&graph, &space)
                    .with_knowledge(&table)
                    .with_policy(policy)
                    .with_unmonitored_known(unmonitored);
                let exact = analysis.enumerate();
                let sym = analysis.symbolic();
                prop_assert!((exact.total_probability() - 1.0).abs() < 1e-9);
                prop_assert!(
                    exact.max_abs_diff(&sym) < 1e-9,
                    "diff {} under {policy:?}/unmonitored={unmonitored}",
                    exact.max_abs_diff(&sym)
                );
            }
        }
    }

    /// Parallel enumeration is bit-stable against the sequential scan.
    #[test]
    fn parallel_equals_sequential(p in params()) {
        let s = build(&p);
        let graph = FaultGraph::build(&s.app).unwrap();
        let space = ComponentSpace::build(&s.app, &s.mama);
        let table = KnowTable::build(&graph, &s.mama, &space);
        let analysis = Analysis::new(&graph, &space).with_knowledge(&table);
        let seq = analysis.enumerate();
        let par = analysis.enumerate_parallel(3);
        prop_assert!(seq.max_abs_diff(&par) < 1e-12);
    }

    /// With perfect knowledge, the gated evaluator agrees with the plain
    /// Definition-1 AND-OR semantics about system survival, state by
    /// state.
    #[test]
    fn perfect_knowledge_matches_andor_root(p in params(), mask in 0u32..65536) {
        let s = build(&p);
        let graph = FaultGraph::build(&s.app).unwrap();
        let n = s.app.component_count();
        let state: Vec<bool> = (0..n).map(|i| mask & (1 << (i % 16)) != 0).collect();
        let cfg = graph.configuration(&state, &PerfectKnowledge, KnowPolicy::AnyFailedComponent);
        prop_assert_eq!(!cfg.is_failed(), graph.root_working_plain(&state));
    }

    /// Knowledge limits can only hurt: the MAMA failure probability is at
    /// least the perfect-knowledge one, and the lax policy is at least as
    /// good as the strict one.
    #[test]
    fn coverage_orderings(p in params()) {
        let s = build(&p);
        let graph = FaultGraph::build(&s.app).unwrap();
        let space = ComponentSpace::build(&s.app, &s.mama);
        let table = KnowTable::build(&graph, &s.mama, &space);
        let perfect = Analysis::new(&graph, &space).enumerate();
        let strict = Analysis::new(&graph, &space)
            .with_knowledge(&table)
            .with_policy(KnowPolicy::AllFailedComponents)
            .enumerate();
        let lax = Analysis::new(&graph, &space)
            .with_knowledge(&table)
            .with_policy(KnowPolicy::AnyFailedComponent)
            .enumerate();
        prop_assert!(strict.failed_probability() >= perfect.failed_probability() - 1e-12);
        prop_assert!(lax.failed_probability() >= perfect.failed_probability() - 1e-12);
        prop_assert!(lax.failed_probability() <= strict.failed_probability() + 1e-12);
    }

    /// Monte Carlo converges to the exact distribution.
    #[test]
    fn monte_carlo_converges(p in params()) {
        let s = build(&p);
        let graph = FaultGraph::build(&s.app).unwrap();
        let space = ComponentSpace::build(&s.app, &s.mama);
        let table = KnowTable::build(&graph, &s.mama, &space);
        let analysis = Analysis::new(&graph, &space).with_knowledge(&table);
        let exact = analysis.enumerate();
        let mc = analysis.monte_carlo(MonteCarloOptions { samples: 30_000, seed: 3 });
        prop_assert!(exact.max_abs_diff(&mc) < 0.02, "diff {}", exact.max_abs_diff(&mc));
    }

    /// Every fallible component flipped down alone either leaves the
    /// configuration unchanged or degrades it (fewer or equal running
    /// chains) — single failures never help availability.
    #[test]
    fn single_failures_never_add_chains(p in params()) {
        let s = build(&p);
        let graph = FaultGraph::build(&s.app).unwrap();
        let space = ComponentSpace::build(&s.app, &s.mama);
        let table = KnowTable::build(&graph, &s.mama, &space);
        let all_up = space.all_up();
        let oracle = table.oracle(&all_up);
        let base = graph.configuration(&all_up, &oracle, KnowPolicy::AnyFailedComponent);
        for ix in space.fallible_indices() {
            let mut state = space.all_up();
            state[ix] = false;
            let oracle = table.oracle(&state);
            let cfg = graph.configuration(&state, &oracle, KnowPolicy::AnyFailedComponent);
            prop_assert!(
                cfg.user_chains.len() <= base.user_chains.len(),
                "downing {} added user chains",
                space.name(ix)
            );
        }
    }
}

/// Deterministic regression: the generator's corner case with a single
/// server and strict policy stays solvable.
#[test]
fn generator_minimal_case_builds() {
    let p = Params {
        chains: 1,
        servers: 1,
        prefs: vec![vec![0, 0], vec![0, 0]],
        alts_per_chain: vec![1, 1],
        fail_app: vec![0.1; 8],
        fail_mgmt: 0.1,
        agent_on_servers: false,
        monitor_procs: false,
    };
    let s = build(&p);
    let graph = FaultGraph::build(&s.app).unwrap();
    let space = ComponentSpace::build(&s.app, &s.mama);
    let table = KnowTable::build(&graph, &s.mama, &space);
    let dist = Analysis::new(&graph, &space)
        .with_knowledge(&table)
        .enumerate();
    assert!((dist.total_probability() - 1.0).abs() < 1e-9);
}

/// The component space orders app components first; spot-check.
#[test]
fn component_space_layout_invariant() {
    let p = Params {
        chains: 2,
        servers: 2,
        prefs: vec![vec![0, 1], vec![1, 0]],
        alts_per_chain: vec![2, 2],
        fail_app: vec![0.2; 8],
        fail_mgmt: 0.2,
        agent_on_servers: true,
        monitor_procs: true,
    };
    let s = build(&p);
    let space = ComponentSpace::build(&s.app, &s.mama);
    assert_eq!(space.app_count(), s.app.component_count());
    for c in s.app.components() {
        let ix = s.app.component_index(c);
        assert!(ix < space.app_count());
        assert_eq!(space.name(ix), s.app.component_name(c));
        let _ = Component::Task; // silence unused import lint paths
    }
}
