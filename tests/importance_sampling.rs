//! Differential validation of the rare-event importance-sampling engine.
//!
//! The contract has two regimes.  On enumerable models (every shipped
//! `models/*.fmp` file, the four §6 architectures, small synthesised
//! planes) the weighted estimator's 99% confidence interval must cover
//! the exact failure probability.  Beyond exact reach the estimator
//! must be self-consistent: independent seeds agree within their
//! intervals, the effective sample size stays healthy, and the weights
//! normalise.  A regression pins the reason the engine exists: on a
//! rare-event plane, plain Monte Carlo sees nothing at a budget where
//! importance sampling already brackets the truth.

use fmperf::core::{
    Analysis, AnalysisBudget, EngineKind, GuardedOptions, ImportanceOptions, MonteCarloOptions,
};
use fmperf::ftlqn::FaultGraph;
use fmperf::mama::{
    arch, synth_plane, ComponentSpace, KnowTable, PlaneSpec, PlaneTopology, SynthPlane,
};
use fmperf::text::parse;
use proptest::prelude::*;

/// Every shipped model file with its knowledge default (the
/// `paper-distributed-as-published` reading treats unmonitored
/// components as known; see `tests/mtbdd_engine.rs`).
const MODELS: [(&str, bool); 5] = [
    ("paper-centralized.fmp", false),
    ("paper-distributed-as-drawn.fmp", false),
    ("paper-distributed-as-published.fmp", true),
    ("paper-hierarchical.fmp", false),
    ("paper-network.fmp", false),
];

fn load(name: &str) -> fmperf::text::ParsedModel {
    let path = format!("{}/models/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    parse(&src).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// Asserts that one importance-sampling run brackets the exact failure
/// probability within its 99% interval (plus a hair of float slack).
fn assert_covers(analysis: &Analysis<'_>, samples: u64, seed: u64, what: &str) {
    let exact = analysis.enumerate().failed_probability();
    let est = analysis.importance(ImportanceOptions {
        samples,
        seed,
        ..ImportanceOptions::default()
    });
    assert!(
        (est.info.failed_mean - exact).abs() <= est.failed_half_width_99 + 1e-12,
        "{what}: IS mean {} ± {} (99%) misses exact {exact}",
        est.info.failed_mean,
        est.failed_half_width_99
    );
    assert!(
        (est.distribution.total_probability() - 1.0).abs() < 1e-9,
        "{what}: pooled distribution must self-normalise ({})",
        est.distribution.total_probability()
    );
    let is = est.info.is.expect("importance estimates carry IS info");
    assert!(
        (is.mean_weight - 1.0).abs() < 0.05,
        "{what}: mean weight {} should estimate 1",
        is.mean_weight
    );
    assert!(is.ess > 0.0 && is.ess <= samples as f64);
}

#[test]
fn is_ci_covers_exact_on_every_model_file() {
    for (name, unmonitored) in MODELS {
        let m = load(name);
        let graph = FaultGraph::build(&m.app).unwrap();
        let space = ComponentSpace::build(&m.app, &m.mama);
        let table = KnowTable::build(&graph, &m.mama, &space);
        let analysis = Analysis::new(&graph, &space)
            .with_knowledge(&table)
            .with_unmonitored_known(unmonitored);
        assert_covers(&analysis, 60_000, 0xBEEF, name);
    }
}

#[test]
fn is_ci_covers_exact_on_every_paper_architecture() {
    let sys = fmperf::ftlqn::examples::das_woodside_system();
    let graph = sys.fault_graph().unwrap();
    let archs: [(&str, fmperf::mama::MamaModel); 4] = [
        ("centralized", arch::centralized(&sys, 0.1)),
        ("distributed", arch::distributed(&sys, 0.1)),
        ("hierarchical", arch::hierarchical(&sys, 0.1)),
        ("network", arch::network(&sys, 0.1)),
    ];
    for (name, mama) in archs {
        let space = ComponentSpace::build(&sys.model, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        let analysis = Analysis::new(&graph, &space).with_knowledge(&table);
        assert_covers(&analysis, 60_000, 0xACE, name);
    }
}

/// A tiny rare-event plane (2 chains ⇒ ≤ 16 fallible components) that
/// every exact engine can still ground-truth.
fn tiny_plane(topology: PlaneTopology, server_fail: f64, mgmt_fail: f64) -> SynthPlane {
    synth_plane(&PlaneSpec {
        chains: 2,
        topology,
        server_fail,
        mgmt_fail,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// On enumerable synthesised planes across the whole failure-rate
    /// range — from the rare-event regime to everyday 10% components —
    /// the weighted estimator covers exact ground truth, replays
    /// deterministically under its seed, keeps a positive effective
    /// sample size and normalises its weights.
    #[test]
    fn is_agrees_with_exact_on_small_planes(
        topo_ix in 0usize..3,
        server_fail in prop_oneof![Just(1e-5), Just(1e-3), Just(0.1)],
        mgmt_fail in prop_oneof![Just(5e-5), Just(0.05)],
        seed in 0u64..1 << 32,
    ) {
        let plane = tiny_plane(PlaneTopology::ALL[topo_ix], server_fail, mgmt_fail);
        let graph = FaultGraph::build(&plane.model).unwrap();
        let space = ComponentSpace::build(&plane.model, &plane.mama);
        let table = KnowTable::build(&graph, &plane.mama, &space);
        let analysis = Analysis::new(&graph, &space).with_knowledge(&table);

        let exact = analysis.enumerate().failed_probability();
        let options = ImportanceOptions { samples: 20_000, seed, ..ImportanceOptions::default() };
        let est = analysis.importance(options);
        // 4 half-widths: a 99% interval is allowed to miss ~1% of seeds,
        // which a 16-case property would hit routinely.
        prop_assert!(
            (est.info.failed_mean - exact).abs() <= 4.0 * est.failed_half_width_99 + 1e-12,
            "mean {} ± {} vs exact {exact}", est.info.failed_mean, est.failed_half_width_99
        );
        prop_assert!((est.distribution.total_probability() - 1.0).abs() < 1e-9);
        let is = est.info.is.expect("IS info present");
        prop_assert!(is.ess > 0.0);
        prop_assert!(is.weight_cv.is_finite());
        prop_assert!((is.mean_weight - 1.0).abs() < 0.2, "mean weight {}", is.mean_weight);
        // Deterministic replay: same options, same estimate — info and
        // interval alike.
        let replay = analysis.importance(options);
        prop_assert_eq!(est.info, replay.info);
        prop_assert_eq!(est.failed_half_width_99, replay.failed_half_width_99);
        prop_assert_eq!(&est.distribution, &replay.distribution);
    }
}

/// The reason this engine exists: at rates where a failure shows up
/// once per ~300k samples, a 20k-sample Monte Carlo run reports zero —
/// while the same 20k samples under the biased proposal already
/// bracket the exact answer.
#[test]
fn naive_mc_misses_what_importance_finds() {
    let plane = tiny_plane(PlaneTopology::DeepHierarchy, 1e-6, 1e-6);
    let graph = FaultGraph::build(&plane.model).unwrap();
    let space = ComponentSpace::build(&plane.model, &plane.mama);
    let table = KnowTable::build(&graph, &plane.mama, &space);
    let analysis = Analysis::new(&graph, &space).with_knowledge(&table);

    let exact = analysis.enumerate().failed_probability();
    assert!(exact > 0.0 && exact < 1e-4, "plane failure must be rare");

    let mc = analysis.monte_carlo(MonteCarloOptions {
        samples: 20_000,
        seed: 11,
    });
    assert_eq!(
        mc.failed_probability(),
        0.0,
        "plain MC must see no failure at this budget"
    );

    let est = analysis.importance(ImportanceOptions {
        samples: 20_000,
        seed: 11,
        ..ImportanceOptions::default()
    });
    assert!(est.info.failed_mean > 0.0, "IS must see the rare event");
    assert!(
        (est.info.failed_mean - exact).abs() <= est.failed_half_width_99,
        "IS mean {} ± {} misses exact {exact}",
        est.info.failed_mean,
        est.failed_half_width_99
    );
}

/// Beyond exact reach (a ~200-fallible-component plane) the estimator
/// must be self-consistent: independent seeds land within each other's
/// widened intervals, weights normalise, and the effective sample size
/// stays a meaningful fraction of the budget.
#[test]
fn large_plane_estimates_are_self_consistent() {
    let spec = PlaneSpec::sized(200, PlaneTopology::DeepHierarchy);
    assert!(spec.fallible_components() > 64, "beyond the kernel's reach");
    let plane = synth_plane(&spec);
    let graph = FaultGraph::build(&plane.model).unwrap();
    let space = ComponentSpace::build(&plane.model, &plane.mama);
    let table = KnowTable::build(&graph, &plane.mama, &space);
    let analysis = Analysis::new(&graph, &space).with_knowledge(&table);

    let run = |seed| {
        analysis.importance(ImportanceOptions {
            samples: 12_000,
            seed,
            ..ImportanceOptions::default()
        })
    };
    let a = run(101);
    let b = run(202);
    for est in [&a, &b] {
        assert!(
            est.info.failed_mean > 0.0,
            "the trunk makes failure visible"
        );
        assert!((est.distribution.total_probability() - 1.0).abs() < 1e-9);
        let is = est.info.is.unwrap();
        assert!(is.ess > 500.0, "ESS {} too small to trust", is.ess);
        assert!(
            (is.mean_weight - 1.0).abs() < 0.1,
            "mean weight {} should estimate 1",
            is.mean_weight
        );
    }
    let gap = (a.info.failed_mean - b.info.failed_mean).abs();
    let widths = a.failed_half_width_99 + b.failed_half_width_99;
    assert!(
        gap <= widths,
        "seeds disagree: {} vs {} (joint 99% width {widths})",
        a.info.failed_mean,
        b.info.failed_mean
    );
}

/// The guarded ladder's bottom rung auto-selects importance sampling on
/// rare-event models and records the choice in the estimate.
#[test]
fn guarded_ladder_auto_selects_importance_on_a_rare_plane() {
    let plane = tiny_plane(PlaneTopology::RegionalTree, 5e-5, 5e-5);
    let graph = FaultGraph::build(&plane.model).unwrap();
    let space = ComponentSpace::build(&plane.model, &plane.mama);
    let table = KnowTable::build(&graph, &plane.mama, &space);
    let analysis = Analysis::new(&graph, &space).with_knowledge(&table);
    assert!(analysis.has_rare_event_components());

    let report = analysis.analyze_guarded(&GuardedOptions {
        budget: AnalysisBudget {
            max_states: 16,
            ..AnalysisBudget::default()
        },
        samples: 8_000,
        seed: 3,
        threads: 1,
        ..GuardedOptions::default()
    });
    assert_eq!(report.engine, EngineKind::Importance);
    assert_eq!(report.descents.len(), 3, "all exact rungs declined");
    let est = report.estimate.expect("sampling reports an estimate");
    let is = est.is.expect("auto-selected IS records its diagnostics");
    assert_eq!(is.bias, fmperf::core::importance::DEFAULT_BIAS);
    assert_eq!(is.mixture, fmperf::core::importance::DEFAULT_MIXTURE);
    assert!((report.distribution.total_probability() - 1.0).abs() < 1e-9);
}
