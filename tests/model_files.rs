//! The shipped `models/*.fmp` files are first-class artifacts: parsing
//! them and running the analysis must reproduce the paper's numbers,
//! exactly as the in-code builders do.

use fmperf::core::Analysis;
use fmperf::ftlqn::FaultGraph;
use fmperf::mama::{ComponentSpace, KnowTable};
use fmperf::text::parse;

fn load(name: &str) -> fmperf::text::ParsedModel {
    let path = format!("{}/models/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    parse(&src).unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn failed_probability(m: &fmperf::text::ParsedModel, unmonitored_known: bool) -> f64 {
    let graph = FaultGraph::build(&m.app).unwrap();
    let space = ComponentSpace::build(&m.app, &m.mama);
    let table = KnowTable::build(&graph, &m.mama, &space);
    Analysis::new(&graph, &space)
        .with_knowledge(&table)
        .with_unmonitored_known(unmonitored_known)
        .symbolic()
        .failed_probability()
}

#[test]
fn centralized_model_file_reproduces_table1() {
    let m = load("paper-centralized.fmp");
    assert_eq!(m.app.task_count(), 6);
    assert_eq!(m.mama.connector_count(), 16);
    let pf = failed_probability(&m, false);
    assert!((pf - 0.3536).abs() < 0.001, "failed probability {pf}");
}

#[test]
fn distributed_model_files_reproduce_both_variants() {
    let drawn = load("paper-distributed-as-drawn.fmp");
    let pf = failed_probability(&drawn, false);
    assert!(
        (pf - 0.395).abs() < 0.002,
        "as-drawn failed probability {pf}"
    );

    let published = load("paper-distributed-as-published.fmp");
    let pf = failed_probability(&published, true);
    assert!(
        (pf - 0.1396).abs() < 0.001,
        "as-published failed probability {pf}"
    );
}

#[test]
fn hierarchical_and_network_model_files_reproduce_table2() {
    let m = load("paper-hierarchical.fmp");
    let pf = failed_probability(&m, false);
    assert!(
        (pf - 0.428).abs() < 0.002,
        "hierarchical failed probability {pf}"
    );

    let m = load("paper-network.fmp");
    let pf = failed_probability(&m, false);
    assert!(
        (pf - 0.321).abs() < 0.002,
        "network failed probability {pf}"
    );
}

#[test]
fn compiled_kernel_is_bit_identical_on_every_model_file() {
    for (name, unmonitored) in [
        ("paper-centralized.fmp", false),
        ("paper-distributed-as-drawn.fmp", false),
        ("paper-distributed-as-published.fmp", true),
        ("paper-hierarchical.fmp", false),
        ("paper-network.fmp", false),
    ] {
        let m = load(name);
        let graph = FaultGraph::build(&m.app).unwrap();
        let space = ComponentSpace::build(&m.app, &m.mama);
        let table = KnowTable::build(&graph, &m.mama, &space);
        let analysis = Analysis::new(&graph, &space)
            .with_knowledge(&table)
            .with_unmonitored_known(unmonitored);
        let kernel = analysis
            .compile()
            .unwrap_or_else(|| panic!("{name}: must compile"));
        // `==` on distributions: exact probability equality, not epsilon.
        assert_eq!(kernel.enumerate(), analysis.enumerate_naive(), "{name}");
    }
}

#[test]
fn model_files_have_reward_declarations() {
    for name in ["paper-centralized.fmp", "paper-network.fmp"] {
        let m = load(name);
        assert_eq!(m.rewards.len(), 2, "{name}");
        assert!(m.rewards.iter().all(|&(_, w)| w == 1.0));
    }
}
