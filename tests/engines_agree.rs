//! Cross-engine agreement: the exact enumerator, the parallel
//! enumerator, the symbolic (BDD) engine and the Monte Carlo estimator
//! must tell the same story on every architecture and policy.

use fmperf::core::{Analysis, MonteCarloOptions};
use fmperf::ftlqn::examples::das_woodside_system;
use fmperf::ftlqn::KnowPolicy;
use fmperf::mama::{arch, ComponentSpace, KnowTable};

#[test]
fn all_engines_agree_on_all_architectures() {
    let sys = das_woodside_system();
    let graph = sys.fault_graph().unwrap();
    for kind in arch::ArchKind::ALL {
        let mama = arch::build(kind, &sys, 0.1);
        let space = ComponentSpace::build(&sys.model, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        for policy in [
            KnowPolicy::AnyFailedComponent,
            KnowPolicy::AllFailedComponents,
        ] {
            let analysis = Analysis::new(&graph, &space)
                .with_knowledge(&table)
                .with_policy(policy);
            let exact = analysis.enumerate();
            assert!((exact.total_probability() - 1.0).abs() < 1e-9);

            let par = analysis.enumerate_parallel(4);
            assert!(
                exact.max_abs_diff(&par) < 1e-12,
                "{}/{policy:?}: parallel diverges",
                kind.name()
            );

            let sym = analysis.symbolic();
            assert!(
                exact.max_abs_diff(&sym) < 1e-9,
                "{}/{policy:?}: symbolic diverges by {}",
                kind.name(),
                exact.max_abs_diff(&sym)
            );

            let mc = analysis.monte_carlo(MonteCarloOptions {
                samples: 60_000,
                seed: 5,
            });
            assert!(
                exact.max_abs_diff(&mc) < 0.01,
                "{}/{policy:?}: Monte Carlo off by {}",
                kind.name(),
                exact.max_abs_diff(&mc)
            );
        }
    }
}

#[test]
fn engines_agree_under_unmonitored_exemption() {
    let sys = das_woodside_system();
    let graph = sys.fault_graph().unwrap();
    let mama = arch::distributed_as_published(&sys, 0.1);
    let space = ComponentSpace::build(&sys.model, &mama);
    let table = KnowTable::build(&graph, &mama, &space);
    let analysis = Analysis::new(&graph, &space)
        .with_knowledge(&table)
        .with_unmonitored_known(true);
    let exact = analysis.enumerate();
    let sym = analysis.symbolic();
    let par = analysis.enumerate_parallel(3);
    let mc = analysis.monte_carlo(MonteCarloOptions {
        samples: 60_000,
        seed: 9,
    });
    assert!(exact.max_abs_diff(&sym) < 1e-9);
    assert!(exact.max_abs_diff(&par) < 1e-12);
    assert!(exact.max_abs_diff(&mc) < 0.01);
}

#[test]
fn symbolic_visits_exponentially_fewer_states() {
    let sys = das_woodside_system();
    let graph = sys.fault_graph().unwrap();
    let mama = arch::hierarchical(&sys, 0.1);
    let space = ComponentSpace::build(&sys.model, &mama);
    let table = KnowTable::build(&graph, &mama, &space);
    let analysis = Analysis::new(&graph, &space).with_knowledge(&table);
    let exact = analysis.enumerate();
    let sym = analysis.symbolic();
    assert_eq!(exact.states_explored(), 262_144);
    assert_eq!(sym.states_explored(), 256);
    assert!(exact.max_abs_diff(&sym) < 1e-9);
}
