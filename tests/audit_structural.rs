//! Golden and differential tests for the symbolic structural audit.
//!
//! The golden half pins hand-derived cut sets for the shipped paper
//! models: every architecture shares the same eight order-2 application
//! cuts (one element per user chain, or one element per server), the
//! centralized architecture's single manager and its host processor are
//! order-1 management cuts, and the hierarchical architecture has no
//! order-1 management cut but loses all coverage when both regional
//! managers die together.
//!
//! The differential half closes the loop in both directions:
//!
//! * **soundness** — every audit-reported cut, replayed as a concrete
//!   injection (management plane) or configuration evaluation
//!   (application plane), really produces the claimed outcome;
//! * **completeness** — every brute-forced injection set of order ≤ 2
//!   that dynamically empties coverage (or fails the system) contains
//!   some audit cut, so no dynamic finding of low order escapes the
//!   static analysis.

use fmperf::core::audit::{audit, replay_app_cut, replay_mgmt_cut, AuditOptions};
use fmperf::core::campaign::covered_components;
use fmperf::ftlqn::{FaultGraph, KnowPolicy};
use fmperf::mama::inject::{injection_for_element, Scenario};
use fmperf::mama::model::MamaComponentKind;
use fmperf::mama::{ComponentSpace, KnowTable};
use fmperf::text::{parse, ParsedModel};

const MODELS: [&str; 5] = [
    "paper-centralized",
    "paper-distributed-as-drawn",
    "paper-distributed-as-published",
    "paper-hierarchical",
    "paper-network",
];

fn load(name: &str) -> ParsedModel {
    let path = format!("{}/models/{name}.fmp", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    parse(&src).unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn cuts(names: &[&[&str]]) -> Vec<Vec<String>> {
    names
        .iter()
        .map(|c| c.iter().map(|s| s.to_string()).collect())
        .collect()
}

fn eight_application_cuts() -> Vec<Vec<String>> {
    cuts(&[
        &["AppA", "AppB"],
        &["AppA", "proc2"],
        &["AppB", "proc1"],
        &["Server1", "Server2"],
        &["Server1", "proc4"],
        &["Server2", "proc3"],
        &["proc1", "proc2"],
        &["proc3", "proc4"],
    ])
}

/// All five architectures manage the same Figure 1 application, whose
/// pure structure has eight order-2 cut sets and no SPOF — and every
/// architecture that actually monitors the primary chain preserves
/// them.  The as-published distributed variant is the exception, pinned
/// separately below.
#[test]
fn monitored_architectures_share_the_eight_application_cuts() {
    let expected = eight_application_cuts();
    for name in MODELS {
        if name == "paper-distributed-as-published" {
            continue;
        }
        let m = load(name);
        let graph = FaultGraph::build(&m.app).unwrap();
        let report = audit(&graph, Some(&m.mama), &AuditOptions::default()).unwrap();
        assert!(!report.baseline_failed, "{name}");
        assert!(report.app_spofs().is_empty(), "{name}");
        assert_eq!(report.app_cuts, expected, "{name}");
    }
}

/// The as-published distributed architecture leaves the primary chain's
/// processors unwatched, so under strict knowledge gating (a failure
/// nobody can learn about is never reacted to) every primary-chain
/// element is an application SPOF: the alternative chain can never be
/// switched to.  Exempting unmonitored components from the knowledge
/// test — the semantics the paper's published Table 2 numbers imply —
/// restores the eight structural cuts.
#[test]
fn published_distributed_has_primary_chain_spofs_under_strict_knowledge() {
    let m = load("paper-distributed-as-published");
    let graph = FaultGraph::build(&m.app).unwrap();
    let report = audit(&graph, Some(&m.mama), &AuditOptions::default()).unwrap();
    assert_eq!(report.app_spofs(), ["AppA", "Server1", "proc1", "proc3"]);

    let relaxed = AuditOptions {
        unmonitored_known: true,
        ..AuditOptions::default()
    };
    let report = audit(&graph, Some(&m.mama), &relaxed).unwrap();
    assert!(report.app_spofs().is_empty());
    assert_eq!(report.app_cuts, eight_application_cuts());
}

/// Hand-derived: the centralized architecture concentrates all
/// knowledge in one manager, so the manager — and the processor it runs
/// on — is an order-1 management-plane cut.
#[test]
fn centralized_manager_and_its_processor_are_management_spofs() {
    let m = load("paper-centralized");
    let graph = FaultGraph::build(&m.app).unwrap();
    let report = audit(&graph, Some(&m.mama), &AuditOptions::default()).unwrap();
    assert_eq!(report.mgmt_spofs(), ["m1", "proc5"]);
}

/// Hand-derived: the hierarchical architecture has no order-1
/// management cut (the top manager is informed by either regional
/// manager), but both regional managers dying together severs every
/// knowledge route.
#[test]
fn hierarchical_has_no_spof_but_the_regional_manager_pair_is_a_cut() {
    let m = load("paper-hierarchical");
    let graph = FaultGraph::build(&m.app).unwrap();
    let report = audit(&graph, Some(&m.mama), &AuditOptions::default()).unwrap();
    assert!(report.mgmt_spofs().is_empty());
    let mgmt = report.mgmt.as_ref().unwrap();
    let pair = vec!["dm1".to_string(), "dm2".to_string()];
    assert!(mgmt.cuts.contains(&pair), "{:?}", mgmt.cuts);
}

/// The centralized model routes every agent's knowledge through direct
/// watch edges to the manager, so its longer agent-relayed connectors
/// appear in no know guard: provably dead management structure.
#[test]
fn centralized_dead_edges_are_the_agent_relayed_routes() {
    let m = load("paper-centralized");
    let graph = FaultGraph::build(&m.app).unwrap();
    let report = audit(&graph, Some(&m.mama), &AuditOptions::default()).unwrap();
    let mut dead = report.mgmt.as_ref().unwrap().dead_edges.clone();
    dead.sort();
    assert_eq!(
        dead,
        [
            "aw-proc1-m1",
            "aw-proc2-m1",
            "c1",
            "c2",
            "sw-ag1-m1",
            "sw-ag2-m1"
        ]
    );
}

/// Soundness, management plane: every reported cut, replayed as a
/// concrete `mama::inject` scenario, empties the covered set and loses
/// a nonzero number of baseline-covered components.
#[test]
fn every_management_cut_replays_to_total_coverage_loss() {
    for name in MODELS {
        let m = load(name);
        let graph = FaultGraph::build(&m.app).unwrap();
        let report = audit(&graph, Some(&m.mama), &AuditOptions::default()).unwrap();
        let mgmt = report.mgmt.as_ref().unwrap();
        assert!(!mgmt.cuts.is_empty(), "{name}");
        for cut in &mgmt.cuts {
            let c = replay_mgmt_cut(&graph, &m.mama, cut).unwrap();
            assert!(c.confirmed, "{name}: {cut:?} not confirmed ({})", c.label);
            assert!(
                c.coverage_loss.unwrap() > 0,
                "{name}: {cut:?} lost no coverage"
            );
        }
    }
}

/// Soundness, application plane: every reported cut fails the system
/// when its members go down, and recovers with any single member
/// restored (minimality).
#[test]
fn every_application_cut_replays_to_system_failure() {
    for name in MODELS {
        let m = load(name);
        let graph = FaultGraph::build(&m.app).unwrap();
        let opts = AuditOptions::default();
        let report = audit(&graph, Some(&m.mama), &opts).unwrap();
        for cut in &report.app_cuts {
            let c = replay_app_cut(&graph, Some(&m.mama), cut, &opts).unwrap();
            assert!(c.confirmed, "{name}: {cut:?} not confirmed");
        }
    }
}

/// Injectable management element names, exactly the audit's candidate
/// universe: managers, agents, management processors and connectors.
fn mgmt_candidates(m: &ParsedModel) -> Vec<String> {
    let mut names = Vec::new();
    for id in m.mama.component_ids() {
        match m.mama.component(id).kind {
            MamaComponentKind::MgmtTask { .. } | MamaComponentKind::MgmtProcessor { .. } => {
                names.push(m.mama.component(id).name.clone());
            }
            _ => {}
        }
    }
    for cid in m.mama.connector_ids() {
        names.push(m.mama.connector(cid).name.clone());
    }
    names
}

/// Dynamically probes one injection set: does pinning these elements
/// down empty the covered set?
fn injection_empties_coverage(m: &ParsedModel, graph: &FaultGraph<'_>, set: &[&String]) -> bool {
    let injections = set
        .iter()
        .map(|name| injection_for_element(&m.mama, name).unwrap())
        .collect();
    let injected = Scenario { injections }.apply(&m.mama);
    let space = ComponentSpace::build(&m.app, &injected);
    let table = KnowTable::build(graph, &injected, &space);
    covered_components(graph, &space, &table).is_empty()
}

/// Completeness, management plane: brute-force every single and pair
/// injection over the audit's candidate universe; whenever the dynamic
/// probe reports total coverage loss, the injected set must contain
/// some audit-reported cut.  No dynamic finding of order ≤ 2 escapes
/// the static analysis.
#[test]
fn no_dynamic_coverage_loss_of_low_order_escapes_the_audit() {
    for name in MODELS {
        let m = load(name);
        let graph = FaultGraph::build(&m.app).unwrap();
        let report = audit(&graph, Some(&m.mama), &AuditOptions::default()).unwrap();
        let mgmt = report.mgmt.as_ref().unwrap();
        let contains_cut = |set: &[&String]| {
            mgmt.cuts
                .iter()
                .any(|cut| cut.iter().all(|e| set.contains(&e)))
        };
        let names = mgmt_candidates(&m);
        let mut probed = 0usize;
        for (i, a) in names.iter().enumerate() {
            let single = [a];
            if injection_empties_coverage(&m, &graph, &single) {
                assert!(contains_cut(&single), "{name}: [{a}] missed by audit");
            }
            probed += 1;
            for b in names.iter().skip(i + 1) {
                let pair = [a, b];
                if injection_empties_coverage(&m, &graph, &pair) {
                    assert!(contains_cut(&pair), "{name}: [{a}, {b}] missed by audit");
                }
                probed += 1;
            }
        }
        assert!(probed > names.len(), "{name}: sweep did not run");
    }
}

/// Completeness, application plane: brute-force every single and pair
/// of fallible application components through the configuration
/// evaluator (management plane up, knowledge answered by the real know
/// table); whenever the system fails, the downed set must contain some
/// audit-reported application cut.
#[test]
fn no_dynamic_application_failure_of_low_order_escapes_the_audit() {
    for name in MODELS {
        let m = load(name);
        let graph = FaultGraph::build(&m.app).unwrap();
        let report = audit(&graph, Some(&m.mama), &AuditOptions::default()).unwrap();
        let contains_cut = |down: &[usize], space: &ComponentSpace| {
            report.app_cuts.iter().any(|cut| {
                cut.iter()
                    .all(|e| down.iter().any(|&ix| space.name(ix) == e))
            })
        };

        let space = ComponentSpace::build(&m.app, &m.mama);
        let table = KnowTable::build(&graph, &m.mama, &space);
        let app_fallible: Vec<usize> = space
            .fallible_indices()
            .into_iter()
            .filter(|&ix| ix < space.app_count())
            .collect();
        let baseline: Vec<bool> = (0..space.len()).map(|ix| space.up_prob(ix) > 0.0).collect();
        let fails = |down: &[usize]| {
            let mut state = baseline.clone();
            for &ix in down {
                state[ix] = false;
            }
            let oracle = table.oracle(&state).default_for_missing(false);
            graph
                .configuration(&state, &oracle, KnowPolicy::AnyFailedComponent)
                .is_failed()
        };

        for (i, &a) in app_fallible.iter().enumerate() {
            if fails(&[a]) {
                assert!(
                    contains_cut(&[a], &space),
                    "{name}: [{}] missed by audit",
                    space.name(a)
                );
            }
            for &b in app_fallible.iter().skip(i + 1) {
                if fails(&[a, b]) {
                    assert!(
                        contains_cut(&[a, b], &space),
                        "{name}: [{}, {}] missed by audit",
                        space.name(a),
                        space.name(b)
                    );
                }
            }
        }
    }
}
