//! Differential properties of the compiled MTBDD engine: on every
//! shipped `models/*.fmp` file its distribution and reward sensitivities
//! must agree with the enumeration engine, and on randomly synthesised
//! management planes its distribution must match the compiled bitmask
//! kernel under every policy and knowledge default.

use fmperf::core::{sensitivity, sensitivity_mtbdd, Analysis, RewardSpec};
use fmperf::ftlqn::{FaultGraph, FtlqnModel, KnowPolicy, RequestTarget};
use fmperf::lqn::Multiplicity;
use fmperf::mama::{synthesize, ComponentSpace, KnowTable, SynthOptions};
use fmperf::text::parse;
use proptest::prelude::*;

/// Every shipped model file with its knowledge default
/// (`paper-distributed-as-published` uses the paper's published
/// unmonitored-exempt semantics).
const MODELS: [(&str, bool); 5] = [
    ("paper-centralized.fmp", false),
    ("paper-distributed-as-drawn.fmp", false),
    ("paper-distributed-as-published.fmp", true),
    ("paper-hierarchical.fmp", false),
    ("paper-network.fmp", false),
];

fn load(name: &str) -> fmperf::text::ParsedModel {
    let path = format!("{}/models/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    parse(&src).unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn with_analysis<R>(
    m: &fmperf::text::ParsedModel,
    unmonitored: bool,
    f: impl FnOnce(&Analysis<'_>) -> R,
) -> R {
    let graph = FaultGraph::build(&m.app).unwrap();
    let space = ComponentSpace::build(&m.app, &m.mama);
    let table = KnowTable::build(&graph, &m.mama, &space);
    let analysis = Analysis::new(&graph, &space)
        .with_knowledge(&table)
        .with_unmonitored_known(unmonitored);
    f(&analysis)
}

#[test]
fn mtbdd_distribution_matches_enumeration_on_every_model_file() {
    for (name, unmonitored) in MODELS {
        let m = load(name);
        with_analysis(&m, unmonitored, |analysis| {
            let compiled = analysis.compile_mtbdd();
            let dist = compiled.distribution();
            let reference = analysis.enumerate();
            assert_eq!(dist.len(), reference.len(), "{name}: config sets differ");
            let diff = dist.max_abs_diff(&reference);
            assert!(diff < 1e-12, "{name}: max abs diff {diff}");
            assert!(
                (dist.total_probability() - 1.0).abs() < 1e-12,
                "{name}: does not normalise"
            );
        });
    }
}

/// The lane-level batch evaluator must reproduce the scalar evaluator
/// bit for bit on every shipped model — for row counts that are not a
/// multiple of the lane width (exercising the padded trailing block)
/// and for the degenerate 1-row batch.
#[test]
fn mtbdd_batch_lanes_match_single_evaluations_on_every_model_file() {
    for (name, unmonitored) in MODELS {
        let m = load(name);
        with_analysis(&m, unmonitored, |analysis| {
            let compiled = analysis.compile_mtbdd();
            let target = compiled.fallible_indices()[0];
            for count in [1usize, 3, 4, 7, 8, 13] {
                let rows: Vec<Vec<f64>> = (0..count)
                    .map(|i| {
                        let mut up = compiled.baseline_up().to_vec();
                        up[target] = i as f64 / 16.0;
                        up
                    })
                    .collect();
                for threads in [1, 4] {
                    let batch = compiled.batch_probabilities(&rows, threads);
                    assert_eq!(batch.len(), rows.len(), "{name}: {count} rows");
                    for (row, probs) in rows.iter().zip(&batch) {
                        // `==`, not a tolerance: the lane pass adds the
                        // same masses to the same cells in the same
                        // order as the scalar pass.
                        assert_eq!(
                            probs,
                            &compiled.probabilities_for(row),
                            "{name}: {count} rows x {threads} threads"
                        );
                    }
                }
            }
        });
    }
}

#[test]
fn mtbdd_sensitivity_matches_enumerated_sensitivity_on_every_model_file() {
    for (name, unmonitored) in MODELS {
        let m = load(name);
        let mut spec = RewardSpec::new();
        for &(task, w) in &m.rewards {
            spec = spec.weight(task, w);
        }
        assert!(!m.rewards.is_empty(), "{name}: needs reward declarations");
        with_analysis(&m, unmonitored, |analysis| {
            let reference = sensitivity(analysis, &spec).unwrap();
            let symbolic = sensitivity_mtbdd(analysis, &spec).unwrap();
            assert_eq!(
                reference.derivatives.len(),
                symbolic.derivatives.len(),
                "{name}: fallible sets differ"
            );
            for (&(ia, da), &(ib, db)) in reference.derivatives.iter().zip(&symbolic.derivatives) {
                assert_eq!(ia, ib, "{name}: component order differs");
                assert!(
                    (da - db).abs() < 1e-9,
                    "{name}: component {ia}: {da} vs {db}"
                );
            }
        });
    }
}

/// Parameters drawn by proptest; the scenario is built deterministically
/// from them (same shape as `tests/compiled_kernel.rs`).
#[derive(Debug, Clone)]
struct Params {
    chains: usize,
    servers: usize,
    prefs: Vec<Vec<usize>>,
    fail_app: Vec<f64>,
    mgmt_fail: f64,
    domains: usize,
    hierarchical: bool,
}

fn params() -> impl Strategy<Value = Params> {
    (
        1usize..=2,
        1usize..=2,
        proptest::collection::vec(proptest::collection::vec(0usize..2, 2), 2),
        proptest::collection::vec(0.0f64..0.4, 6),
        0.0f64..0.4,
        1usize..=3,
        any::<bool>(),
    )
        .prop_map(
            |(chains, servers, prefs, fail_app, mgmt_fail, domains, hierarchical)| Params {
                chains,
                servers,
                prefs,
                fail_app,
                mgmt_fail,
                domains,
                hierarchical,
            },
        )
}

/// A layered application: user chains calling a priority service over a
/// shared server pool.
fn build_app(p: &Params) -> FtlqnModel {
    let mut app = FtlqnModel::new();
    let pc = app.add_processor("user-pc", 0.0, Multiplicity::Infinite);

    let mut server_entries = Vec::new();
    for s in 0..p.servers {
        let proc = app.add_processor(
            format!("sp{s}"),
            p.fail_app[s % p.fail_app.len()],
            Multiplicity::Finite(1),
        );
        let task = app.add_task(
            format!("srv{s}"),
            proc,
            p.fail_app[(s + 1) % p.fail_app.len()],
            Multiplicity::Finite(1),
        );
        server_entries.push(app.add_entry(format!("serve{s}"), task, 0.3 + 0.1 * s as f64));
    }

    for c in 0..p.chains {
        let proc = app.add_processor(
            format!("ap{c}"),
            p.fail_app[(2 + c) % p.fail_app.len()],
            Multiplicity::Finite(1),
        );
        let task = app.add_task(
            format!("app{c}"),
            proc,
            p.fail_app[(4 + c) % p.fail_app.len()],
            Multiplicity::Finite(1),
        );
        let users = app.add_reference_task(format!("users{c}"), pc, 0.0, 5, 1.0);
        let e_u = app.add_entry(format!("u{c}"), users, 0.0);
        let e_a = app.add_entry(format!("a{c}"), task, 0.2);
        app.add_request(e_u, RequestTarget::Entry(e_a), 1.0, None);
        let svc = app.add_service(format!("svc{c}"));
        let mut used = Vec::new();
        for &sx in &p.prefs[c] {
            let sx = sx % p.servers;
            if !used.contains(&sx) {
                used.push(sx);
                app.add_alternative(svc, server_entries[sx], None);
            }
        }
        if used.is_empty() {
            app.add_alternative(svc, server_entries[0], None);
        }
        app.add_request(e_a, RequestTarget::Service(svc), 1.0, None);
    }
    app.validate().expect("generated app model must validate");
    app
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The MTBDD distribution equals the compiled bitmask kernel's (to
    /// float associativity, with identical configuration sets) under
    /// every policy and knowledge default, on every synthesised
    /// management plane.
    #[test]
    fn mtbdd_distribution_equals_compiled_kernel(p in params()) {
        let app = build_app(&p);
        let mama = synthesize(&app, &SynthOptions {
            mgmt_fail_prob: p.mgmt_fail,
            domains: p.domains,
            hierarchical: p.hierarchical,
        });
        mama.validate(&app).expect("synthesised plane must validate");
        let graph = FaultGraph::build(&app).unwrap();
        let space = ComponentSpace::build(&app, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        for policy in [KnowPolicy::AnyFailedComponent, KnowPolicy::AllFailedComponents] {
            for unmonitored in [false, true] {
                let analysis = Analysis::new(&graph, &space)
                    .with_knowledge(&table)
                    .with_policy(policy)
                    .with_unmonitored_known(unmonitored);
                let kernel = analysis.compile().expect("small models always compile");
                let reference = kernel.enumerate();
                let dist = analysis.compile_mtbdd().distribution();
                prop_assert_eq!(
                    dist.len(), reference.len(),
                    "{:?}/unmonitored={}: config sets differ", policy, unmonitored
                );
                let diff = dist.max_abs_diff(&reference);
                prop_assert!(
                    diff < 1e-12,
                    "{:?}/unmonitored={}: max abs diff {}", policy, unmonitored, diff
                );
            }
        }
    }
}
