//! The `fmperf` command-line tool: analyse textual models, lint them,
//! render DOT diagrams, and canonicalise model files.
//!
//! ```text
//! fmperf analyze <model.fmp> [--engine enumerate|parallel|symbolic|mtbdd|montecarlo]
//!                            [--samples N] [--policy any|all]
//!                            [--unmonitored-known] [--threads N]
//! fmperf sweep   <model.fmp> --component <name> [--from A] [--to B] [--steps N]
//!                            [--json] [--policy any|all] [--unmonitored-known]
//!                            [--threads N]
//! fmperf audit   <model.fmp> [--json] [--max-order N] [--verify]
//!                            [--policy any|all] [--unmonitored-known]
//! fmperf lint    <model.fmp> [--format text|json] [--json] [--deny warnings]
//!                            [--lint-threshold RULE=N]
//! fmperf check   <model.fmp> [--deny warnings] [--lint-threshold RULE=N]
//! fmperf dot     <model.fmp> fault|mama|knowledge
//! fmperf fmt     <model.fmp>
//! ```
//!
//! `sweep` compiles the model's state→configuration map into a
//! multi-terminal BDD once, then evaluates the configuration
//! distribution (and expected reward, when the model declares rewards)
//! at every availability point with one linear pass each.
//!
//! `audit` runs the symbolic structural analysis: minimal cut sets of
//! the application and management planes up to `--max-order`, proved
//! SPOFs, provably-uncovered components, dead management edges and
//! Birnbaum criticality — all from the compiled Boolean structure,
//! without enumerating fault patterns.  `--verify` replays every
//! reported cut as a dynamic injection/evaluation and fails if any
//! static claim is unconfirmed.
//!
//! `lint` and `check` exit non-zero when any error-level diagnostic is
//! present (or any warning under `--deny warnings`); `analyze` refuses
//! to run on a model with lint errors.  Failing text reports go to
//! stderr, passing ones to stdout; a JSON lint report always goes to
//! stdout (machine consumers parse it there), with only the exit code
//! signalling failure.

use fmperf::core::{
    run_campaign_observed, solve_configurations, Analysis, AnalysisBudget, CampaignOptions,
    ConfigDistribution, EstimateInfo, GuardedOptions, ImportanceOptions, MonteCarloOptions,
    RewardSpec, ScenarioAnalysis, ScenarioProgress, StudyReport, SweepSpec,
};
use fmperf::ftlqn::{FaultGraph, KnowPolicy};
use fmperf::lint::Severity;
use fmperf::mama::{ComponentSpace, KnowTable, KnowledgeGraph};
use fmperf::obs::{MetricsRecorder, Phase, Recorder, Span, TeeRecorder, TraceRecorder};
use fmperf::serve::{ModelSession, ServeConfig, Server, SessionError};
use fmperf::text::{parse, parse_lenient, write_model, LenientParse, ParsedModel};
use std::io::IsTerminal;
use std::process::ExitCode;
use std::time::{Duration, Instant};

const USAGE: &str = "usage:
  fmperf analyze  <model.fmp> [--engine enumerate|parallel|symbolic|mtbdd|montecarlo|importance|guarded]
                              [--samples N] [--seed N] [--json] [--policy any|all]
                              [--is-bias X] [--is-mixture X]
                              [--unmonitored-known] [--threads N]
                              [--budget-states N] [--budget-deadline-ms N]
                              [--budget-nodes N] [--budget-memo N]
                              [--metrics] [--metrics-json PATH] [--trace-out PATH]
  fmperf campaign <model.fmp> [--pairwise] [--json] [--samples N] [--seed N]
                              [--policy any|all] [--unmonitored-known] [--threads N]
                              [--budget-states N] [--budget-deadline-ms N]
                              [--budget-nodes N] [--budget-memo N]
                              [--metrics] [--metrics-json PATH] [--trace-out PATH]
  fmperf sweep    <model.fmp> --component <name> [--from A] [--to B] [--steps N]
                              [--json] [--policy any|all] [--unmonitored-known]
                              [--threads N]
                              [--metrics] [--metrics-json PATH] [--trace-out PATH]
  fmperf profile  <model.fmp> [--samples N] [--seed N] [--threads N] [--json]
                              [--policy any|all] [--unmonitored-known]
                              [--trace-out PATH]
  fmperf serve    [--addr HOST:PORT] [--threads N] [--cache-mb N]
                              [--default-budget-ms N] [--queue-depth N]
                              [--max-body-bytes N] [--access-log PATH|-]
                              [--slow-keep N]
  fmperf audit    <model.fmp> [--json] [--max-order N] [--verify]
                              [--policy any|all] [--unmonitored-known]
  fmperf lint     <model.fmp> [--format text|json] [--json] [--deny warnings]
                              [--lint-threshold RULE=N]
  fmperf check    <model.fmp> [--deny warnings] [--lint-threshold RULE=N]
  fmperf dot      <model.fmp> fault|mama|knowledge
  fmperf fmt      <model.fmp>

`analyze --engine guarded` (implied by any --budget-* flag) runs the
degradation ladder: exact enumeration, then MTBDD, then the compiled
bitmask kernel, then sampling with a batch-means 95% CI — whichever
first fits the budget.  The sampling rung picks importance sampling
automatically when the model's smallest failure probability is below
1e-3.  `--engine importance` forces rare-event importance sampling
directly (failure-biased proposal, likelihood-ratio reweighting):
`--is-bias` sets the expected biased failures per draw (default 1.0)
and `--is-mixture` the defensive nominal-measure weight (default 0.2).
`campaign` re-analyses the model under every single (and with
--pairwise, every pairwise) management-plane fault injection and
reports coverage loss and reward deltas per scenario.

`audit` proves minimal cut sets, SPOFs, uncovered components and dead
management edges from the compiled Boolean structure (up to
--max-order, default 3); `--verify` replays every reported cut
dynamically and fails on any unconfirmed claim.  `--lint-threshold`
overrides a configurable rule threshold (FM201, FM203, FM204, FM205, FM304),
e.g. `--lint-threshold FM201=1048576`.

`serve` runs the analysis pipelines as a crash-tolerant HTTP daemon:
POST a model body to /v1/analyze, /v1/sweep?component=NAME or
/v1/campaign (budget/sampling knobs as query parameters), scrape
/metrics, probe /healthz and /readyz, and POST /quitquitquit to drain.
Saturation answers 503 with Retry-After; per-request deadlines degrade
through the guarded ladder instead of hanging.

`--metrics` prints per-phase timings and engine counters after the run
(to stderr under --json); `--metrics-json` writes the same data as
machine-readable JSON; `--trace-out` writes a Chrome trace-event file
loadable in chrome://tracing.  `profile` runs every applicable engine
on the model and prints a comparative phase/counter breakdown.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            if failing_report_belongs_on_stdout(&args, &msg) {
                // A failing machine-readable lint report still goes to
                // stdout — consumers parse it there and read the exit
                // code for pass/fail, exactly like the passing case.
                print!("{msg}");
            } else if msg.contains('\n') {
                // Multi-line failures (lint reports) are already
                // formatted; single-line ones get the program-name
                // prefix.
                eprint!("{msg}");
                if !msg.ends_with('\n') {
                    eprintln!();
                }
            } else {
                eprintln!("fmperf: {msg}");
            }
            ExitCode::FAILURE
        }
    }
}

/// Whether a failing `run` result is a JSON lint report that must keep
/// going to stdout (the historical behaviour routed it to stderr, which
/// made `lint --json --deny warnings` emit its JSON on the wrong
/// stream).  Plain errors — unreadable files, bad flags — stay on
/// stderr even under `--json`.
fn failing_report_belongs_on_stdout(args: &[String], msg: &str) -> bool {
    let json_lint = args.first().is_some_and(|c| c == "lint")
        && args.iter().enumerate().any(|(i, a)| {
            a == "--json" || (a == "--format" && args.get(i + 1).is_some_and(|v| v == "json"))
        });
    json_lint && msg.trim_start().starts_with('{')
}

/// Options of the `analyze` subcommand.
struct AnalyzeOptions {
    engine: String,
    samples: u64,
    seed: u64,
    json: bool,
    policy: KnowPolicy,
    unmonitored_known: bool,
    threads: usize,
    is_bias: f64,
    is_mixture: f64,
    budget: BudgetFlags,
    obs: ObsFlags,
}

/// Explicitly supplied `--budget-*` values (defaults fill the gaps).
#[derive(Default)]
struct BudgetFlags {
    states: Option<u64>,
    deadline_ms: Option<u64>,
    nodes: Option<usize>,
    memo: Option<usize>,
}

impl BudgetFlags {
    /// Did any `--budget-*` flag appear?  (It then implies the guarded
    /// engine.)
    fn any_set(&self) -> bool {
        self.states.is_some()
            || self.deadline_ms.is_some()
            || self.nodes.is_some()
            || self.memo.is_some()
    }

    /// The defaults with the explicit flags layered on top.
    fn to_budget(&self) -> AnalysisBudget {
        let mut b = AnalysisBudget::default();
        if let Some(s) = self.states {
            b.max_states = s;
        }
        if let Some(ms) = self.deadline_ms {
            b.deadline = Some(Duration::from_millis(ms));
        }
        if let Some(n) = self.nodes {
            b.max_mtbdd_nodes = n;
        }
        if let Some(m) = self.memo {
            b.max_memo_entries = m;
        }
        b
    }

    /// Consumes one `--budget-*` flag if `flag` is one; `Ok(false)`
    /// means the flag is not budget-related.
    fn parse_flag<'a>(
        &mut self,
        flag: &str,
        it: &mut impl Iterator<Item = &'a str>,
    ) -> Result<bool, String> {
        let mut grab = |what: &str| -> Result<&'a str, String> {
            it.next().ok_or_else(|| format!("{what} needs a value"))
        };
        match flag {
            "--budget-states" => {
                self.states = Some(
                    grab("--budget-states")?
                        .parse()
                        .map_err(|_| "bad --budget-states value")?,
                );
            }
            "--budget-deadline-ms" => {
                self.deadline_ms = Some(
                    grab("--budget-deadline-ms")?
                        .parse()
                        .map_err(|_| "bad --budget-deadline-ms value")?,
                );
            }
            "--budget-nodes" => {
                self.nodes = Some(
                    grab("--budget-nodes")?
                        .parse()
                        .map_err(|_| "bad --budget-nodes value")?,
                );
            }
            "--budget-memo" => {
                self.memo = Some(
                    grab("--budget-memo")?
                        .parse()
                        .map_err(|_| "bad --budget-memo value")?,
                );
            }
            _ => return Ok(false),
        }
        Ok(true)
    }
}

/// Observability flags shared by `analyze`, `campaign` and `sweep`.
#[derive(Default)]
struct ObsFlags {
    metrics: bool,
    metrics_json: Option<String>,
    trace_out: Option<String>,
}

impl ObsFlags {
    /// Is any instrumentation requested?  (Otherwise engines run with
    /// no recorder at all.)
    fn enabled(&self) -> bool {
        self.metrics || self.metrics_json.is_some() || self.trace_out.is_some()
    }

    /// Consumes one observability flag if `flag` is one; `Ok(false)`
    /// means the flag is not observability-related.
    fn parse_flag<'a>(
        &mut self,
        flag: &str,
        it: &mut impl Iterator<Item = &'a str>,
    ) -> Result<bool, String> {
        match flag {
            "--metrics" => self.metrics = true,
            "--metrics-json" => {
                self.metrics_json = Some(it.next().ok_or("--metrics-json needs a path")?.into());
            }
            "--trace-out" => {
                self.trace_out = Some(it.next().ok_or("--trace-out needs a path")?.into());
            }
            _ => return Ok(false),
        }
        Ok(true)
    }
}

/// Engine provenance carried into the metrics report: which engine
/// produced the result and, for the guarded ladder, which rungs refused
/// and why.
#[derive(Default)]
struct Provenance {
    engine: String,
    requested: Option<String>,
    descents: Vec<(String, String)>,
}

/// `12.34ms`-style rendering of a nanosecond count.
fn human_nanos(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// The human-readable phase/counter table of one recorder (non-zero
/// counters only).
fn metrics_table(metrics: &MetricsRecorder) -> String {
    let mut out = String::new();
    let phases = metrics.phases();
    if !phases.is_empty() {
        out.push_str(&format!(
            "  {:<20} {:>10} {:>7}\n",
            "phase", "time", "spans"
        ));
        for (phase, nanos, count) in &phases {
            out.push_str(&format!(
                "  {:<20} {:>10} {:>7}\n",
                phase.name(),
                human_nanos(*nanos),
                count
            ));
        }
    }
    let nonzero: Vec<_> = metrics
        .counters()
        .into_iter()
        .filter(|&(_, value)| value != 0)
        .collect();
    if !nonzero.is_empty() {
        out.push_str(&format!("  {:<20} {:>18}\n", "counter", "value"));
        for (counter, value) in nonzero {
            out.push_str(&format!("  {:<20} {:>18}\n", counter.name(), value));
        }
    }
    out
}

/// Inline JSON object with every counter (zero or not — the schema is
/// stable across runs).
fn counters_json(metrics: &MetricsRecorder) -> String {
    let items: Vec<String> = metrics
        .counters()
        .iter()
        .map(|(c, v)| format!("\"{}\": {v}", c.name()))
        .collect();
    format!("{{{}}}", items.join(", "))
}

/// Inline JSON array of the non-zero phase timings.
fn phases_json(metrics: &MetricsRecorder) -> String {
    let items: Vec<String> = metrics
        .phases()
        .iter()
        .map(|(p, nanos, spans)| {
            format!(
                "{{\"phase\": \"{}\", \"nanos\": {nanos}, \"spans\": {spans}}}",
                p.name()
            )
        })
        .collect();
    format!("[{}]", items.join(", "))
}

/// The `fmperf-metrics-v1` machine-readable report.
fn metrics_json_string(
    command: &str,
    model: &str,
    prov: &Provenance,
    metrics: &MetricsRecorder,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"fmperf-metrics-v1\",\n");
    out.push_str(&format!("  \"command\": \"{}\",\n", json_escape(command)));
    out.push_str(&format!("  \"model\": \"{}\",\n", json_escape(model)));
    out.push_str(&format!(
        "  \"engine\": \"{}\",\n",
        json_escape(&prov.engine)
    ));
    if let Some(req) = &prov.requested {
        out.push_str(&format!("  \"requested\": \"{}\",\n", json_escape(req)));
    }
    let descents: Vec<String> = prov
        .descents
        .iter()
        .map(|(e, r)| {
            format!(
                "{{\"engine\": \"{}\", \"reason\": \"{}\"}}",
                json_escape(e),
                json_escape(r)
            )
        })
        .collect();
    out.push_str(&format!("  \"descents\": [{}],\n", descents.join(", ")));
    out.push_str(&format!("  \"counters\": {},\n", counters_json(metrics)));
    out.push_str(&format!("  \"phases\": {}\n}}\n", phases_json(metrics)));
    out
}

fn write_text_file(path: &str, content: &str) -> Result<(), String> {
    std::fs::write(path, content).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Writes the requested observability outputs after a command ran and
/// returns the text to append to stdout (the human table, unless the
/// main output is JSON — then the table goes to stderr).
fn emit_obs(
    flags: &ObsFlags,
    command: &str,
    model: &str,
    prov: &Provenance,
    metrics: &MetricsRecorder,
    trace: &TraceRecorder,
    json_mode: bool,
) -> Result<String, String> {
    if let Some(path) = &flags.metrics_json {
        write_text_file(path, &metrics_json_string(command, model, prov, metrics))?;
    }
    if let Some(path) = &flags.trace_out {
        write_text_file(path, &trace.chrome_trace_json())?;
    }
    if flags.metrics {
        let table = format!(
            "\nmetrics (engine {}):\n{}",
            prov.engine,
            metrics_table(metrics)
        );
        if json_mode {
            eprint!("{table}");
        } else {
            return Ok(table);
        }
    }
    Ok(String::new())
}

/// Minimal JSON string escaping (the labels we emit contain no control
/// characters).
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The importance-sampling fields of an estimate object (leading comma
/// included), or the empty string for a plain Monte Carlo estimate.
fn is_json_fields(est: &EstimateInfo) -> String {
    est.is.map_or(String::new(), |is| {
        format!(
            ", \"ess\": {}, \"weight_cv\": {}, \"mean_weight\": {}, \"bias\": {}, \"mixture\": {}",
            is.ess, is.weight_cv, is.mean_weight, is.bias, is.mixture
        )
    })
}

fn load(path: &str) -> Result<ParsedModel, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse(&src).map_err(|e| format!("{path}: {e}"))
}

fn load_lenient(path: &str) -> Result<LenientParse, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_lenient(&src).map_err(|e| format!("{path}: {e}"))
}

/// Opens the shared CLI/daemon model session for `path`: read, parse
/// and lint-preflight in one step (the same pipeline `fmperf serve`
/// runs per request), yielding the parsed model, its preflight
/// diagnostics and its stable content hash.
fn open_session(path: &str, recorder: Option<&dyn Recorder>) -> Result<ModelSession, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    ModelSession::open_observed(&src, recorder).map_err(|e| match e {
        SessionError::Syntax(errs) => errs
            .iter()
            .map(|pe| format!("{path}: {pe}"))
            .collect::<Vec<_>>()
            .join("\n"),
        SessionError::Lint(diags) => fmperf::lint::render_text(path, &diags),
    })
}

/// Accepts `--deny warnings`; anything else is an error.
fn parse_deny(value: Option<&str>) -> Result<(), String> {
    match value {
        Some("warnings") => Ok(()),
        Some(other) => Err(format!(
            "unknown --deny value `{other}` (expected `warnings`)"
        )),
        None => Err("--deny needs a value".into()),
    }
}

/// Dispatches a full command line; returns the text to print.
fn run(args: &[String]) -> Result<String, String> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("analyze") => {
            let path = it.next().ok_or(USAGE)?;
            let mut opts = AnalyzeOptions {
                engine: "enumerate".into(),
                samples: 100_000,
                seed: 0xF00D,
                json: false,
                policy: KnowPolicy::AnyFailedComponent,
                unmonitored_known: false,
                threads: 4,
                is_bias: fmperf::core::importance::DEFAULT_BIAS,
                is_mixture: fmperf::core::importance::DEFAULT_MIXTURE,
                budget: BudgetFlags::default(),
                obs: ObsFlags::default(),
            };
            let mut engine_explicit = false;
            while let Some(flag) = it.next() {
                match flag {
                    "--engine" => {
                        opts.engine = it.next().ok_or("--engine needs a value")?.into();
                        engine_explicit = true;
                    }
                    "--samples" => {
                        opts.samples = it
                            .next()
                            .ok_or("--samples needs a value")?
                            .parse()
                            .map_err(|_| "bad --samples value")?;
                    }
                    "--seed" => {
                        opts.seed = it
                            .next()
                            .ok_or("--seed needs a value")?
                            .parse()
                            .map_err(|_| "bad --seed value")?;
                    }
                    "--json" => opts.json = true,
                    "--policy" => {
                        opts.policy = match it.next().ok_or("--policy needs a value")? {
                            "any" => KnowPolicy::AnyFailedComponent,
                            "all" => KnowPolicy::AllFailedComponents,
                            other => return Err(format!("unknown policy `{other}`")),
                        };
                    }
                    "--unmonitored-known" => opts.unmonitored_known = true,
                    "--threads" => {
                        opts.threads = it
                            .next()
                            .ok_or("--threads needs a value")?
                            .parse()
                            .map_err(|_| "bad --threads value")?;
                    }
                    "--is-bias" => {
                        opts.is_bias = it
                            .next()
                            .ok_or("--is-bias needs a value")?
                            .parse()
                            .map_err(|_| "bad --is-bias value")?;
                    }
                    "--is-mixture" => {
                        opts.is_mixture = it
                            .next()
                            .ok_or("--is-mixture needs a value")?
                            .parse()
                            .map_err(|_| "bad --is-mixture value")?;
                    }
                    other if opts.budget.parse_flag(other, &mut it)? => {}
                    other if opts.obs.parse_flag(other, &mut it)? => {}
                    other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
                }
            }
            // A budget implies the guarded ladder; an explicit
            // conflicting engine choice is an error, not a silent
            // override.
            if opts.budget.any_set() {
                if engine_explicit && opts.engine != "guarded" {
                    return Err(format!(
                        "--budget-* flags require the guarded engine, not `{}`",
                        opts.engine
                    ));
                }
                opts.engine = "guarded".into();
            }
            let metrics = MetricsRecorder::new();
            let trace = TraceRecorder::new();
            let tee = TeeRecorder::new(&metrics, &trace);
            let recorder: Option<&dyn Recorder> =
                if opts.obs.enabled() { Some(&tee) } else { None };
            // Pre-flight: refuse models with lint errors, mention
            // warnings without blocking on them.
            let session = open_session(path, recorder)?;
            let warns = session.warnings();
            // The warning banner would corrupt machine-readable output.
            let header = if warns > 0 && !opts.json {
                format!("lint: {warns} warning(s); run `fmperf lint {path}` for details\n\n")
            } else {
                String::new()
            };
            let mut prov = Provenance::default();
            let body = analyze(session.model(), session.hash(), &opts, recorder, &mut prov)?;
            let extra = emit_obs(
                &opts.obs, "analyze", path, &prov, &metrics, &trace, opts.json,
            )?;
            Ok(header + &body + &extra)
        }
        Some("campaign") => {
            let path = it.next().ok_or(USAGE)?;
            let mut opts = CampaignCliOptions {
                pairwise: false,
                json: false,
                samples: 100_000,
                seed: 0xF00D,
                policy: KnowPolicy::AnyFailedComponent,
                unmonitored_known: false,
                threads: 4,
                budget: BudgetFlags::default(),
                obs: ObsFlags::default(),
            };
            while let Some(flag) = it.next() {
                match flag {
                    "--pairwise" => opts.pairwise = true,
                    "--json" => opts.json = true,
                    "--samples" => {
                        opts.samples = it
                            .next()
                            .ok_or("--samples needs a value")?
                            .parse()
                            .map_err(|_| "bad --samples value")?;
                    }
                    "--seed" => {
                        opts.seed = it
                            .next()
                            .ok_or("--seed needs a value")?
                            .parse()
                            .map_err(|_| "bad --seed value")?;
                    }
                    "--policy" => {
                        opts.policy = match it.next().ok_or("--policy needs a value")? {
                            "any" => KnowPolicy::AnyFailedComponent,
                            "all" => KnowPolicy::AllFailedComponents,
                            other => return Err(format!("unknown policy `{other}`")),
                        };
                    }
                    "--unmonitored-known" => opts.unmonitored_known = true,
                    "--threads" => {
                        opts.threads = it
                            .next()
                            .ok_or("--threads needs a value")?
                            .parse()
                            .map_err(|_| "bad --threads value")?;
                    }
                    other if opts.budget.parse_flag(other, &mut it)? => {}
                    other if opts.obs.parse_flag(other, &mut it)? => {}
                    other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
                }
            }
            let metrics = MetricsRecorder::new();
            let trace = TraceRecorder::new();
            let tee = TeeRecorder::new(&metrics, &trace);
            let recorder: Option<&dyn Recorder> =
                if opts.obs.enabled() { Some(&tee) } else { None };
            let session = open_session(path, recorder)?;
            let mut prov = Provenance::default();
            let body = campaign_cmd(session.model(), &opts, recorder, &mut prov)?;
            let extra = emit_obs(
                &opts.obs, "campaign", path, &prov, &metrics, &trace, opts.json,
            )?;
            Ok(body + &extra)
        }
        Some("sweep") => {
            let path = it.next().ok_or(USAGE)?;
            let mut opts = SweepOptions {
                component: None,
                from: 0.5,
                to: 1.0,
                steps: 11,
                threads: 4,
                json: false,
                policy: KnowPolicy::AnyFailedComponent,
                unmonitored_known: false,
                obs: ObsFlags::default(),
            };
            while let Some(flag) = it.next() {
                match flag {
                    "--component" => {
                        opts.component =
                            Some(it.next().ok_or("--component needs a value")?.to_string());
                    }
                    "--from" => {
                        opts.from = it
                            .next()
                            .ok_or("--from needs a value")?
                            .parse()
                            .map_err(|_| "bad --from value")?;
                    }
                    "--to" => {
                        opts.to = it
                            .next()
                            .ok_or("--to needs a value")?
                            .parse()
                            .map_err(|_| "bad --to value")?;
                    }
                    "--steps" => {
                        opts.steps = it
                            .next()
                            .ok_or("--steps needs a value")?
                            .parse()
                            .map_err(|_| "bad --steps value")?;
                    }
                    "--threads" => {
                        opts.threads = it
                            .next()
                            .ok_or("--threads needs a value")?
                            .parse()
                            .map_err(|_| "bad --threads value")?;
                    }
                    "--json" => opts.json = true,
                    "--policy" => {
                        opts.policy = match it.next().ok_or("--policy needs a value")? {
                            "any" => KnowPolicy::AnyFailedComponent,
                            "all" => KnowPolicy::AllFailedComponents,
                            other => return Err(format!("unknown policy `{other}`")),
                        };
                    }
                    "--unmonitored-known" => opts.unmonitored_known = true,
                    other if opts.obs.parse_flag(other, &mut it)? => {}
                    other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
                }
            }
            let metrics = MetricsRecorder::new();
            let trace = TraceRecorder::new();
            let tee = TeeRecorder::new(&metrics, &trace);
            let recorder: Option<&dyn Recorder> =
                if opts.obs.enabled() { Some(&tee) } else { None };
            let session = open_session(path, recorder)?;
            let mut prov = Provenance::default();
            let body = sweep_cmd(session.model(), &opts, recorder, &mut prov)?;
            let extra = emit_obs(&opts.obs, "sweep", path, &prov, &metrics, &trace, opts.json)?;
            Ok(body + &extra)
        }
        Some("profile") => {
            let path = it.next().ok_or(USAGE)?;
            let mut opts = ProfileOptions {
                samples: 100_000,
                seed: 0xF00D,
                threads: 4,
                json: false,
                policy: KnowPolicy::AnyFailedComponent,
                unmonitored_known: false,
                trace_out: None,
            };
            while let Some(flag) = it.next() {
                match flag {
                    "--samples" => {
                        opts.samples = it
                            .next()
                            .ok_or("--samples needs a value")?
                            .parse()
                            .map_err(|_| "bad --samples value")?;
                    }
                    "--seed" => {
                        opts.seed = it
                            .next()
                            .ok_or("--seed needs a value")?
                            .parse()
                            .map_err(|_| "bad --seed value")?;
                    }
                    "--threads" => {
                        opts.threads = it
                            .next()
                            .ok_or("--threads needs a value")?
                            .parse()
                            .map_err(|_| "bad --threads value")?;
                    }
                    "--json" => opts.json = true,
                    "--policy" => {
                        opts.policy = match it.next().ok_or("--policy needs a value")? {
                            "any" => KnowPolicy::AnyFailedComponent,
                            "all" => KnowPolicy::AllFailedComponents,
                            other => return Err(format!("unknown policy `{other}`")),
                        };
                    }
                    "--unmonitored-known" => opts.unmonitored_known = true,
                    "--trace-out" => {
                        opts.trace_out =
                            Some(it.next().ok_or("--trace-out needs a path")?.to_string());
                    }
                    other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
                }
            }
            let trace = TraceRecorder::new();
            let setup = MetricsRecorder::new();
            let setup_tee = TeeRecorder::new(&setup, &trace);
            let setup_rec: Option<&dyn Recorder> = Some(&setup_tee);
            let session = open_session(path, setup_rec)?;
            profile_cmd(session.model(), path, &opts, setup_rec, &setup, &trace)
        }
        Some("serve") => {
            let mut config = ServeConfig::default();
            while let Some(flag) = it.next() {
                match flag {
                    "--addr" => {
                        config.addr = it.next().ok_or("--addr needs a value")?.into();
                    }
                    "--threads" => {
                        config.threads = it
                            .next()
                            .ok_or("--threads needs a value")?
                            .parse()
                            .map_err(|_| "bad --threads value")?;
                    }
                    "--cache-mb" => {
                        config.cache_mb = it
                            .next()
                            .ok_or("--cache-mb needs a value")?
                            .parse()
                            .map_err(|_| "bad --cache-mb value")?;
                    }
                    "--default-budget-ms" => {
                        config.default_budget_ms = it
                            .next()
                            .ok_or("--default-budget-ms needs a value")?
                            .parse()
                            .map_err(|_| "bad --default-budget-ms value")?;
                    }
                    "--queue-depth" => {
                        config.queue_depth = it
                            .next()
                            .ok_or("--queue-depth needs a value")?
                            .parse()
                            .map_err(|_| "bad --queue-depth value")?;
                    }
                    "--max-body-bytes" => {
                        config.max_body_bytes = it
                            .next()
                            .ok_or("--max-body-bytes needs a value")?
                            .parse()
                            .map_err(|_| "bad --max-body-bytes value")?;
                    }
                    "--access-log" => {
                        config.access_log =
                            Some(it.next().ok_or("--access-log needs a value")?.into());
                    }
                    "--slow-keep" => {
                        config.slow_keep = it
                            .next()
                            .ok_or("--slow-keep needs a value")?
                            .parse()
                            .map_err(|_| "bad --slow-keep value")?;
                    }
                    "--test-routes" => config.test_routes = true,
                    other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
                }
            }
            let (threads, cache_mb) = (config.threads, config.cache_mb);
            let handle = Server::start(config).map_err(|e| format!("cannot start server: {e}"))?;
            eprintln!(
                "fmperf serve: listening on {} ({threads} worker(s), {cache_mb} MiB cache); \
                 POST /quitquitquit to drain",
                handle.local_addr()
            );
            let report = handle.wait();
            Ok(format!(
                "drained: {} request(s) served, {} shed, {} panic(s) caught\n",
                report.served, report.shed, report.panics_caught
            ))
        }
        Some("audit") => {
            let path = it.next().ok_or(USAGE)?;
            let mut json = false;
            let mut verify = false;
            let mut opts = fmperf::core::AuditOptions::default();
            while let Some(flag) = it.next() {
                match flag {
                    "--json" => json = true,
                    "--verify" => verify = true,
                    "--max-order" => {
                        opts.max_order = it
                            .next()
                            .ok_or("--max-order needs a value")?
                            .parse()
                            .map_err(|_| "bad --max-order value")?;
                    }
                    "--policy" => {
                        opts.policy = match it.next().ok_or("--policy needs a value")? {
                            "any" => KnowPolicy::AnyFailedComponent,
                            "all" => KnowPolicy::AllFailedComponents,
                            other => return Err(format!("unknown policy `{other}`")),
                        };
                    }
                    "--unmonitored-known" => opts.unmonitored_known = true,
                    other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
                }
            }
            audit_cmd(path, json, verify, &opts)
        }
        Some("lint") => {
            let path = it.next().ok_or(USAGE)?;
            let mut json = false;
            let mut deny_warnings = false;
            let mut config = fmperf::lint::LintConfig::default();
            while let Some(flag) = it.next() {
                match flag {
                    "--format" => {
                        json = match it.next().ok_or("--format needs a value")? {
                            "text" => false,
                            "json" => true,
                            other => return Err(format!("unknown format `{other}`")),
                        };
                    }
                    "--json" => json = true,
                    "--deny" => {
                        parse_deny(it.next())?;
                        deny_warnings = true;
                    }
                    "--lint-threshold" => {
                        config.apply(it.next().ok_or("--lint-threshold needs RULE=N")?)?;
                    }
                    other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
                }
            }
            let parsed = load_lenient(path)?;
            let diags = fmperf::lint::lint_with(&parsed, &config);
            let report = if json {
                fmperf::lint::render_json(path, &diags)
            } else {
                fmperf::lint::render_text(path, &diags)
            };
            let failed = fmperf::lint::count(&diags, Severity::Error) > 0
                || (deny_warnings && fmperf::lint::count(&diags, Severity::Warning) > 0);
            if failed {
                Err(report)
            } else {
                Ok(report)
            }
        }
        Some("check") => {
            let path = it.next().ok_or(USAGE)?;
            let mut deny_warnings = false;
            let mut config = fmperf::lint::LintConfig::default();
            while let Some(flag) = it.next() {
                match flag {
                    "--deny" => {
                        parse_deny(it.next())?;
                        deny_warnings = true;
                    }
                    "--lint-threshold" => {
                        config.apply(it.next().ok_or("--lint-threshold needs RULE=N")?)?;
                    }
                    other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
                }
            }
            let parsed = load_lenient(path)?;
            let diags = fmperf::lint::lint_with(&parsed, &config);
            let errors = fmperf::lint::count(&diags, Severity::Error);
            let warns = fmperf::lint::count(&diags, Severity::Warning);
            if errors > 0 || (deny_warnings && warns > 0) {
                return Err(fmperf::lint::render_text(path, &diags));
            }
            let m = &parsed.model;
            let mut out = format!(
                "{path}: ok ({} tasks, {} entries, {} services, {} mgmt components, \
                 {} connectors); lint: {warns} warning(s), {} note(s)\n",
                m.app.task_count(),
                m.app.entry_count(),
                m.app.service_count(),
                m.mama.component_count(),
                m.mama.connector_count(),
                fmperf::lint::count(&diags, Severity::Note),
            );
            // Surface the engine-suitability note (FM202) directly: on
            // large models, `check` is the natural place to learn that
            // sweeps should go through the compiled MTBDD engine.
            for d in diags
                .iter()
                .filter(|d| d.code == fmperf::lint::LintCode::EngineSuggestion)
            {
                out.push_str(&format!("{d}\n"));
            }
            Ok(out)
        }
        Some("dot") => {
            let path = it.next().ok_or(USAGE)?;
            let what = it.next().ok_or(USAGE)?;
            let m = load(path)?;
            match what {
                "fault" => {
                    let graph = FaultGraph::build(&m.app).map_err(|e| e.to_string())?;
                    Ok(fmperf::ftlqn::dot::fault_graph_dot(&graph))
                }
                "mama" => Ok(fmperf::mama::dot::mama_dot(&m.mama)),
                "knowledge" => {
                    let kg = KnowledgeGraph::build(&m.mama);
                    Ok(fmperf::mama::dot::knowledge_graph_dot(&m.mama, &kg))
                }
                other => Err(format!("unknown dot target `{other}`\n{USAGE}")),
            }
        }
        Some("fmt") => {
            let path = it.next().ok_or(USAGE)?;
            let m = load(path)?;
            Ok(write_model(&m.app, &m.mama, &m.rewards))
        }
        _ => Err(USAGE.to_string()),
    }
}

/// The `audit` subcommand: run the symbolic structural audit, render it
/// as text or JSON (`schemas/fmperf-audit-v1.schema.json`), and — with
/// `--verify` — replay every reported cut dynamically, failing when any
/// static claim is unconfirmed.
fn audit_cmd(
    path: &str,
    json: bool,
    verify: bool,
    opts: &fmperf::core::AuditOptions,
) -> Result<String, String> {
    use fmperf::core::CutConfirmation;
    let m = load(path)?;
    let graph = FaultGraph::build(&m.app).map_err(|e| e.to_string())?;
    let mama = (m.mama.component_count() > 0).then_some(&m.mama);
    let report = fmperf::core::audit(&graph, mama, opts).map_err(|e| e.to_string())?;

    let mut confirmations: Vec<(&'static str, CutConfirmation)> = Vec::new();
    if verify {
        if let (Some(mm), Some(mgmt)) = (mama, &report.mgmt) {
            for cut in &mgmt.cuts {
                confirmations.push(("mgmt", fmperf::core::replay_mgmt_cut(&graph, mm, cut)?));
            }
        }
        for cut in &report.app_cuts {
            confirmations.push((
                "app",
                fmperf::core::replay_app_cut(&graph, mama, cut, opts)?,
            ));
        }
    }
    let unconfirmed = confirmations.iter().filter(|(_, c)| !c.confirmed).count();

    let out = if json {
        render_audit_json(path, &report, verify.then_some(&confirmations))
    } else {
        render_audit_text(path, &report, verify.then_some(&confirmations))
    };
    if unconfirmed > 0 {
        return Err(format!(
            "{out}audit: {unconfirmed} static finding(s) unconfirmed by dynamic replay\n"
        ));
    }
    Ok(out)
}

fn json_str_array(items: &[String]) -> String {
    let quoted: Vec<String> = items
        .iter()
        .map(|s| format!("\"{}\"", json_escape(s)))
        .collect();
    format!("[{}]", quoted.join(", "))
}

fn json_cut_array(cuts: &[Vec<String>]) -> String {
    let sets: Vec<String> = cuts.iter().map(|c| json_str_array(c)).collect();
    format!("[{}]", sets.join(", "))
}

fn render_audit_json(
    path: &str,
    report: &fmperf::core::AuditReport,
    confirmations: Option<&Vec<(&'static str, fmperf::core::CutConfirmation)>>,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"fmperf-audit-v1\",\n");
    out.push_str(&format!("  \"model\": \"{}\",\n", json_escape(path)));
    out.push_str(&format!(
        "  \"max_order\": {}, \"components\": {}, \"fallible\": {},\n",
        report.max_order, report.components, report.fallible
    ));
    out.push_str(&format!(
        "  \"baseline_failed\": {},\n",
        report.baseline_failed
    ));
    let app_spofs: Vec<String> = report.app_spofs().iter().map(|s| s.to_string()).collect();
    out.push_str(&format!(
        "  \"app\": {{ \"spofs\": {}, \"cuts\": {} }},\n",
        json_str_array(&app_spofs),
        json_cut_array(&report.app_cuts)
    ));
    match &report.mgmt {
        None => out.push_str("  \"mgmt\": null,\n"),
        Some(mgmt) => {
            let spofs: Vec<String> = mgmt.spofs().iter().map(|s| s.to_string()).collect();
            let uncovered: Vec<String> = mgmt
                .uncovered
                .iter()
                .map(|u| {
                    format!(
                        "{{ \"name\": \"{}\", \"has_paths\": {} }}",
                        json_escape(&u.name),
                        u.has_paths
                    )
                })
                .collect();
            out.push_str(&format!(
                "  \"mgmt\": {{\n    \"spofs\": {},\n    \"cuts\": {},\n    \
                 \"baseline_covered\": {},\n    \"uncovered\": [{}],\n    \
                 \"dead_edges\": {}\n  }},\n",
                json_str_array(&spofs),
                json_cut_array(&mgmt.cuts),
                json_str_array(&mgmt.baseline_covered),
                uncovered.join(", "),
                json_str_array(&mgmt.dead_edges)
            ));
        }
    }
    let crit: Vec<String> = report
        .criticality
        .iter()
        .map(|(name, b)| {
            format!(
                "{{ \"component\": \"{}\", \"birnbaum\": {:.6} }}",
                json_escape(name),
                b
            )
        })
        .collect();
    out.push_str(&format!("  \"criticality\": [{}]", crit.join(", ")));
    if let Some(confs) = confirmations {
        let rows: Vec<String> = confs
            .iter()
            .map(|(plane, c)| {
                let loss = match c.coverage_loss {
                    Some(n) => n.to_string(),
                    None => "null".into(),
                };
                format!(
                    "{{ \"plane\": \"{plane}\", \"elements\": {}, \"label\": \"{}\", \
                     \"confirmed\": {}, \"coverage_loss\": {loss} }}",
                    json_str_array(&c.elements),
                    json_escape(&c.label),
                    c.confirmed
                )
            })
            .collect();
        out.push_str(&format!(",\n  \"verification\": [{}]", rows.join(", ")));
    }
    out.push_str("\n}\n");
    out
}

fn render_audit_text(
    path: &str,
    report: &fmperf::core::AuditReport,
    confirmations: Option<&Vec<(&'static str, fmperf::core::CutConfirmation)>>,
) -> String {
    let mut out = format!(
        "{path}: structural audit (max order {})\n  components: {} ({} fallible); baseline {}\n",
        report.max_order,
        report.components,
        report.fallible,
        if report.baseline_failed {
            "FAILED — the system is down with every component up"
        } else {
            "operational"
        }
    );
    let render_cuts = |out: &mut String, cuts: &[Vec<String>]| {
        if cuts.is_empty() {
            out.push_str("  no cut sets up to the searched order\n");
        } else {
            out.push_str(&format!("  {} minimal cut set(s):\n", cuts.len()));
            for cut in cuts {
                out.push_str(&format!("    order {}: {}\n", cut.len(), cut.join(" + ")));
            }
        }
    };
    out.push_str("\napplication plane:\n");
    for spof in report.app_spofs() {
        out.push_str(&format!(
            "  SPOF: {spof} — its failure alone brings the system down\n"
        ));
    }
    render_cuts(&mut out, &report.app_cuts);
    match &report.mgmt {
        None => out.push_str("\nmanagement plane: none (no management section)\n"),
        Some(mgmt) => {
            out.push_str(&format!(
                "\nmanagement plane:\n  baseline coverage: {} component(s)\n",
                mgmt.baseline_covered.len()
            ));
            for spof in mgmt.spofs() {
                out.push_str(&format!(
                    "  SPOF: {spof} — its failure alone destroys all coverage\n"
                ));
            }
            render_cuts(&mut out, &mgmt.cuts);
            if mgmt.uncovered.is_empty() {
                out.push_str("  provably uncovered: none\n");
            } else {
                for u in &mgmt.uncovered {
                    out.push_str(&format!(
                        "  provably uncovered: {} ({})\n",
                        u.name,
                        if u.has_paths {
                            "paths exist but can never hold"
                        } else {
                            "no knowledge path"
                        }
                    ));
                }
            }
            if mgmt.dead_edges.is_empty() {
                out.push_str("  dead edges: none\n");
            } else {
                out.push_str(&format!("  dead edges: {}\n", mgmt.dead_edges.join(", ")));
            }
        }
    }
    out.push_str("\ncriticality (Birnbaum importance):\n");
    for (name, b) in &report.criticality {
        out.push_str(&format!("  {b:>9.6}  {name}\n"));
    }
    if let Some(confs) = confirmations {
        let ok = confs.iter().filter(|(_, c)| c.confirmed).count();
        out.push_str(&format!(
            "\nverification: {ok}/{} finding(s) confirmed by dynamic replay\n",
            confs.len()
        ));
        for (plane, c) in confs.iter().filter(|(_, c)| !c.confirmed) {
            out.push_str(&format!("  UNCONFIRMED [{plane}] {}\n", c.label));
        }
    }
    out
}

fn analyze(
    m: &ParsedModel,
    model_hash: &str,
    opts: &AnalyzeOptions,
    recorder: Option<&dyn Recorder>,
    prov: &mut Provenance,
) -> Result<String, String> {
    let graph = {
        let _s = Span::enter(recorder, Phase::FaultGraphBuild);
        FaultGraph::build(&m.app).map_err(|e| e.to_string())?
    };
    let has_mama = m.mama.component_count() > 0;
    let space = if has_mama {
        ComponentSpace::build(&m.app, &m.mama)
    } else {
        ComponentSpace::app_only(&m.app)
    };
    let table;
    let mut analysis = Analysis::new(&graph, &space)
        .with_policy(opts.policy)
        .with_unmonitored_known(opts.unmonitored_known)
        .with_threads(opts.threads);
    if has_mama {
        let _s = Span::enter(recorder, Phase::KnowCompile);
        table = KnowTable::build(&graph, &m.mama, &space);
        analysis = analysis.with_knowledge(&table);
    }
    if let Some(r) = recorder {
        analysis = analysis.with_recorder(r);
    }

    // Guarded provenance, filled in by the guarded engine only.
    let mut produced: Option<&'static str> = None;
    let mut descents: Vec<(String, String)> = Vec::new();
    let mut estimate: Option<EstimateInfo> = None;
    let dist = match opts.engine.as_str() {
        "enumerate" => analysis.enumerate(),
        "parallel" => analysis.enumerate_parallel(opts.threads),
        "symbolic" => analysis.symbolic(),
        "mtbdd" => {
            let compiled = analysis.compile_mtbdd();
            let _s = Span::enter(recorder, Phase::MtbddEval);
            compiled.distribution()
        }
        "montecarlo" => analysis.monte_carlo(MonteCarloOptions {
            samples: opts.samples,
            seed: opts.seed,
        }),
        "importance" => {
            let est = analysis
                .try_importance(ImportanceOptions {
                    samples: opts.samples,
                    seed: opts.seed,
                    bias: opts.is_bias,
                    mixture: opts.is_mixture,
                })
                .map_err(|e| e.to_string())?;
            estimate = Some(est.info);
            est.distribution
        }
        "guarded" => {
            let report = analysis.analyze_guarded(&GuardedOptions {
                budget: opts.budget.to_budget(),
                samples: opts.samples,
                seed: opts.seed,
                threads: opts.threads,
                is_bias: opts.is_bias,
                is_mixture: opts.is_mixture,
            });
            produced = Some(report.engine.name());
            descents = report
                .descents
                .iter()
                .map(|d| (d.engine.name().to_string(), d.reason.to_string()))
                .collect();
            estimate = report.estimate;
            report.distribution
        }
        other => return Err(format!("unknown engine `{other}`")),
    };
    let sampled = opts.engine == "montecarlo" || opts.engine == "importance" || estimate.is_some();
    prov.engine = produced.unwrap_or(opts.engine.as_str()).to_string();
    prov.requested = produced.map(|_| "guarded".to_string());
    prov.descents = descents.clone();

    let reward_spec = if m.rewards.is_empty() {
        None
    } else {
        let mut spec = RewardSpec::new();
        for &(t, w) in &m.rewards {
            spec = spec.weight(t, w);
        }
        Some(spec)
    };

    if opts.json {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"fmperf-analysis-v1\",\n");
        out.push_str(&format!("  \"model_hash\": \"{model_hash}\",\n"));
        out.push_str(&format!(
            "  \"engine\": \"{}\",\n",
            produced.unwrap_or(opts.engine.as_str())
        ));
        if produced.is_some() {
            out.push_str("  \"requested\": \"guarded\",\n");
        }
        out.push_str(&format!(
            "  \"components\": {}, \"fallible\": {}, \"states\": {},\n",
            space.len(),
            space.fallible_indices().len(),
            dist.states_explored()
        ));
        if sampled {
            out.push_str(&format!("  \"seed\": {},\n", opts.seed));
        }
        if let Some(est) = &estimate {
            out.push_str(&format!(
                "  \"estimate\": {{\"failed_mean\": {}, \"failed_half_width\": {}, \
                 \"batches\": {}, \"samples\": {}{}}},\n",
                est.failed_mean,
                est.failed_half_width,
                est.batches,
                est.samples,
                is_json_fields(est)
            ));
        }
        if !descents.is_empty() {
            out.push_str("  \"descents\": [\n");
            for (i, (engine, reason)) in descents.iter().enumerate() {
                let comma = if i + 1 < descents.len() { "," } else { "" };
                out.push_str(&format!(
                    "    {{\"engine\": \"{engine}\", \"reason\": \"{}\"}}{comma}\n",
                    json_escape(reason)
                ));
            }
            out.push_str("  ],\n");
        }
        out.push_str(&format!("  \"failed\": {},\n", dist.failed_probability()));
        if let Some(spec) = &reward_spec {
            let _s = Span::enter(recorder, Phase::RewardAggregation);
            let configs = dist.configurations();
            let perfs = solve_configurations(&m.app, &configs).map_err(|e| e.to_string())?;
            let reward: f64 = configs
                .iter()
                .zip(&perfs)
                .map(|(c, p)| dist.probability(c) * spec.reward(p))
                .sum();
            out.push_str(&format!("  \"reward\": {reward},\n"));
        }
        out.push_str("  \"configurations\": [\n");
        let ranked = dist.ranked();
        for (i, (c, p)) in ranked.iter().enumerate() {
            let comma = if i + 1 < ranked.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"label\": \"{}\", \"probability\": {p}}}{comma}\n",
                json_escape(&c.label(&m.app))
            ));
        }
        out.push_str("  ]\n}\n");
        return Ok(out);
    }

    let mut out = String::new();
    out.push_str(&format!(
        "components: {} total, {} fallible; engine: {}, states: {}\n",
        space.len(),
        space.fallible_indices().len(),
        match produced {
            Some(p) => format!("guarded -> {p}"),
            None => opts.engine.clone(),
        },
        dist.states_explored(),
    ));
    for (engine, reason) in &descents {
        out.push_str(&format!("descended past {engine}: {reason}\n"));
    }
    if let Some(est) = &estimate {
        out.push_str(&format!(
            "estimate: P[failed] = {:.6} ± {:.6} (95% CI, {} batches, {} samples, seed {})\n",
            est.failed_mean, est.failed_half_width, est.batches, est.samples, est.seed
        ));
        if let Some(is) = &est.is {
            out.push_str(&format!(
                "importance sampling: ess {:.1}, weight cv {:.4}, mean weight {:.4}, bias {}, mixture {}\n",
                is.ess, is.weight_cv, is.mean_weight, is.bias, is.mixture
            ));
        }
    }
    out.push('\n');
    out.push_str("configurations:\n");
    out.push_str(&dist.table(&m.app));

    if let Some(spec) = &reward_spec {
        let _s = Span::enter(recorder, Phase::RewardAggregation);
        let configs = dist.configurations();
        let perfs = solve_configurations(&m.app, &configs).map_err(|e| e.to_string())?;
        let report = StudyReport::new(&m.app, &dist, &perfs, spec);
        out.push_str("\nreward report:\n");
        out.push_str(&format!("{report}"));
    }
    Ok(out)
}

/// Options of the `campaign` subcommand.
struct CampaignCliOptions {
    pairwise: bool,
    json: bool,
    samples: u64,
    seed: u64,
    policy: KnowPolicy,
    unmonitored_known: bool,
    threads: usize,
    budget: BudgetFlags,
    obs: ObsFlags,
}

/// One scenario's JSON object (shared by the baseline and the scenario
/// list).
fn scenario_json(s: &ScenarioAnalysis, baseline_failed: f64, indent: &str) -> String {
    let mut out = String::from("{\n");
    let mut field = |line: String| {
        out.push_str(indent);
        out.push_str("  ");
        out.push_str(&line);
        out.push('\n');
    };
    field(format!("\"label\": \"{}\",", json_escape(&s.label)));
    field("\"ok\": true,".into());
    field(format!("\"engine\": \"{}\",", s.engine.name()));
    if !s.descents.is_empty() {
        let items: Vec<String> = s
            .descents
            .iter()
            .map(|d| {
                format!(
                    "{{\"engine\": \"{}\", \"reason\": \"{}\"}}",
                    d.engine.name(),
                    json_escape(&d.reason.to_string())
                )
            })
            .collect();
        field(format!("\"descents\": [{}],", items.join(", ")));
    }
    if let Some(est) = &s.estimate {
        field(format!(
            "\"estimate\": {{\"failed_mean\": {}, \"failed_half_width\": {}, \
             \"batches\": {}, \"samples\": {}, \"seed\": {}{}}},",
            est.failed_mean,
            est.failed_half_width,
            est.batches,
            est.samples,
            est.seed,
            is_json_fields(est)
        ));
    }
    field(format!("\"failed\": {},", s.failed_probability));
    field(format!(
        "\"delta_failed\": {},",
        s.failed_probability - baseline_failed
    ));
    field(format!("\"coverage\": {},", s.covered.len()));
    field(format!("\"coverage_loss\": {},", s.coverage_loss()));
    let uncovered: Vec<String> = s
        .newly_uncovered
        .iter()
        .map(|n| format!("\"{}\"", json_escape(n)))
        .collect();
    if let Some(r) = s.reward {
        field(format!("\"reward\": {r},"));
    }
    if let Some(d) = s.reward_delta {
        field(format!("\"reward_delta\": {d},"));
    }
    field(format!("\"newly_uncovered\": [{}]", uncovered.join(", ")));
    out.push_str(indent);
    out.push('}');
    out
}

fn campaign_cmd(
    m: &ParsedModel,
    opts: &CampaignCliOptions,
    recorder: Option<&dyn Recorder>,
    prov: &mut Provenance,
) -> Result<String, String> {
    if m.mama.component_count() == 0 {
        return Err("campaign needs a model with a management architecture".into());
    }
    let graph = {
        let _s = Span::enter(recorder, Phase::FaultGraphBuild);
        FaultGraph::build(&m.app).map_err(|e| e.to_string())?
    };
    let reward_spec = if m.rewards.is_empty() {
        None
    } else {
        let mut spec = RewardSpec::new();
        for &(t, w) in &m.rewards {
            spec = spec.weight(t, w);
        }
        Some(spec)
    };
    let copts = CampaignOptions {
        guarded: GuardedOptions {
            budget: opts.budget.to_budget(),
            samples: opts.samples,
            seed: opts.seed,
            threads: opts.threads,
            ..GuardedOptions::default()
        },
        pairwise: opts.pairwise,
        policy: opts.policy,
        unmonitored_known: opts.unmonitored_known,
    };
    // Per-scenario progress lines go to stderr only when someone is
    // watching (stderr is a terminal) and the main output is not being
    // piped as JSON.
    let show_progress = std::io::stderr().is_terminal() && !opts.json;
    let progress_fn = |p: &ScenarioProgress<'_>| {
        eprintln!(
            "campaign [{}/{}] {}: {} in {}",
            p.index,
            p.total,
            p.label,
            p.engine.map_or("failed", |e| e.name()),
            human_nanos(p.elapsed.as_nanos().min(u128::from(u64::MAX)) as u64),
        );
    };
    let progress: Option<&dyn Fn(&ScenarioProgress<'_>)> = if show_progress {
        Some(&progress_fn)
    } else {
        None
    };
    let report = run_campaign_observed(
        &graph,
        &m.mama,
        reward_spec.as_ref(),
        &copts,
        recorder,
        progress,
    );
    let base = &report.baseline;
    prov.engine = base.engine.name().to_string();
    prov.descents = base
        .descents
        .iter()
        .map(|d| (d.engine.name().to_string(), d.reason.to_string()))
        .collect();

    if opts.json {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"pairwise\": {}, \"seed\": {}, \"scenarios_run\": {},\n",
            opts.pairwise,
            opts.seed,
            report.scenarios.len()
        ));
        out.push_str(&format!(
            "  \"baseline\": {},\n",
            scenario_json(base, base.failed_probability, "  ")
        ));
        out.push_str("  \"scenarios\": [\n");
        for (i, s) in report.scenarios.iter().enumerate() {
            let comma = if i + 1 < report.scenarios.len() {
                ","
            } else {
                ""
            };
            match &s.result {
                Ok(a) => out.push_str(&format!(
                    "    {}{comma}\n",
                    scenario_json(a, base.failed_probability, "    ")
                )),
                Err(e) => out.push_str(&format!(
                    "    {{\"label\": \"{}\", \"ok\": false, \"error\": \"{}\"}}{comma}\n",
                    json_escape(&s.label),
                    json_escape(e)
                )),
            }
        }
        out.push_str("  ]\n}\n");
        return Ok(out);
    }

    let mut out = String::new();
    out.push_str(&format!(
        "campaign: {} scenario(s) ({})\n",
        report.scenarios.len(),
        if opts.pairwise {
            "single + pairwise injections"
        } else {
            "single injections"
        }
    ));
    out.push_str(&format!(
        "baseline: engine {}, P[failed] {:.6}, coverage {} component(s){}\n\n",
        base.engine.name(),
        base.failed_probability,
        base.covered.len(),
        match base.reward {
            Some(r) => format!(", reward {r:.6}"),
            None => String::new(),
        }
    ));
    let has_reward = base.reward.is_some();
    out.push_str(&format!(
        "{:<44} {:<18} {:>10} {:>10} {:>9}{}  newly uncovered\n",
        "scenario",
        "engine",
        "P[failed]",
        "dP",
        "cov-loss",
        if has_reward { "    dreward" } else { "" }
    ));
    for s in &report.scenarios {
        match &s.result {
            Ok(a) => {
                let uncovered = if a.newly_uncovered.is_empty() {
                    "-".to_string()
                } else {
                    a.newly_uncovered.join(", ")
                };
                out.push_str(&format!(
                    "{:<44} {:<18} {:>10.6} {:>+10.6} {:>9}{}  {}\n",
                    a.label,
                    a.engine.name(),
                    a.failed_probability,
                    a.failed_probability - base.failed_probability,
                    a.coverage_loss(),
                    match a.reward_delta {
                        Some(d) => format!(" {d:>+10.6}"),
                        None if has_reward => format!(" {:>10}", "-"),
                        None => String::new(),
                    },
                    uncovered
                ));
            }
            Err(e) => {
                out.push_str(&format!("{:<44} FAILED: {e}\n", s.label));
            }
        }
    }
    let failures = report.failures().count();
    if failures > 0 {
        out.push_str(&format!("\n{failures} scenario(s) failed to analyse\n"));
    }
    Ok(out)
}

/// Options of the `sweep` subcommand.
struct SweepOptions {
    component: Option<String>,
    from: f64,
    to: f64,
    steps: usize,
    threads: usize,
    json: bool,
    policy: KnowPolicy,
    unmonitored_known: bool,
    obs: ObsFlags,
}

fn sweep_cmd(
    m: &ParsedModel,
    opts: &SweepOptions,
    recorder: Option<&dyn Recorder>,
    prov: &mut Provenance,
) -> Result<String, String> {
    let name = opts
        .component
        .as_deref()
        .ok_or("sweep needs --component <name>")?;
    let graph = {
        let _s = Span::enter(recorder, Phase::FaultGraphBuild);
        FaultGraph::build(&m.app).map_err(|e| e.to_string())?
    };
    let has_mama = m.mama.component_count() > 0;
    let space = if has_mama {
        ComponentSpace::build(&m.app, &m.mama)
    } else {
        ComponentSpace::app_only(&m.app)
    };
    let table;
    let mut analysis = Analysis::new(&graph, &space)
        .with_policy(opts.policy)
        .with_unmonitored_known(opts.unmonitored_known)
        .with_threads(opts.threads);
    if has_mama {
        let _s = Span::enter(recorder, Phase::KnowCompile);
        table = KnowTable::build(&graph, &m.mama, &space);
        analysis = analysis.with_knowledge(&table);
    }
    if let Some(r) = recorder {
        analysis = analysis.with_recorder(r);
    }
    prov.engine = "mtbdd".into();
    let component = (0..space.len())
        .find(|&ix| space.name(ix) == name)
        .ok_or_else(|| format!("unknown component `{name}`"))?;

    let compiled = analysis.compile_mtbdd();
    let spec = SweepSpec {
        component,
        from: opts.from,
        to: opts.to,
        steps: opts.steps,
        threads: opts.threads,
    };
    let points = {
        let _s = Span::enter(recorder, Phase::MtbddEval);
        fmperf::core::sweep(&compiled, &spec).map_err(|e| e.to_string())?
    };

    // Configurations never change across the sweep, so the per-config
    // LQN solves happen exactly once.
    let rewards: Option<Vec<f64>> = if m.rewards.is_empty() {
        None
    } else {
        let _s = Span::enter(recorder, Phase::RewardAggregation);
        let perfs =
            solve_configurations(&m.app, compiled.configurations()).map_err(|e| e.to_string())?;
        let mut spec = RewardSpec::new();
        for &(t, w) in &m.rewards {
            spec = spec.weight(t, w);
        }
        Some(perfs.iter().map(|p| spec.reward(p)).collect())
    };
    let failed_of = |probs: &[f64]| -> f64 {
        compiled
            .configurations()
            .iter()
            .zip(probs)
            .filter(|(c, _)| c.is_failed())
            .map(|(_, &p)| p)
            .sum()
    };
    let reward_of = |probs: &[f64]| -> Option<f64> {
        rewards
            .as_ref()
            .map(|r| probs.iter().zip(r).map(|(p, w)| p * w).sum())
    };

    let mut out = String::new();
    if opts.json {
        out.push_str("{\n");
        out.push_str(&format!("  \"component\": \"{name}\",\n"));
        out.push_str(&format!(
            "  \"from\": {}, \"to\": {}, \"steps\": {},\n",
            opts.from, opts.to, opts.steps
        ));
        out.push_str(&format!(
            "  \"nodes\": {}, \"configurations\": {},\n",
            compiled.node_count(),
            compiled.configurations().len()
        ));
        out.push_str("  \"points\": [\n");
        for (i, pt) in points.iter().enumerate() {
            let comma = if i + 1 < points.len() { "," } else { "" };
            match reward_of(&pt.probabilities) {
                Some(r) => out.push_str(&format!(
                    "    {{\"availability\": {}, \"failed\": {}, \"reward\": {}}}{comma}\n",
                    pt.availability,
                    failed_of(&pt.probabilities),
                    r
                )),
                None => out.push_str(&format!(
                    "    {{\"availability\": {}, \"failed\": {}}}{comma}\n",
                    pt.availability,
                    failed_of(&pt.probabilities)
                )),
            }
        }
        out.push_str("  ]\n}\n");
    } else {
        out.push_str(&format!(
            "sweep `{name}` availability {} → {} in {} steps \
             (compiled MTBDD: {} nodes, {} configurations)\n\n",
            opts.from,
            opts.to,
            opts.steps,
            compiled.node_count(),
            compiled.configurations().len()
        ));
        match rewards {
            Some(_) => out.push_str("availability    P[failed]       reward\n"),
            None => out.push_str("availability    P[failed]\n"),
        }
        for pt in &points {
            match reward_of(&pt.probabilities) {
                Some(r) => out.push_str(&format!(
                    "{:>12.6} {:>12.6} {:>12.6}\n",
                    pt.availability,
                    failed_of(&pt.probabilities),
                    r
                )),
                None => out.push_str(&format!(
                    "{:>12.6} {:>12.6}\n",
                    pt.availability,
                    failed_of(&pt.probabilities)
                )),
            }
        }
    }
    Ok(out)
}

/// Options of the `profile` subcommand.
struct ProfileOptions {
    samples: u64,
    seed: u64,
    threads: usize,
    json: bool,
    policy: KnowPolicy,
    unmonitored_known: bool,
    trace_out: Option<String>,
}

/// The engines `profile` attempts, in ladder order.  Each gets a fresh
/// metrics recorder; the trace recorder is shared so `--trace-out`
/// shows the runs back to back.
const PROFILE_ENGINES: [&str; 5] = ["exact", "bitmask", "mtbdd", "montecarlo", "importance"];

/// Runs every applicable engine on the model and renders a comparative
/// phase/counter breakdown.  Inapplicable engines are reported with
/// their refusal reason instead of being silently dropped.
fn profile_cmd(
    m: &ParsedModel,
    path: &str,
    opts: &ProfileOptions,
    setup_rec: Option<&dyn Recorder>,
    setup: &MetricsRecorder,
    trace: &TraceRecorder,
) -> Result<String, String> {
    let graph = {
        let _s = Span::enter(setup_rec, Phase::FaultGraphBuild);
        FaultGraph::build(&m.app).map_err(|e| e.to_string())?
    };
    let has_mama = m.mama.component_count() > 0;
    let space = if has_mama {
        ComponentSpace::build(&m.app, &m.mama)
    } else {
        ComponentSpace::app_only(&m.app)
    };
    let table;
    let mut analysis = Analysis::new(&graph, &space)
        .with_policy(opts.policy)
        .with_unmonitored_known(opts.unmonitored_known)
        .with_threads(opts.threads);
    if has_mama {
        let _s = Span::enter(setup_rec, Phase::KnowCompile);
        table = KnowTable::build(&graph, &m.mama, &space);
        analysis = analysis.with_knowledge(&table);
    }

    let metrics: Vec<MetricsRecorder> = PROFILE_ENGINES
        .iter()
        .map(|_| MetricsRecorder::new())
        .collect();
    let tees: Vec<TeeRecorder<'_>> = metrics
        .iter()
        .map(|rec| TeeRecorder::new(rec, trace))
        .collect();
    // (failed probability, states explored) per engine, or the reason
    // the engine is inapplicable to this model — plus the effective
    // thread and lane widths that run used.
    type EngineRun = (Result<(f64, u64), String>, Duration, usize, usize);
    let mut runs: Vec<EngineRun> = Vec::new();
    for (i, &name) in PROFILE_ENGINES.iter().enumerate() {
        let observed = analysis.with_recorder(&tees[i]);
        // Every profiled engine is a single-threaded run today (so the
        // per-engine breakdown stays comparable); the lane width is the
        // data-parallel factor inside that one thread.
        let (threads, lanes) = match name {
            "exact" => (
                1,
                if observed.prefers_compiled() && observed.compile().is_some() {
                    fmperf::core::LANE_WIDTH
                } else {
                    1
                },
            ),
            "bitmask" => (1, fmperf::core::LANE_WIDTH),
            "mtbdd" => (1, fmperf::bdd::BATCH_LANES),
            "montecarlo" | "importance" => (1, 1),
            _ => unreachable!("PROFILE_ENGINES is exhaustive"),
        };
        let start = Instant::now();
        let result: Result<ConfigDistribution, String> = match name {
            "exact" => observed.try_enumerate().map_err(|e| e.to_string()),
            "bitmask" => match observed.compile() {
                Some(kernel) => Ok(kernel.enumerate()),
                None => Err(
                    "not kernel-compilable (over 64 fallible elements or know pairs)".to_string(),
                ),
            },
            "mtbdd" => observed
                .try_compile_mtbdd()
                .map(|compiled| {
                    let _s = Span::enter(Some(&tees[i] as &dyn Recorder), Phase::MtbddEval);
                    compiled.distribution()
                })
                .map_err(|e| e.to_string()),
            "montecarlo" => observed
                .try_monte_carlo(MonteCarloOptions {
                    samples: opts.samples,
                    seed: opts.seed,
                })
                .map_err(|e| e.to_string()),
            "importance" => observed
                .try_importance(ImportanceOptions {
                    samples: opts.samples,
                    seed: opts.seed,
                    ..ImportanceOptions::default()
                })
                .map(|est| est.distribution)
                .map_err(|e| e.to_string()),
            _ => unreachable!("PROFILE_ENGINES is exhaustive"),
        };
        let elapsed = start.elapsed();
        runs.push((
            result.map(|d| (d.failed_probability(), d.states_explored())),
            elapsed,
            threads,
            lanes,
        ));
    }
    if let Some(out_path) = &opts.trace_out {
        write_text_file(out_path, &trace.chrome_trace_json())?;
    }

    if opts.json {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"fmperf-profile-v1\",\n");
        out.push_str(&format!("  \"model\": \"{}\",\n", json_escape(path)));
        out.push_str(&format!(
            "  \"components\": {}, \"fallible\": {},\n",
            space.len(),
            space.fallible_indices().len()
        ));
        out.push_str(&format!(
            "  \"setup\": {{\"phases\": {}}},\n",
            phases_json(setup)
        ));
        out.push_str("  \"engines\": [\n");
        for (i, &name) in PROFILE_ENGINES.iter().enumerate() {
            let (result, elapsed, threads, lanes) = &runs[i];
            let comma = if i + 1 < PROFILE_ENGINES.len() {
                ","
            } else {
                ""
            };
            match result {
                Ok((failed, states)) => out.push_str(&format!(
                    "    {{\"engine\": \"{name}\", \"ok\": true, \"elapsed_ns\": {}, \
                     \"ns_per_state\": {}, \"threads\": {threads}, \"lanes\": {lanes}, \
                     \"failed\": {failed}, \"states\": {states}, \"phases\": {}, \
                     \"counters\": {}}}{comma}\n",
                    elapsed.as_nanos(),
                    elapsed.as_nanos() as f64 / (*states).max(1) as f64,
                    phases_json(&metrics[i]),
                    counters_json(&metrics[i]),
                )),
                Err(reason) => out.push_str(&format!(
                    "    {{\"engine\": \"{name}\", \"ok\": false, \"error\": \"{}\"}}{comma}\n",
                    json_escape(reason)
                )),
            }
        }
        out.push_str("  ]\n}\n");
        return Ok(out);
    }

    let mut out = format!(
        "profile: {path} — {} components, {} fallible\nsetup:\n{}",
        space.len(),
        space.fallible_indices().len(),
        metrics_table(setup)
    );
    for (i, &name) in PROFILE_ENGINES.iter().enumerate() {
        let (result, elapsed, threads, lanes) = &runs[i];
        match result {
            Ok((failed, states)) => {
                out.push_str(&format!(
                    "\nengine {name}: ok in {} — P[failed] {failed:.6}, states {states} \
                     ({:.1} ns/state, {threads} thread{}, {lanes} lane{})\n{}",
                    human_nanos(elapsed.as_nanos().min(u128::from(u64::MAX)) as u64),
                    elapsed.as_nanos() as f64 / (*states).max(1) as f64,
                    if *threads == 1 { "" } else { "s" },
                    if *lanes == 1 { "" } else { "s" },
                    metrics_table(&metrics[i])
                ));
            }
            Err(reason) => {
                out.push_str(&format!("\nengine {name}: skipped — {reason}\n"));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODEL: &str = "processor pc cores inf\nprocessor p1 fail 0.1\n\
        users u on pc population 5 think 1.0\ntask s on p1 fail 0.1\n\
        entry eu of u\nentry es of s demand 0.2\ncall eu -> es\nreward u 1.0\n";

    fn with_model<T>(f: impl FnOnce(&str) -> T) -> T {
        let dir = std::env::temp_dir().join(format!("fmperf-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.fmp");
        std::fs::write(&path, MODEL).unwrap();
        let r = f(path.to_str().unwrap());
        let _ = std::fs::remove_dir_all(&dir);
        r
    }

    #[test]
    fn check_reports_counts() {
        let out = with_model(|p| run(&["check".into(), p.into()])).unwrap();
        assert!(out.contains("ok (2 tasks, 2 entries"));
    }

    #[test]
    fn analyze_produces_reward() {
        let out = with_model(|p| run(&["analyze".into(), p.into()])).unwrap();
        assert!(out.contains("expected steady-state reward rate"));
        assert!(out.contains("configurations:"));
    }

    #[test]
    fn analyze_json_reports_model_hash() {
        let out = with_model(|p| run(&["analyze".into(), p.into(), "--json".into()])).unwrap();
        assert!(out.contains("\"model_hash\": \"sha256:"), "{out}");
        // The hash matches what the serve cache would key on.
        let expected = fmperf::serve::ModelSession::open(MODEL).unwrap();
        assert!(out.contains(expected.hash()), "{out}");
    }

    #[test]
    fn degraded_guarded_json_reports_samples_and_ci() {
        // Caps small enough that every exact rung refuses: the MC rung
        // must report the samples it drew as the states explored, plus
        // its batch-means CI.
        let out = with_model(|p| {
            run(&[
                "analyze".into(),
                p.into(),
                "--engine".into(),
                "guarded".into(),
                "--budget-states".into(),
                "1".into(),
                "--budget-nodes".into(),
                "1".into(),
                "--budget-memo".into(),
                "1".into(),
                "--samples".into(),
                "20000".into(),
                "--seed".into(),
                "3".into(),
                "--json".into(),
            ])
        })
        .unwrap();
        assert!(out.contains("\"engine\": \"monte-carlo\""), "{out}");
        assert!(out.contains("\"requested\": \"guarded\""), "{out}");
        assert!(out.contains("\"states\": 20000"), "{out}");
        assert!(out.contains("\"failed_half_width\""), "{out}");
        assert!(out.contains("\"batches\""), "{out}");
        assert!(out.contains("\"samples\": 20000"), "{out}");
    }

    #[test]
    fn importance_engine_json_reports_is_diagnostics() {
        let out = with_model(|p| {
            run(&[
                "analyze".into(),
                p.into(),
                "--engine".into(),
                "importance".into(),
                "--samples".into(),
                "20000".into(),
                "--seed".into(),
                "7".into(),
                "--json".into(),
            ])
        })
        .unwrap();
        assert!(out.contains("\"schema\": \"fmperf-analysis-v1\""), "{out}");
        assert!(out.contains("\"engine\": \"importance\""), "{out}");
        assert!(out.contains("\"seed\": 7"), "{out}");
        assert!(out.contains("\"samples\": 20000"), "{out}");
        for field in ["ess", "weight_cv", "mean_weight", "bias", "mixture"] {
            assert!(
                out.contains(&format!("\"{field}\": ")),
                "missing {field}: {out}"
            );
        }
    }

    #[test]
    fn importance_engine_text_reports_is_line() {
        let out = with_model(|p| {
            run(&[
                "analyze".into(),
                p.into(),
                "--engine".into(),
                "importance".into(),
                "--samples".into(),
                "20000".into(),
            ])
        })
        .unwrap();
        assert!(out.contains("engine: importance"), "{out}");
        assert!(out.contains("estimate: P[failed]"), "{out}");
        assert!(out.contains("importance sampling: ess "), "{out}");
        assert!(out.contains("mean weight"), "{out}");
        assert!(out.contains("configurations:"), "{out}");
    }

    /// Same shape as MODEL but with rare component failures: the guarded
    /// ladder's sampling rung must auto-select importance sampling.
    const RARE: &str = "processor pc cores inf\nprocessor p1 fail 0.00001\n\
        users u on pc population 5 think 1.0\ntask s on p1 fail 0.00001\n\
        entry eu of u\nentry es of s demand 0.2\ncall eu -> es\nreward u 1.0\n";

    #[test]
    fn degraded_guarded_auto_selects_importance_on_rare_models() {
        let out = with_src("rare1", RARE, |p| {
            run(&[
                "analyze".into(),
                p.into(),
                "--engine".into(),
                "guarded".into(),
                "--budget-states".into(),
                "1".into(),
                "--budget-nodes".into(),
                "1".into(),
                "--budget-memo".into(),
                "1".into(),
                "--samples".into(),
                "20000".into(),
                "--seed".into(),
                "3".into(),
                "--json".into(),
            ])
        })
        .unwrap();
        assert!(out.contains("\"engine\": \"importance-sampling\""), "{out}");
        assert!(out.contains("\"requested\": \"guarded\""), "{out}");
        assert!(out.contains("\"ess\": "), "{out}");
        assert!(out.contains("\"mean_weight\": "), "{out}");
    }

    #[test]
    fn engines_selectable_and_agree() {
        let (a, b) = with_model(|p| {
            let a = run(&[
                "analyze".into(),
                p.into(),
                "--engine".into(),
                "symbolic".into(),
            ])
            .unwrap();
            let b = run(&[
                "analyze".into(),
                p.into(),
                "--engine".into(),
                "parallel".into(),
            ])
            .unwrap();
            (a, b)
        });
        // Same configuration table (states line differs).
        let tail = |s: &str| s.split("configurations:").nth(1).unwrap().to_string();
        assert_eq!(tail(&a), tail(&b));
    }

    #[test]
    fn mtbdd_engine_matches_enumerate() {
        let (a, b) = with_model(|p| {
            let a = run(&[
                "analyze".into(),
                p.into(),
                "--engine".into(),
                "mtbdd".into(),
            ])
            .unwrap();
            let b = run(&["analyze".into(), p.into()]).unwrap();
            (a, b)
        });
        let tail = |s: &str| s.split("configurations:").nth(1).unwrap().to_string();
        assert_eq!(tail(&a), tail(&b));
    }

    #[test]
    fn sweep_text_output() {
        let out = with_model(|p| {
            run(&[
                "sweep".into(),
                p.into(),
                "--component".into(),
                "s".into(),
                "--from".into(),
                "0.5".into(),
                "--to".into(),
                "1".into(),
                "--steps".into(),
                "3".into(),
            ])
        })
        .unwrap();
        assert!(out.contains("compiled MTBDD"), "{out}");
        assert!(out.contains("reward"), "{out}");
        // Three data rows after the header.
        assert_eq!(out.lines().filter(|l| l.starts_with("    ")).count(), 3);
    }

    #[test]
    fn sweep_json_output() {
        let out = with_model(|p| {
            run(&[
                "sweep".into(),
                p.into(),
                "--component".into(),
                "p1".into(),
                "--steps".into(),
                "2".into(),
                "--json".into(),
            ])
        })
        .unwrap();
        assert!(out.contains("\"component\": \"p1\""), "{out}");
        assert!(out.contains("\"points\": ["), "{out}");
        assert!(out.contains("\"reward\""), "{out}");
    }

    #[test]
    fn sweep_rejects_unknown_component() {
        let err = with_model(|p| {
            run(&[
                "sweep".into(),
                p.into(),
                "--component".into(),
                "nope".into(),
            ])
        })
        .unwrap_err();
        assert!(err.contains("unknown component"), "{err}");
    }

    #[test]
    fn dot_targets_render() {
        let out = with_model(|p| run(&["dot".into(), p.into(), "fault".into()])).unwrap();
        assert!(out.starts_with("digraph fault_propagation"));
        let out = with_model(|p| run(&["dot".into(), p.into(), "mama".into()])).unwrap();
        assert!(out.starts_with("digraph mama"));
    }

    #[test]
    fn fmt_is_idempotent() {
        let once = with_model(|p| run(&["fmt".into(), p.into()])).unwrap();
        let dir = std::env::temp_dir().join(format!("fmperf-cli-test2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.fmp");
        std::fs::write(&path, &once).unwrap();
        let twice = run(&["fmt".into(), path.to_str().unwrap().into()]).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(once, twice);
    }

    /// Saturated users (think 0): parses fine, lints with a warning.
    const WARNY: &str = "processor pc cores inf\nprocessor p1 fail 0.1\n\
        users u on pc population 5 think 0\ntask s on p1 fail 0.1\n\
        entry eu of u\nentry es of s demand 0.2\ncall eu -> es\nreward u 1.0\n";

    /// Reference task with two entries: a lint *error*.
    const BROKEN: &str = "processor pc cores inf\nusers u on pc\n\
        entry a of u\nentry b of u\n";

    fn with_src<T>(tag: &str, src: &str, f: impl FnOnce(&str) -> T) -> T {
        let dir = std::env::temp_dir().join(format!("fmperf-cli-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.fmp");
        std::fs::write(&path, src).unwrap();
        let r = f(path.to_str().unwrap());
        let _ = std::fs::remove_dir_all(&dir);
        r
    }

    const CENTRALIZED: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/models/paper-centralized.fmp");

    #[test]
    fn audit_text_reports_the_centralized_spofs() {
        let out = run(&["audit".into(), CENTRALIZED.into()]).unwrap();
        assert!(out.contains("structural audit (max order 3)"), "{out}");
        assert!(
            out.contains("SPOF: m1 — its failure alone destroys all coverage"),
            "{out}"
        );
        assert!(out.contains("SPOF: proc5"), "{out}");
        assert!(out.contains("order 2: AppA + AppB"), "{out}");
        assert!(out.contains("criticality (Birnbaum importance)"), "{out}");
    }

    #[test]
    fn audit_json_reports_schema_and_spofs() {
        let out = run(&["audit".into(), CENTRALIZED.into(), "--json".into()]).unwrap();
        assert!(out.contains("\"schema\": \"fmperf-audit-v1\""), "{out}");
        assert!(out.contains("\"spofs\": [\"m1\", \"proc5\"]"), "{out}");
        assert!(out.contains("\"dead_edges\""), "{out}");
        assert!(out.contains("\"birnbaum\""), "{out}");
    }

    #[test]
    fn audit_verify_confirms_every_finding() {
        let out = run(&["audit".into(), CENTRALIZED.into(), "--verify".into()]).unwrap();
        assert!(
            out.contains("verification: 19/19 finding(s) confirmed by dynamic replay"),
            "{out}"
        );
    }

    #[test]
    fn audit_max_order_limits_the_search() {
        let out = run(&[
            "audit".into(),
            CENTRALIZED.into(),
            "--max-order".into(),
            "1".into(),
        ])
        .unwrap();
        assert!(out.contains("max order 1"), "{out}");
        assert!(out.contains("SPOF: m1"), "{out}");
        assert!(!out.contains("order 2:"), "{out}");
    }

    #[test]
    fn audit_rejects_bad_flags() {
        let err = run(&["audit".into(), CENTRALIZED.into(), "--bogus".into()]).unwrap_err();
        assert!(err.contains("unknown flag"), "{err}");
        let err = run(&[
            "audit".into(),
            CENTRALIZED.into(),
            "--policy".into(),
            "sometimes".into(),
        ])
        .unwrap_err();
        assert!(err.contains("unknown policy `sometimes`"), "{err}");
    }

    #[test]
    fn failing_lint_json_report_belongs_on_stdout() {
        let lint_json: Vec<String> = vec!["lint".into(), "m.fmp".into(), "--json".into()];
        let lint_fmt: Vec<String> = vec![
            "lint".into(),
            "m.fmp".into(),
            "--format".into(),
            "json".into(),
        ];
        let lint_text: Vec<String> = vec!["lint".into(), "m.fmp".into()];
        let audit_json: Vec<String> = vec!["audit".into(), "m.fmp".into(), "--json".into()];
        assert!(failing_report_belongs_on_stdout(&lint_json, "{\n}"));
        assert!(failing_report_belongs_on_stdout(&lint_fmt, "  {\n}"));
        // Text reports and non-JSON error strings stay on stderr…
        assert!(!failing_report_belongs_on_stdout(&lint_text, "{\n}"));
        assert!(!failing_report_belongs_on_stdout(
            &lint_json,
            "m.fmp: no such file"
        ));
        // …and so do other subcommands' failures.
        assert!(!failing_report_belongs_on_stdout(&audit_json, "{\n}"));
    }

    #[test]
    fn lint_json_flag_is_an_alias_for_format_json() {
        let a = with_model(|p| run(&["lint".into(), p.into(), "--json".into()])).unwrap();
        let b = with_model(|p| run(&["lint".into(), p.into(), "--format".into(), "json".into()]))
            .unwrap();
        assert_eq!(a, b);
        assert!(a.contains("\"code\": \"FM201\""), "{a}");
    }

    #[test]
    fn lint_threshold_reconfigures_a_rule() {
        // MODEL has 2 fallible components = 4 states: the default FM201
        // note escalates to a blow-up warning once the threshold drops
        // to 4 states.
        let out = with_model(|p| run(&["lint".into(), p.into()])).unwrap();
        assert!(out.contains("note[FM201]"), "{out}");
        let out = with_model(|p| {
            run(&[
                "lint".into(),
                p.into(),
                "--lint-threshold".into(),
                "FM201=4".into(),
            ])
        })
        .unwrap();
        assert!(out.contains("warning[FM201]"), "{out}");
    }

    #[test]
    fn lint_threshold_rejects_bad_specs() {
        let err = with_model(|p| {
            run(&[
                "lint".into(),
                p.into(),
                "--lint-threshold".into(),
                "FM999=1".into(),
            ])
        })
        .unwrap_err();
        assert!(err.contains("FM999"), "{err}");
        let err = with_model(|p| {
            run(&[
                "lint".into(),
                p.into(),
                "--lint-threshold".into(),
                "FM201".into(),
            ])
        })
        .unwrap_err();
        assert!(err.contains("<RULE>=<N>"), "{err}");
    }

    #[test]
    fn lint_passes_clean_model_with_report() {
        let out = with_model(|p| run(&["lint".into(), p.into()])).unwrap();
        assert!(out.contains("note[FM201]"), "{out}");
        assert!(out.contains("0 error(s)"), "{out}");
    }

    #[test]
    fn lint_json_format() {
        let out = with_model(|p| run(&["lint".into(), p.into(), "--format".into(), "json".into()]))
            .unwrap();
        assert!(out.contains("\"code\": \"FM201\""), "{out}");
        assert!(out.contains("\"errors\": 0"), "{out}");
    }

    #[test]
    fn lint_fails_on_errors() {
        let err = with_src("broken", BROKEN, |p| run(&["lint".into(), p.into()])).unwrap_err();
        assert!(err.contains("error[FM001]"), "{err}");
    }

    #[test]
    fn lint_deny_warnings_fails_on_warnings() {
        let ok = with_src("warny1", WARNY, |p| run(&["lint".into(), p.into()]));
        assert!(ok.is_ok());
        let err = with_src("warny2", WARNY, |p| {
            run(&["lint".into(), p.into(), "--deny".into(), "warnings".into()])
        })
        .unwrap_err();
        assert!(err.contains("warning[FM211]"), "{err}");
    }

    #[test]
    fn check_fails_on_lint_errors() {
        let err = with_src("broken2", BROKEN, |p| run(&["check".into(), p.into()])).unwrap_err();
        assert!(err.contains("error[FM001]"), "{err}");
    }

    #[test]
    fn check_deny_warnings() {
        let out = with_src("warny3", WARNY, |p| run(&["check".into(), p.into()])).unwrap();
        assert!(out.contains("ok ("), "{out}");
        let err = with_src("warny4", WARNY, |p| {
            run(&["check".into(), p.into(), "--deny".into(), "warnings".into()])
        })
        .unwrap_err();
        assert!(err.contains("warning[FM211]"), "{err}");
    }

    #[test]
    fn analyze_refuses_lint_errors_and_flags_warnings() {
        let err = with_src("broken3", BROKEN, |p| run(&["analyze".into(), p.into()])).unwrap_err();
        assert!(err.contains("error[FM001]"), "{err}");
        let out = with_src("warny5", WARNY, |p| run(&["analyze".into(), p.into()])).unwrap();
        assert!(out.starts_with("lint: 1 warning(s)"), "{out}");
        assert!(out.contains("configurations:"), "{out}");
    }

    #[test]
    fn profile_runs_every_engine() {
        let out = with_model(|p| run(&["profile".into(), p.into()])).unwrap();
        assert!(out.contains("engine exact: ok"), "{out}");
        assert!(out.contains("engine bitmask: ok"), "{out}");
        assert!(out.contains("engine mtbdd: ok"), "{out}");
        assert!(out.contains("engine montecarlo: ok"), "{out}");
        assert!(out.contains("engine importance: ok"), "{out}");
        assert!(out.contains("state-scan"), "{out}");
        assert!(out.contains("mtbdd-compile"), "{out}");
        assert!(out.contains("states-visited"), "{out}");
    }

    #[test]
    fn profile_json_has_schema_and_engines() {
        let out = with_model(|p| run(&["profile".into(), p.into(), "--json".into()])).unwrap();
        assert!(out.contains("\"schema\": \"fmperf-profile-v1\""), "{out}");
        assert!(out.contains("\"engine\": \"exact\""), "{out}");
        assert!(out.contains("\"counters\""), "{out}");
        assert!(out.contains("\"phases\""), "{out}");
    }

    #[test]
    fn metrics_flag_appends_table_and_preserves_result() {
        let (plain, with_metrics) = with_model(|p| {
            let plain = run(&["analyze".into(), p.into()]).unwrap();
            let with_metrics = run(&["analyze".into(), p.into(), "--metrics".into()]).unwrap();
            (plain, with_metrics)
        });
        // Instrumentation must not change the analysis output itself.
        assert!(
            with_metrics.starts_with(&plain),
            "metrics table must append"
        );
        assert!(with_metrics.contains("\nmetrics (engine enumerate):\n"));
        assert!(with_metrics.contains("states-visited"));
    }

    #[test]
    fn metrics_json_and_trace_files_are_written() {
        let dir = std::env::temp_dir().join(format!("fmperf-cli-obs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mpath = dir.join("metrics.json");
        let tpath = dir.join("trace.json");
        with_model(|p| {
            run(&[
                "analyze".into(),
                p.into(),
                "--metrics-json".into(),
                mpath.to_str().unwrap().into(),
                "--trace-out".into(),
                tpath.to_str().unwrap().into(),
            ])
            .unwrap();
        });
        let metrics = std::fs::read_to_string(&mpath).unwrap();
        assert!(
            metrics.contains("\"schema\": \"fmperf-metrics-v1\""),
            "{metrics}"
        );
        assert!(metrics.contains("\"states-visited\""), "{metrics}");
        assert!(metrics.contains("\"descents\""), "{metrics}");
        let trace = std::fs::read_to_string(&tpath).unwrap();
        assert!(trace.contains("\"traceEvents\""), "{trace}");
        assert!(trace.contains("\"ph\": \"X\""), "{trace}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_flag_is_rejected() {
        let err = with_model(|p| run(&["analyze".into(), p.into(), "--bogus".into()])).unwrap_err();
        assert!(err.contains("unknown flag"));
    }

    #[test]
    fn missing_file_is_reported() {
        let err = run(&["check".into(), "/nonexistent/x.fmp".into()]).unwrap_err();
        assert!(err.contains("cannot read"));
    }
}
