//! The `fmperf` command-line tool: analyse textual models, lint them,
//! render DOT diagrams, and canonicalise model files.
//!
//! ```text
//! fmperf analyze <model.fmp> [--engine enumerate|parallel|symbolic|mtbdd|montecarlo]
//!                            [--samples N] [--policy any|all]
//!                            [--unmonitored-known] [--threads N]
//! fmperf sweep   <model.fmp> --component <name> [--from A] [--to B] [--steps N]
//!                            [--json] [--policy any|all] [--unmonitored-known]
//!                            [--threads N]
//! fmperf lint    <model.fmp> [--format text|json] [--deny warnings]
//! fmperf check   <model.fmp> [--deny warnings]
//! fmperf dot     <model.fmp> fault|mama|knowledge
//! fmperf fmt     <model.fmp>
//! ```
//!
//! `sweep` compiles the model's state→configuration map into a
//! multi-terminal BDD once, then evaluates the configuration
//! distribution (and expected reward, when the model declares rewards)
//! at every availability point with one linear pass each.
//!
//! `lint` and `check` exit non-zero when any error-level diagnostic is
//! present (or any warning under `--deny warnings`); `analyze` refuses
//! to run on a model with lint errors.  Failing lint reports go to
//! stderr, passing ones to stdout.

use fmperf::core::{
    solve_configurations, Analysis, MonteCarloOptions, RewardSpec, StudyReport, SweepSpec,
};
use fmperf::ftlqn::{FaultGraph, KnowPolicy};
use fmperf::lint::Severity;
use fmperf::mama::{ComponentSpace, KnowTable, KnowledgeGraph};
use fmperf::text::{parse, parse_lenient, write_model, LenientParse, ParsedModel};
use std::process::ExitCode;

const USAGE: &str = "usage:
  fmperf analyze <model.fmp> [--engine enumerate|parallel|symbolic|mtbdd|montecarlo]
                             [--samples N] [--policy any|all]
                             [--unmonitored-known] [--threads N]
  fmperf sweep   <model.fmp> --component <name> [--from A] [--to B] [--steps N]
                             [--json] [--policy any|all] [--unmonitored-known]
                             [--threads N]
  fmperf lint    <model.fmp> [--format text|json] [--deny warnings]
  fmperf check   <model.fmp> [--deny warnings]
  fmperf dot     <model.fmp> fault|mama|knowledge
  fmperf fmt     <model.fmp>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            // Multi-line failures (lint reports) are already formatted;
            // single-line ones get the program-name prefix.
            if msg.contains('\n') {
                eprint!("{msg}");
                if !msg.ends_with('\n') {
                    eprintln!();
                }
            } else {
                eprintln!("fmperf: {msg}");
            }
            ExitCode::FAILURE
        }
    }
}

/// Options of the `analyze` subcommand.
struct AnalyzeOptions {
    engine: String,
    samples: u64,
    policy: KnowPolicy,
    unmonitored_known: bool,
    threads: usize,
}

fn load(path: &str) -> Result<ParsedModel, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse(&src).map_err(|e| format!("{path}: {e}"))
}

fn load_lenient(path: &str) -> Result<LenientParse, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_lenient(&src).map_err(|e| format!("{path}: {e}"))
}

/// Accepts `--deny warnings`; anything else is an error.
fn parse_deny(value: Option<&str>) -> Result<(), String> {
    match value {
        Some("warnings") => Ok(()),
        Some(other) => Err(format!(
            "unknown --deny value `{other}` (expected `warnings`)"
        )),
        None => Err("--deny needs a value".into()),
    }
}

/// Dispatches a full command line; returns the text to print.
fn run(args: &[String]) -> Result<String, String> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("analyze") => {
            let path = it.next().ok_or(USAGE)?;
            let mut opts = AnalyzeOptions {
                engine: "enumerate".into(),
                samples: 100_000,
                policy: KnowPolicy::AnyFailedComponent,
                unmonitored_known: false,
                threads: 4,
            };
            while let Some(flag) = it.next() {
                match flag {
                    "--engine" => opts.engine = it.next().ok_or("--engine needs a value")?.into(),
                    "--samples" => {
                        opts.samples = it
                            .next()
                            .ok_or("--samples needs a value")?
                            .parse()
                            .map_err(|_| "bad --samples value")?;
                    }
                    "--policy" => {
                        opts.policy = match it.next().ok_or("--policy needs a value")? {
                            "any" => KnowPolicy::AnyFailedComponent,
                            "all" => KnowPolicy::AllFailedComponents,
                            other => return Err(format!("unknown policy `{other}`")),
                        };
                    }
                    "--unmonitored-known" => opts.unmonitored_known = true,
                    "--threads" => {
                        opts.threads = it
                            .next()
                            .ok_or("--threads needs a value")?
                            .parse()
                            .map_err(|_| "bad --threads value")?;
                    }
                    other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
                }
            }
            // Pre-flight: refuse models with lint errors, mention
            // warnings without blocking on them.
            let parsed = load_lenient(path)?;
            let diags = fmperf::lint::lint(&parsed);
            if fmperf::lint::count(&diags, Severity::Error) > 0 {
                return Err(fmperf::lint::render_text(path, &diags));
            }
            let warns = fmperf::lint::count(&diags, Severity::Warning);
            let header = if warns > 0 {
                format!("lint: {warns} warning(s); run `fmperf lint {path}` for details\n\n")
            } else {
                String::new()
            };
            analyze(&parsed.model, &opts).map(|out| header + &out)
        }
        Some("sweep") => {
            let path = it.next().ok_or(USAGE)?;
            let mut opts = SweepOptions {
                component: None,
                from: 0.5,
                to: 1.0,
                steps: 11,
                threads: 4,
                json: false,
                policy: KnowPolicy::AnyFailedComponent,
                unmonitored_known: false,
            };
            while let Some(flag) = it.next() {
                match flag {
                    "--component" => {
                        opts.component =
                            Some(it.next().ok_or("--component needs a value")?.to_string());
                    }
                    "--from" => {
                        opts.from = it
                            .next()
                            .ok_or("--from needs a value")?
                            .parse()
                            .map_err(|_| "bad --from value")?;
                    }
                    "--to" => {
                        opts.to = it
                            .next()
                            .ok_or("--to needs a value")?
                            .parse()
                            .map_err(|_| "bad --to value")?;
                    }
                    "--steps" => {
                        opts.steps = it
                            .next()
                            .ok_or("--steps needs a value")?
                            .parse()
                            .map_err(|_| "bad --steps value")?;
                    }
                    "--threads" => {
                        opts.threads = it
                            .next()
                            .ok_or("--threads needs a value")?
                            .parse()
                            .map_err(|_| "bad --threads value")?;
                    }
                    "--json" => opts.json = true,
                    "--policy" => {
                        opts.policy = match it.next().ok_or("--policy needs a value")? {
                            "any" => KnowPolicy::AnyFailedComponent,
                            "all" => KnowPolicy::AllFailedComponents,
                            other => return Err(format!("unknown policy `{other}`")),
                        };
                    }
                    "--unmonitored-known" => opts.unmonitored_known = true,
                    other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
                }
            }
            let parsed = load_lenient(path)?;
            let diags = fmperf::lint::lint(&parsed);
            if fmperf::lint::count(&diags, Severity::Error) > 0 {
                return Err(fmperf::lint::render_text(path, &diags));
            }
            sweep_cmd(&parsed.model, &opts)
        }
        Some("lint") => {
            let path = it.next().ok_or(USAGE)?;
            let mut json = false;
            let mut deny_warnings = false;
            while let Some(flag) = it.next() {
                match flag {
                    "--format" => {
                        json = match it.next().ok_or("--format needs a value")? {
                            "text" => false,
                            "json" => true,
                            other => return Err(format!("unknown format `{other}`")),
                        };
                    }
                    "--deny" => {
                        parse_deny(it.next())?;
                        deny_warnings = true;
                    }
                    other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
                }
            }
            let parsed = load_lenient(path)?;
            let diags = fmperf::lint::lint(&parsed);
            let report = if json {
                fmperf::lint::render_json(path, &diags)
            } else {
                fmperf::lint::render_text(path, &diags)
            };
            let failed = fmperf::lint::count(&diags, Severity::Error) > 0
                || (deny_warnings && fmperf::lint::count(&diags, Severity::Warning) > 0);
            if failed {
                Err(report)
            } else {
                Ok(report)
            }
        }
        Some("check") => {
            let path = it.next().ok_or(USAGE)?;
            let mut deny_warnings = false;
            while let Some(flag) = it.next() {
                match flag {
                    "--deny" => {
                        parse_deny(it.next())?;
                        deny_warnings = true;
                    }
                    other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
                }
            }
            let parsed = load_lenient(path)?;
            let diags = fmperf::lint::lint(&parsed);
            let errors = fmperf::lint::count(&diags, Severity::Error);
            let warns = fmperf::lint::count(&diags, Severity::Warning);
            if errors > 0 || (deny_warnings && warns > 0) {
                return Err(fmperf::lint::render_text(path, &diags));
            }
            let m = &parsed.model;
            let mut out = format!(
                "{path}: ok ({} tasks, {} entries, {} services, {} mgmt components, \
                 {} connectors); lint: {warns} warning(s), {} note(s)\n",
                m.app.task_count(),
                m.app.entry_count(),
                m.app.service_count(),
                m.mama.component_count(),
                m.mama.connector_count(),
                fmperf::lint::count(&diags, Severity::Note),
            );
            // Surface the engine-suitability note (FM202) directly: on
            // large models, `check` is the natural place to learn that
            // sweeps should go through the compiled MTBDD engine.
            for d in diags
                .iter()
                .filter(|d| d.code == fmperf::lint::LintCode::EngineSuggestion)
            {
                out.push_str(&format!("{d}\n"));
            }
            Ok(out)
        }
        Some("dot") => {
            let path = it.next().ok_or(USAGE)?;
            let what = it.next().ok_or(USAGE)?;
            let m = load(path)?;
            match what {
                "fault" => {
                    let graph = FaultGraph::build(&m.app).map_err(|e| e.to_string())?;
                    Ok(fmperf::ftlqn::dot::fault_graph_dot(&graph))
                }
                "mama" => Ok(fmperf::mama::dot::mama_dot(&m.mama)),
                "knowledge" => {
                    let kg = KnowledgeGraph::build(&m.mama);
                    Ok(fmperf::mama::dot::knowledge_graph_dot(&m.mama, &kg))
                }
                other => Err(format!("unknown dot target `{other}`\n{USAGE}")),
            }
        }
        Some("fmt") => {
            let path = it.next().ok_or(USAGE)?;
            let m = load(path)?;
            Ok(write_model(&m.app, &m.mama, &m.rewards))
        }
        _ => Err(USAGE.to_string()),
    }
}

fn analyze(m: &ParsedModel, opts: &AnalyzeOptions) -> Result<String, String> {
    let graph = FaultGraph::build(&m.app).map_err(|e| e.to_string())?;
    let has_mama = m.mama.component_count() > 0;
    let space = if has_mama {
        ComponentSpace::build(&m.app, &m.mama)
    } else {
        ComponentSpace::app_only(&m.app)
    };
    let table;
    let mut analysis = Analysis::new(&graph, &space)
        .with_policy(opts.policy)
        .with_unmonitored_known(opts.unmonitored_known);
    if has_mama {
        table = KnowTable::build(&graph, &m.mama, &space);
        analysis = analysis.with_knowledge(&table);
    }

    let dist = match opts.engine.as_str() {
        "enumerate" => analysis.enumerate(),
        "parallel" => analysis.enumerate_parallel(opts.threads),
        "symbolic" => analysis.symbolic(),
        "mtbdd" => analysis.compile_mtbdd().distribution(),
        "montecarlo" => analysis.monte_carlo(MonteCarloOptions {
            samples: opts.samples,
            seed: 0xF00D,
        }),
        other => return Err(format!("unknown engine `{other}`")),
    };

    let mut out = String::new();
    out.push_str(&format!(
        "components: {} total, {} fallible; engine: {}, states: {}\n\n",
        space.len(),
        space.fallible_indices().len(),
        opts.engine,
        dist.states_explored(),
    ));
    out.push_str("configurations:\n");
    out.push_str(&dist.table(&m.app));

    if !m.rewards.is_empty() {
        let configs = dist.configurations();
        let perfs = solve_configurations(&m.app, &configs).map_err(|e| e.to_string())?;
        let mut spec = RewardSpec::new();
        for &(t, w) in &m.rewards {
            spec = spec.weight(t, w);
        }
        let report = StudyReport::new(&m.app, &dist, &perfs, &spec);
        out.push_str("\nreward report:\n");
        out.push_str(&format!("{report}"));
    }
    Ok(out)
}

/// Options of the `sweep` subcommand.
struct SweepOptions {
    component: Option<String>,
    from: f64,
    to: f64,
    steps: usize,
    threads: usize,
    json: bool,
    policy: KnowPolicy,
    unmonitored_known: bool,
}

fn sweep_cmd(m: &ParsedModel, opts: &SweepOptions) -> Result<String, String> {
    let name = opts
        .component
        .as_deref()
        .ok_or("sweep needs --component <name>")?;
    let graph = FaultGraph::build(&m.app).map_err(|e| e.to_string())?;
    let has_mama = m.mama.component_count() > 0;
    let space = if has_mama {
        ComponentSpace::build(&m.app, &m.mama)
    } else {
        ComponentSpace::app_only(&m.app)
    };
    let table;
    let mut analysis = Analysis::new(&graph, &space)
        .with_policy(opts.policy)
        .with_unmonitored_known(opts.unmonitored_known);
    if has_mama {
        table = KnowTable::build(&graph, &m.mama, &space);
        analysis = analysis.with_knowledge(&table);
    }
    let component = (0..space.len())
        .find(|&ix| space.name(ix) == name)
        .ok_or_else(|| format!("unknown component `{name}`"))?;

    let compiled = analysis.compile_mtbdd();
    let spec = SweepSpec {
        component,
        from: opts.from,
        to: opts.to,
        steps: opts.steps,
        threads: opts.threads,
    };
    let points = fmperf::core::sweep(&compiled, &spec).map_err(|e| e.to_string())?;

    // Configurations never change across the sweep, so the per-config
    // LQN solves happen exactly once.
    let rewards: Option<Vec<f64>> = if m.rewards.is_empty() {
        None
    } else {
        let perfs =
            solve_configurations(&m.app, compiled.configurations()).map_err(|e| e.to_string())?;
        let mut spec = RewardSpec::new();
        for &(t, w) in &m.rewards {
            spec = spec.weight(t, w);
        }
        Some(perfs.iter().map(|p| spec.reward(p)).collect())
    };
    let failed_of = |probs: &[f64]| -> f64 {
        compiled
            .configurations()
            .iter()
            .zip(probs)
            .filter(|(c, _)| c.is_failed())
            .map(|(_, &p)| p)
            .sum()
    };
    let reward_of = |probs: &[f64]| -> Option<f64> {
        rewards
            .as_ref()
            .map(|r| probs.iter().zip(r).map(|(p, w)| p * w).sum())
    };

    let mut out = String::new();
    if opts.json {
        out.push_str("{\n");
        out.push_str(&format!("  \"component\": \"{name}\",\n"));
        out.push_str(&format!(
            "  \"from\": {}, \"to\": {}, \"steps\": {},\n",
            opts.from, opts.to, opts.steps
        ));
        out.push_str(&format!(
            "  \"nodes\": {}, \"configurations\": {},\n",
            compiled.node_count(),
            compiled.configurations().len()
        ));
        out.push_str("  \"points\": [\n");
        for (i, pt) in points.iter().enumerate() {
            let comma = if i + 1 < points.len() { "," } else { "" };
            match reward_of(&pt.probabilities) {
                Some(r) => out.push_str(&format!(
                    "    {{\"availability\": {}, \"failed\": {}, \"reward\": {}}}{comma}\n",
                    pt.availability,
                    failed_of(&pt.probabilities),
                    r
                )),
                None => out.push_str(&format!(
                    "    {{\"availability\": {}, \"failed\": {}}}{comma}\n",
                    pt.availability,
                    failed_of(&pt.probabilities)
                )),
            }
        }
        out.push_str("  ]\n}\n");
    } else {
        out.push_str(&format!(
            "sweep `{name}` availability {} → {} in {} steps \
             (compiled MTBDD: {} nodes, {} configurations)\n\n",
            opts.from,
            opts.to,
            opts.steps,
            compiled.node_count(),
            compiled.configurations().len()
        ));
        match rewards {
            Some(_) => out.push_str("availability    P[failed]       reward\n"),
            None => out.push_str("availability    P[failed]\n"),
        }
        for pt in &points {
            match reward_of(&pt.probabilities) {
                Some(r) => out.push_str(&format!(
                    "{:>12.6} {:>12.6} {:>12.6}\n",
                    pt.availability,
                    failed_of(&pt.probabilities),
                    r
                )),
                None => out.push_str(&format!(
                    "{:>12.6} {:>12.6}\n",
                    pt.availability,
                    failed_of(&pt.probabilities)
                )),
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODEL: &str = "processor pc cores inf\nprocessor p1 fail 0.1\n\
        users u on pc population 5 think 1.0\ntask s on p1 fail 0.1\n\
        entry eu of u\nentry es of s demand 0.2\ncall eu -> es\nreward u 1.0\n";

    fn with_model<T>(f: impl FnOnce(&str) -> T) -> T {
        let dir = std::env::temp_dir().join(format!("fmperf-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.fmp");
        std::fs::write(&path, MODEL).unwrap();
        let r = f(path.to_str().unwrap());
        let _ = std::fs::remove_dir_all(&dir);
        r
    }

    #[test]
    fn check_reports_counts() {
        let out = with_model(|p| run(&["check".into(), p.into()])).unwrap();
        assert!(out.contains("ok (2 tasks, 2 entries"));
    }

    #[test]
    fn analyze_produces_reward() {
        let out = with_model(|p| run(&["analyze".into(), p.into()])).unwrap();
        assert!(out.contains("expected steady-state reward rate"));
        assert!(out.contains("configurations:"));
    }

    #[test]
    fn engines_selectable_and_agree() {
        let (a, b) = with_model(|p| {
            let a = run(&[
                "analyze".into(),
                p.into(),
                "--engine".into(),
                "symbolic".into(),
            ])
            .unwrap();
            let b = run(&[
                "analyze".into(),
                p.into(),
                "--engine".into(),
                "parallel".into(),
            ])
            .unwrap();
            (a, b)
        });
        // Same configuration table (states line differs).
        let tail = |s: &str| s.split("configurations:").nth(1).unwrap().to_string();
        assert_eq!(tail(&a), tail(&b));
    }

    #[test]
    fn mtbdd_engine_matches_enumerate() {
        let (a, b) = with_model(|p| {
            let a = run(&[
                "analyze".into(),
                p.into(),
                "--engine".into(),
                "mtbdd".into(),
            ])
            .unwrap();
            let b = run(&["analyze".into(), p.into()]).unwrap();
            (a, b)
        });
        let tail = |s: &str| s.split("configurations:").nth(1).unwrap().to_string();
        assert_eq!(tail(&a), tail(&b));
    }

    #[test]
    fn sweep_text_output() {
        let out = with_model(|p| {
            run(&[
                "sweep".into(),
                p.into(),
                "--component".into(),
                "s".into(),
                "--from".into(),
                "0.5".into(),
                "--to".into(),
                "1".into(),
                "--steps".into(),
                "3".into(),
            ])
        })
        .unwrap();
        assert!(out.contains("compiled MTBDD"), "{out}");
        assert!(out.contains("reward"), "{out}");
        // Three data rows after the header.
        assert_eq!(out.lines().filter(|l| l.starts_with("    ")).count(), 3);
    }

    #[test]
    fn sweep_json_output() {
        let out = with_model(|p| {
            run(&[
                "sweep".into(),
                p.into(),
                "--component".into(),
                "p1".into(),
                "--steps".into(),
                "2".into(),
                "--json".into(),
            ])
        })
        .unwrap();
        assert!(out.contains("\"component\": \"p1\""), "{out}");
        assert!(out.contains("\"points\": ["), "{out}");
        assert!(out.contains("\"reward\""), "{out}");
    }

    #[test]
    fn sweep_rejects_unknown_component() {
        let err = with_model(|p| {
            run(&[
                "sweep".into(),
                p.into(),
                "--component".into(),
                "nope".into(),
            ])
        })
        .unwrap_err();
        assert!(err.contains("unknown component"), "{err}");
    }

    #[test]
    fn dot_targets_render() {
        let out = with_model(|p| run(&["dot".into(), p.into(), "fault".into()])).unwrap();
        assert!(out.starts_with("digraph fault_propagation"));
        let out = with_model(|p| run(&["dot".into(), p.into(), "mama".into()])).unwrap();
        assert!(out.starts_with("digraph mama"));
    }

    #[test]
    fn fmt_is_idempotent() {
        let once = with_model(|p| run(&["fmt".into(), p.into()])).unwrap();
        let dir = std::env::temp_dir().join(format!("fmperf-cli-test2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.fmp");
        std::fs::write(&path, &once).unwrap();
        let twice = run(&["fmt".into(), path.to_str().unwrap().into()]).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(once, twice);
    }

    /// Saturated users (think 0): parses fine, lints with a warning.
    const WARNY: &str = "processor pc cores inf\nprocessor p1 fail 0.1\n\
        users u on pc population 5 think 0\ntask s on p1 fail 0.1\n\
        entry eu of u\nentry es of s demand 0.2\ncall eu -> es\nreward u 1.0\n";

    /// Reference task with two entries: a lint *error*.
    const BROKEN: &str = "processor pc cores inf\nusers u on pc\n\
        entry a of u\nentry b of u\n";

    fn with_src<T>(tag: &str, src: &str, f: impl FnOnce(&str) -> T) -> T {
        let dir = std::env::temp_dir().join(format!("fmperf-cli-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.fmp");
        std::fs::write(&path, src).unwrap();
        let r = f(path.to_str().unwrap());
        let _ = std::fs::remove_dir_all(&dir);
        r
    }

    #[test]
    fn lint_passes_clean_model_with_report() {
        let out = with_model(|p| run(&["lint".into(), p.into()])).unwrap();
        assert!(out.contains("note[FM201]"), "{out}");
        assert!(out.contains("0 error(s)"), "{out}");
    }

    #[test]
    fn lint_json_format() {
        let out = with_model(|p| run(&["lint".into(), p.into(), "--format".into(), "json".into()]))
            .unwrap();
        assert!(out.contains("\"code\": \"FM201\""), "{out}");
        assert!(out.contains("\"errors\": 0"), "{out}");
    }

    #[test]
    fn lint_fails_on_errors() {
        let err = with_src("broken", BROKEN, |p| run(&["lint".into(), p.into()])).unwrap_err();
        assert!(err.contains("error[FM001]"), "{err}");
    }

    #[test]
    fn lint_deny_warnings_fails_on_warnings() {
        let ok = with_src("warny1", WARNY, |p| run(&["lint".into(), p.into()]));
        assert!(ok.is_ok());
        let err = with_src("warny2", WARNY, |p| {
            run(&["lint".into(), p.into(), "--deny".into(), "warnings".into()])
        })
        .unwrap_err();
        assert!(err.contains("warning[FM211]"), "{err}");
    }

    #[test]
    fn check_fails_on_lint_errors() {
        let err = with_src("broken2", BROKEN, |p| run(&["check".into(), p.into()])).unwrap_err();
        assert!(err.contains("error[FM001]"), "{err}");
    }

    #[test]
    fn check_deny_warnings() {
        let out = with_src("warny3", WARNY, |p| run(&["check".into(), p.into()])).unwrap();
        assert!(out.contains("ok ("), "{out}");
        let err = with_src("warny4", WARNY, |p| {
            run(&["check".into(), p.into(), "--deny".into(), "warnings".into()])
        })
        .unwrap_err();
        assert!(err.contains("warning[FM211]"), "{err}");
    }

    #[test]
    fn analyze_refuses_lint_errors_and_flags_warnings() {
        let err = with_src("broken3", BROKEN, |p| run(&["analyze".into(), p.into()])).unwrap_err();
        assert!(err.contains("error[FM001]"), "{err}");
        let out = with_src("warny5", WARNY, |p| run(&["analyze".into(), p.into()])).unwrap();
        assert!(out.starts_with("lint: 1 warning(s)"), "{out}");
        assert!(out.contains("configurations:"), "{out}");
    }

    #[test]
    fn bad_flag_is_rejected() {
        let err = with_model(|p| run(&["analyze".into(), p.into(), "--bogus".into()])).unwrap_err();
        assert!(err.contains("unknown flag"));
    }

    #[test]
    fn missing_file_is_reported() {
        let err = run(&["check".into(), "/nonexistent/x.fmp".into()]).unwrap_err();
        assert!(err.contains("cannot read"));
    }
}
