//! The `fmperf` command-line tool: analyse textual models, render DOT
//! diagrams, and canonicalise model files.
//!
//! ```text
//! fmperf analyze <model.fmp> [--engine enumerate|parallel|symbolic|montecarlo]
//!                            [--samples N] [--policy any|all]
//!                            [--unmonitored-known] [--threads N]
//! fmperf check   <model.fmp>
//! fmperf dot     <model.fmp> fault|mama|knowledge
//! fmperf fmt     <model.fmp>
//! ```

use fmperf::core::{solve_configurations, Analysis, MonteCarloOptions, RewardSpec, StudyReport};
use fmperf::ftlqn::{FaultGraph, KnowPolicy};
use fmperf::mama::{ComponentSpace, KnowTable, KnowledgeGraph};
use fmperf::text::{parse, write_model, ParsedModel};
use std::process::ExitCode;

const USAGE: &str = "usage:
  fmperf analyze <model.fmp> [--engine enumerate|parallel|symbolic|montecarlo]
                             [--samples N] [--policy any|all]
                             [--unmonitored-known] [--threads N]
  fmperf check   <model.fmp>
  fmperf dot     <model.fmp> fault|mama|knowledge
  fmperf fmt     <model.fmp>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("fmperf: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Options of the `analyze` subcommand.
struct AnalyzeOptions {
    engine: String,
    samples: u64,
    policy: KnowPolicy,
    unmonitored_known: bool,
    threads: usize,
}

fn load(path: &str) -> Result<ParsedModel, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse(&src).map_err(|e| format!("{path}: {e}"))
}

/// Dispatches a full command line; returns the text to print.
fn run(args: &[String]) -> Result<String, String> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("analyze") => {
            let path = it.next().ok_or(USAGE)?;
            let mut opts = AnalyzeOptions {
                engine: "enumerate".into(),
                samples: 100_000,
                policy: KnowPolicy::AnyFailedComponent,
                unmonitored_known: false,
                threads: 4,
            };
            while let Some(flag) = it.next() {
                match flag {
                    "--engine" => opts.engine = it.next().ok_or("--engine needs a value")?.into(),
                    "--samples" => {
                        opts.samples = it
                            .next()
                            .ok_or("--samples needs a value")?
                            .parse()
                            .map_err(|_| "bad --samples value")?;
                    }
                    "--policy" => {
                        opts.policy = match it.next().ok_or("--policy needs a value")? {
                            "any" => KnowPolicy::AnyFailedComponent,
                            "all" => KnowPolicy::AllFailedComponents,
                            other => return Err(format!("unknown policy `{other}`")),
                        };
                    }
                    "--unmonitored-known" => opts.unmonitored_known = true,
                    "--threads" => {
                        opts.threads = it
                            .next()
                            .ok_or("--threads needs a value")?
                            .parse()
                            .map_err(|_| "bad --threads value")?;
                    }
                    other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
                }
            }
            analyze(&load(path)?, &opts)
        }
        Some("check") => {
            let path = it.next().ok_or(USAGE)?;
            let m = load(path)?;
            Ok(format!(
                "{path}: ok ({} tasks, {} entries, {} services, {} mgmt components, {} connectors)\n",
                m.app.task_count(),
                m.app.entry_count(),
                m.app.service_count(),
                m.mama.component_count(),
                m.mama.connector_count(),
            ))
        }
        Some("dot") => {
            let path = it.next().ok_or(USAGE)?;
            let what = it.next().ok_or(USAGE)?;
            let m = load(path)?;
            match what {
                "fault" => {
                    let graph = FaultGraph::build(&m.app).map_err(|e| e.to_string())?;
                    Ok(fmperf::ftlqn::dot::fault_graph_dot(&graph))
                }
                "mama" => Ok(fmperf::mama::dot::mama_dot(&m.mama)),
                "knowledge" => {
                    let kg = KnowledgeGraph::build(&m.mama);
                    Ok(fmperf::mama::dot::knowledge_graph_dot(&m.mama, &kg))
                }
                other => Err(format!("unknown dot target `{other}`\n{USAGE}")),
            }
        }
        Some("fmt") => {
            let path = it.next().ok_or(USAGE)?;
            let m = load(path)?;
            Ok(write_model(&m.app, &m.mama, &m.rewards))
        }
        _ => Err(USAGE.to_string()),
    }
}

fn analyze(m: &ParsedModel, opts: &AnalyzeOptions) -> Result<String, String> {
    let graph = FaultGraph::build(&m.app).map_err(|e| e.to_string())?;
    let has_mama = m.mama.component_count() > 0;
    let space = if has_mama {
        ComponentSpace::build(&m.app, &m.mama)
    } else {
        ComponentSpace::app_only(&m.app)
    };
    let table;
    let mut analysis = Analysis::new(&graph, &space)
        .with_policy(opts.policy)
        .with_unmonitored_known(opts.unmonitored_known);
    if has_mama {
        table = KnowTable::build(&graph, &m.mama, &space);
        analysis = analysis.with_knowledge(&table);
    }

    let dist = match opts.engine.as_str() {
        "enumerate" => analysis.enumerate(),
        "parallel" => analysis.enumerate_parallel(opts.threads),
        "symbolic" => analysis.symbolic(),
        "montecarlo" => analysis.monte_carlo(MonteCarloOptions {
            samples: opts.samples,
            seed: 0xF00D,
        }),
        other => return Err(format!("unknown engine `{other}`")),
    };

    let mut out = String::new();
    out.push_str(&format!(
        "components: {} total, {} fallible; engine: {}, states: {}\n\n",
        space.len(),
        space.fallible_indices().len(),
        opts.engine,
        dist.states_explored(),
    ));
    out.push_str("configurations:\n");
    out.push_str(&dist.table(&m.app));

    if !m.rewards.is_empty() {
        let configs = dist.configurations();
        let perfs = solve_configurations(&m.app, &configs).map_err(|e| e.to_string())?;
        let mut spec = RewardSpec::new();
        for &(t, w) in &m.rewards {
            spec = spec.weight(t, w);
        }
        let report = StudyReport::new(&m.app, &dist, &perfs, &spec);
        out.push_str("\nreward report:\n");
        out.push_str(&format!("{report}"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODEL: &str = "processor pc cores inf\nprocessor p1 fail 0.1\n\
        users u on pc population 5 think 1.0\ntask s on p1 fail 0.1\n\
        entry eu of u\nentry es of s demand 0.2\ncall eu -> es\nreward u 1.0\n";

    fn with_model<T>(f: impl FnOnce(&str) -> T) -> T {
        let dir = std::env::temp_dir().join(format!("fmperf-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.fmp");
        std::fs::write(&path, MODEL).unwrap();
        let r = f(path.to_str().unwrap());
        let _ = std::fs::remove_dir_all(&dir);
        r
    }

    #[test]
    fn check_reports_counts() {
        let out = with_model(|p| run(&["check".into(), p.into()])).unwrap();
        assert!(out.contains("ok (2 tasks, 2 entries"));
    }

    #[test]
    fn analyze_produces_reward() {
        let out = with_model(|p| run(&["analyze".into(), p.into()])).unwrap();
        assert!(out.contains("expected steady-state reward rate"));
        assert!(out.contains("configurations:"));
    }

    #[test]
    fn engines_selectable_and_agree() {
        let (a, b) = with_model(|p| {
            let a = run(&[
                "analyze".into(),
                p.into(),
                "--engine".into(),
                "symbolic".into(),
            ])
            .unwrap();
            let b = run(&[
                "analyze".into(),
                p.into(),
                "--engine".into(),
                "parallel".into(),
            ])
            .unwrap();
            (a, b)
        });
        // Same configuration table (states line differs).
        let tail = |s: &str| s.split("configurations:").nth(1).unwrap().to_string();
        assert_eq!(tail(&a), tail(&b));
    }

    #[test]
    fn dot_targets_render() {
        let out = with_model(|p| run(&["dot".into(), p.into(), "fault".into()])).unwrap();
        assert!(out.starts_with("digraph fault_propagation"));
        let out = with_model(|p| run(&["dot".into(), p.into(), "mama".into()])).unwrap();
        assert!(out.starts_with("digraph mama"));
    }

    #[test]
    fn fmt_is_idempotent() {
        let once = with_model(|p| run(&["fmt".into(), p.into()])).unwrap();
        let dir = std::env::temp_dir().join(format!("fmperf-cli-test2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.fmp");
        std::fs::write(&path, &once).unwrap();
        let twice = run(&["fmt".into(), path.to_str().unwrap().into()]).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(once, twice);
    }

    #[test]
    fn bad_flag_is_rejected() {
        let err = with_model(|p| run(&["analyze".into(), p.into(), "--bogus".into()])).unwrap_err();
        assert!(err.contains("unknown flag"));
    }

    #[test]
    fn missing_file_is_reported() {
        let err = run(&["check".into(), "/nonexistent/x.fmp".into()]).unwrap_err();
        assert!(err.contains("cannot read"));
    }
}
