//! # fmperf
//!
//! Facade crate: coverage and performability analysis of fault-management
//! architectures in layered distributed systems, reproducing Das & Woodside
//! (DSN 2002).
//!
//! Re-exports the workspace crates under stable module names:
//!
//! * [`graph`] — AND-OR graphs, typed minpath enumeration.
//! * [`bdd`] — reduced ordered binary decision diagrams.
//! * [`lqn`] — layered queueing network analytic solver.
//! * [`sim`] — discrete-event simulator for layered RPC systems.
//! * [`ftlqn`] — fault-tolerant layered queueing network models.
//! * [`mama`] — fault-management architecture models (MAMA).
//! * [`core`] — the performability engines combining everything.
//! * [`obs`] — engine instrumentation: counters, spans, trace export.
//! * [`text`] — the textual model format (parser and writer).
//! * [`lint`] — static-analysis passes over parsed models.
//! * [`serve`] — the crash-tolerant analysis daemon (`fmperf serve`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fmperf_bdd as bdd;
pub use fmperf_core as core;
pub use fmperf_ftlqn as ftlqn;
pub use fmperf_graph as graph;
pub use fmperf_lint as lint;
pub use fmperf_lqn as lqn;
pub use fmperf_mama as mama;
pub use fmperf_obs as obs;
pub use fmperf_serve as serve;
pub use fmperf_sim as sim;
pub use fmperf_text as text;
