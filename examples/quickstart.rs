//! Quickstart: build a small fault-tolerant layered system with a
//! management architecture, and compute its expected steady-state reward
//! rate.
//!
//! The system: 20 users call an application server, which reads from a
//! primary database with a warm standby.  A single manager watches
//! everything through node-local agents and tells the application's
//! subagent when to retarget.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use fmperf::core::{expected_reward, solve_configurations, Analysis, RewardSpec};
use fmperf::ftlqn::{FtlqnModel, RequestTarget};
use fmperf::lqn::Multiplicity;
use fmperf::mama::model::ConnectorKind;
use fmperf::mama::{ComponentSpace, KnowTable, MamaModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---------------------------------------------------------------
    // 1. The application: an FTLQN (paper §2).
    // ---------------------------------------------------------------
    let mut app = FtlqnModel::new();
    let pc_users = app.add_processor("user-pcs", 0.0, Multiplicity::Infinite);
    let p_app = app.add_processor("app-node", 0.05, Multiplicity::Finite(1));
    let p_db1 = app.add_processor("db1-node", 0.05, Multiplicity::Finite(1));
    let p_db2 = app.add_processor("db2-node", 0.05, Multiplicity::Finite(1));

    let users = app.add_reference_task("users", pc_users, 0.0, 20, 2.0);
    let server = app.add_task("app-server", p_app, 0.05, Multiplicity::Finite(4));
    let db1 = app.add_task("db-primary", p_db1, 0.05, Multiplicity::Finite(1));
    let db2 = app.add_task("db-standby", p_db2, 0.05, Multiplicity::Finite(1));

    let e_users = app.add_entry("browse", users, 0.0);
    let e_server = app.add_entry("handle", server, 0.02);
    let e_db1 = app.add_entry("query-primary", db1, 0.05);
    let e_db2 = app.add_entry("query-standby", db2, 0.08); // standby is slower

    // The redirection point: primary first, standby second.
    let data = app.add_service("data");
    app.add_alternative(data, e_db1, None);
    app.add_alternative(data, e_db2, None);

    app.add_request(e_users, RequestTarget::Entry(e_server), 1.0, None);
    app.add_request(e_server, RequestTarget::Service(data), 2.0, None);

    // ---------------------------------------------------------------
    // 2. The management architecture: a MAMA model (paper §2.C).
    // ---------------------------------------------------------------
    let mut mama = MamaModel::new();
    let m_papp = mama.add_app_processor("app-node", p_app);
    let m_pdb1 = mama.add_app_processor("db1-node", p_db1);
    let m_pdb2 = mama.add_app_processor("db2-node", p_db2);
    let m_server = mama.add_app_task("app-server", server, m_papp);
    let m_db1 = mama.add_app_task("db-primary", db1, m_pdb1);
    let m_db2 = mama.add_app_task("db-standby", db2, m_pdb2);

    let ag_app = mama.add_agent("agent-app", m_papp, 0.05);
    let ag_db1 = mama.add_agent("agent-db1", m_pdb1, 0.05);
    let ag_db2 = mama.add_agent("agent-db2", m_pdb2, 0.05);
    let p_mgr = mama.add_mgmt_processor("mgr-node", 0.05);
    let mgr = mama.add_manager("manager", p_mgr, 0.05);

    // Heartbeats into the local agents, status into the manager, pings
    // on the processors, commands back down to the app's subagent.
    mama.watch("hb-server", ConnectorKind::AliveWatch, m_server, ag_app);
    mama.watch("hb-db1", ConnectorKind::AliveWatch, m_db1, ag_db1);
    mama.watch("hb-db2", ConnectorKind::AliveWatch, m_db2, ag_db2);
    mama.watch("st-app", ConnectorKind::StatusWatch, ag_app, mgr);
    mama.watch("st-db1", ConnectorKind::StatusWatch, ag_db1, mgr);
    mama.watch("st-db2", ConnectorKind::StatusWatch, ag_db2, mgr);
    mama.watch("ping-db1", ConnectorKind::AliveWatch, m_pdb1, mgr);
    mama.watch("ping-db2", ConnectorKind::AliveWatch, m_pdb2, mgr);
    mama.notify("cmd-down", mgr, ag_app);
    mama.notify("cmd-app", ag_app, m_server);
    mama.validate(&app)?;

    // ---------------------------------------------------------------
    // 3. Analysis (paper §5): configurations, probabilities, rewards.
    // ---------------------------------------------------------------
    let graph = fmperf::ftlqn::FaultGraph::build(&app)?;
    let space = ComponentSpace::build(&app, &mama);
    let table = KnowTable::build(&graph, &mama, &space);
    let analysis = Analysis::new(&graph, &space).with_knowledge(&table);

    println!(
        "fallible components: {} -> {} states",
        space.fallible_indices().len(),
        analysis.state_space_size()
    );
    let dist = analysis.enumerate();
    println!("\nOperational configurations:");
    print!("{}", dist.table(&app));

    let configs = dist.configurations();
    let perfs = solve_configurations(&app, &configs)?;
    let spec = RewardSpec::new().weight(users, 1.0);
    let reward = expected_reward(&dist, &perfs, &spec);
    println!("\nExpected steady-state reward rate: {reward:.3} user-cycles/s");

    // Compare with a hypothetical perfect detection/reconfiguration
    // mechanism to see what the management architecture costs.
    let perfect_space = ComponentSpace::app_only(&app);
    let perfect = Analysis::new(&graph, &perfect_space).enumerate();
    let perfect_perfs = solve_configurations(&app, &perfect.configurations())?;
    let perfect_reward = expected_reward(&perfect, &perfect_perfs, &spec);
    println!("With perfect knowledge it would be:  {perfect_reward:.3} user-cycles/s");
    println!(
        "Coverage limitations of the management architecture cost {:.1}%",
        100.0 * (1.0 - reward / perfect_reward)
    );
    Ok(())
}
