//! Cross-checks the analytic LQN solver against the discrete-event
//! simulator on every operational configuration of the paper's Figure 1
//! system.
//!
//! The paper used the LQNS tool for step 5 of its algorithm; our
//! reproduction replaces it with a Method-of-Layers solver whose accuracy
//! this example quantifies against an independent simulation of the same
//! blocking-RPC semantics.
//!
//! ```text
//! cargo run --release --example solver_crosscheck
//! ```

use fmperf::core::Analysis;
use fmperf::ftlqn::examples::das_woodside_system;
use fmperf::ftlqn::lower::lower;
use fmperf::lqn::solve;
use fmperf::mama::ComponentSpace;
use fmperf::sim::{simulate, SimOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sys = das_woodside_system();
    let graph = sys.fault_graph()?;
    let space = ComponentSpace::app_only(&sys.model);
    let dist = Analysis::new(&graph, &space).enumerate();

    println!("Analytic LQN vs discrete-event simulation, per configuration:");
    println!(
        "{:<26} {:>16} {:>16} {:>9}",
        "configuration", "analytic fA/fB", "simulated fA/fB", "max err"
    );
    for config in dist.configurations() {
        if config.is_failed() {
            continue;
        }
        let lowered = lower(&sys.model, &config)?;
        let ana = solve(&lowered.model)?;
        let sim = simulate(
            &lowered.model,
            SimOptions {
                horizon: 30_000.0,
                warmup: 3_000.0,
                seed: 42,
                ..SimOptions::default()
            },
        )?;
        let mut worst: f64 = 0.0;
        let mut ana_col = String::new();
        let mut sim_col = String::new();
        for &chain in &[sys.user_a, sys.user_b] {
            match lowered.task(chain) {
                Some(t) => {
                    let fa = ana.task_throughput(t);
                    let fs = sim.task_throughput(t);
                    if fs > 0.0 {
                        worst = worst.max((fa - fs).abs() / fs);
                    }
                    ana_col.push_str(&format!("{fa:.3} "));
                    sim_col.push_str(&format!("{fs:.3} "));
                }
                None => {
                    ana_col.push_str("  -   ");
                    sim_col.push_str("  -   ");
                }
            }
        }
        let mut label = String::new();
        for &chain in &config.user_chains {
            label.push_str(sys.model.task_name(chain));
            label.push('+');
        }
        label.pop();
        let backup = config
            .used_services
            .values()
            .any(|&e| e == sys.e_a2 || e == sys.e_b2);
        label.push_str(if backup { " (backup)" } else { " (primary)" });
        println!(
            "{label:<26} {ana_col:>16} {sim_col:>16} {:>8.1}%",
            100.0 * worst
        );
    }
    println!();
    println!("The Method-of-Layers + Bard-Schweitzer combination tracks the simulator");
    println!("to within a few percent, comparable to the published accuracy of");
    println!("approximate MVA itself.");
    Ok(())
}
