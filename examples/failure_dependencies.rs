//! Failure-dependency extension: what a shared rack does to a
//! primary/backup pair.
//!
//! The paper assumes independent failures (its reference [10] sketches
//! dependency factors).  This example puts the Figure 1 system's two data
//! servers in one rack with a common-cause failure event and shows how
//! quickly the value of the backup evaporates.
//!
//! ```text
//! cargo run --example failure_dependencies
//! ```

use fmperf::core::{
    expected_reward, solve_configurations, Analysis, FailureDependencies, RewardSpec,
};
use fmperf::ftlqn::examples::das_woodside_system;
use fmperf::ftlqn::Component;
use fmperf::mama::ComponentSpace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sys = das_woodside_system();
    let graph = sys.fault_graph()?;
    let space = ComponentSpace::app_only(&sys.model);
    let analysis = Analysis::new(&graph, &space);
    let spec = RewardSpec::new()
        .weight(sys.user_a, 1.0)
        .weight(sys.user_b, 1.0);

    let ix3 = sys.model.component_index(Component::Processor(sys.proc3));
    let ix4 = sys.model.component_index(Component::Processor(sys.proc4));

    println!("Both data-server nodes share a rack; the rack itself can fail.");
    println!(
        "{:>12} {:>12} {:>14}",
        "P[rack dies]", "P[failed]", "E[reward]/s"
    );
    for rack_prob in [0.0, 0.01, 0.02, 0.05, 0.10, 0.20] {
        let mut deps = FailureDependencies::new();
        deps.add_group("server-rack", rack_prob, vec![ix3, ix4]);
        let dist = analysis.enumerate_with_dependencies(&deps);
        let perfs = solve_configurations(&sys.model, &dist.configurations())?;
        let r = expected_reward(&dist, &perfs, &spec);
        println!(
            "{rack_prob:>12.2} {:>12.3} {:>14.3}",
            dist.failed_probability(),
            r
        );
    }
    println!();
    println!("The backup server only helps while its failures stay independent of the");
    println!("primary's: at 20% common-cause probability the failed-state mass has");
    println!("roughly tripled even though every individual component is unchanged.");
    Ok(())
}
