//! The paper's §6 evaluation in one program: compare the coverage and
//! performability of the four fault-management architectures on the
//! Figure 1 client-server system.
//!
//! ```text
//! cargo run --example four_architectures
//! ```

use fmperf::core::{expected_reward, solve_configurations, Analysis, RewardSpec};
use fmperf::ftlqn::examples::das_woodside_system;
use fmperf::mama::{arch, ComponentSpace, KnowTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sys = das_woodside_system();
    let graph = sys.fault_graph()?;
    let spec = RewardSpec::new()
        .weight(sys.user_a, 1.0)
        .weight(sys.user_b, 1.0);

    println!("Figure 1 system: two user groups, departmental apps, primary+backup server");
    println!(
        "{:<22} {:>9} {:>10} {:>12} {:>14}",
        "architecture", "states", "P[failed]", "E[reward]/s", "vs perfect"
    );

    // Perfect-knowledge baseline.
    let space = ComponentSpace::app_only(&sys.model);
    let analysis = Analysis::new(&graph, &space);
    let dist = analysis.enumerate();
    let perfs = solve_configurations(&sys.model, &dist.configurations())?;
    let r_perfect = expected_reward(&dist, &perfs, &spec);
    println!(
        "{:<22} {:>9} {:>10.3} {:>12.3} {:>13.1}%",
        "perfect knowledge",
        analysis.state_space_size(),
        dist.failed_probability(),
        r_perfect,
        100.0
    );

    for kind in arch::ArchKind::ALL {
        let mama = arch::build(kind, &sys, 0.1);
        let space = ComponentSpace::build(&sys.model, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        let analysis = Analysis::new(&graph, &space).with_knowledge(&table);
        let dist = analysis.enumerate();
        let perfs = solve_configurations(&sys.model, &dist.configurations())?;
        let r = expected_reward(&dist, &perfs, &spec);
        println!(
            "{:<22} {:>9} {:>10.3} {:>12.3} {:>13.1}%",
            kind.name(),
            analysis.state_space_size(),
            dist.failed_probability(),
            r,
            100.0 * r / r_perfect
        );
    }

    // The as-published distributed variant (see EXPERIMENTS.md).
    let mama = arch::distributed_as_published(&sys, 0.1);
    let space = ComponentSpace::build(&sys.model, &mama);
    let table = KnowTable::build(&graph, &mama, &space);
    let analysis = Analysis::new(&graph, &space)
        .with_knowledge(&table)
        .with_unmonitored_known(true);
    let dist = analysis.enumerate();
    let perfs = solve_configurations(&sys.model, &dist.configurations())?;
    let r = expected_reward(&dist, &perfs, &spec);
    println!(
        "{:<22} {:>9} {:>10.3} {:>12.3} {:>13.1}%",
        "distributed (paper)",
        analysis.state_space_size(),
        dist.failed_probability(),
        r,
        100.0 * r / r_perfect
    );

    println!();
    println!("Higher managers-of-managers mean longer knowledge chains: every hop");
    println!("(agent, manager, processor) multiplies another availability factor into");
    println!("the coverage of each reconfiguration decision.");
    Ok(())
}
