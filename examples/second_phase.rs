//! Second-phase entries: replying early without lying about capacity.
//!
//! An order service acknowledges the customer as soon as the order is
//! durable (phase 1), then does fulfilment bookkeeping and notifies a
//! slow analytics service *after* the reply (phase 2).  Phase 2 is
//! invisible to the customer's latency but still occupies the service
//! threads — this example shows the analytic solver and the simulator
//! agreeing on both effects.
//!
//! ```text
//! cargo run --example second_phase
//! ```

use fmperf::lqn::{solve, LqnModel, Multiplicity, Phase};
use fmperf::sim::{simulate, SimOptions};

fn build(second_phase: bool) -> (LqnModel, fmperf::lqn::TaskId, fmperf::lqn::EntryId) {
    let mut m = LqnModel::new();
    let pc = m.add_processor("clients", Multiplicity::Infinite);
    let po = m.add_processor("order-node", Multiplicity::Finite(2));
    let pa = m.add_processor("analytics-node", Multiplicity::Finite(1));
    let users = m.add_reference_task("customers", pc, 30, 2.0);
    let orders = m.add_task("order-svc", po, Multiplicity::Finite(6));
    let analytics = m.add_task("analytics", pa, Multiplicity::Finite(6));
    let e_u = m.add_entry("checkout", users, 0.0);
    // Total order-service demand is 0.05 s in both variants; the
    // phase-2 variant defers 0.02 s of it past the reply.
    let e_o = m.add_entry(
        "place-order",
        orders,
        if second_phase { 0.03 } else { 0.05 },
    );
    let e_a = m.add_entry("ingest", analytics, 0.08);
    m.add_call(e_u, e_o, 1.0).unwrap();
    if second_phase {
        m.set_second_phase_demand(e_o, 0.02);
        m.add_call_in_phase(e_o, e_a, 1.0, Phase::Two).unwrap();
    } else {
        m.add_call(e_o, e_a, 1.0).unwrap();
    }
    (m, users, e_o)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<22} {:>12} {:>12} {:>14} {:>14}",
        "variant", "X analytic", "X simulated", "resp (ana)", "resp (sim)"
    );
    for (label, ph2) in [("synchronous ingest", false), ("phase-2 ingest", true)] {
        let (m, users, e_o) = build(ph2);
        let ana = solve(&m)?;
        let sim = simulate(
            &m,
            SimOptions {
                horizon: 40_000.0,
                warmup: 4_000.0,
                seed: 3,
                ..SimOptions::default()
            },
        )?;
        println!(
            "{label:<22} {:>12.3} {:>12.3} {:>14.4} {:>14.4}",
            ana.task_throughput(users),
            sim.task_throughput(users),
            ana.chain_response(users).unwrap(),
            sim.chain_response(users).unwrap(),
        );
        let _ = ana.entry_reply_time(e_o); // also available per entry
    }
    println!();
    println!("Moving the ingest call into phase 2 removes the analytics round-trip");
    println!("from the customer-visible reply while the analytics service still");
    println!("receives every order; both engines agree on the effect.");
    Ok(())
}
