//! Regenerates the shipped `models/*.fmp` files from the canonical
//! in-code builders: the paper's Figure 1 system under each §6
//! management architecture (plus both distributed variants).
//!
//! Run from the repository root so the files land in `models/`:
//!
//! ```text
//! cargo run --example gen_models
//! ```

use fmperf::ftlqn::examples::das_woodside_system;
use fmperf::mama::arch;
use fmperf::text::write_model;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sys = das_woodside_system();
    for (name, mama) in [
        ("centralized", arch::centralized(&sys, 0.1)),
        ("distributed-as-drawn", arch::distributed(&sys, 0.1)),
        (
            "distributed-as-published",
            arch::distributed_as_published(&sys, 0.1),
        ),
        ("hierarchical", arch::hierarchical(&sys, 0.1)),
        ("network", arch::network(&sys, 0.1)),
    ] {
        let text = write_model(&sys.model, &mama, &[(sys.user_a, 1.0), (sys.user_b, 1.0)]);
        let path = format!("models/paper-{name}.fmp");
        std::fs::write(&path, text)?;
        println!("wrote {path}");
    }
    Ok(())
}
