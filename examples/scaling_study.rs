//! Scaling study: pushing past the paper's "one or two dozen entities".
//!
//! The paper notes (§7) that exhaustive `2^N` enumeration limits the
//! approach to a couple dozen components.  This example generates a
//! family of progressively larger enterprise systems — `d` departments,
//! each with its own application task, sharing a pool of primary/backup
//! server pairs — wraps each in a synthesised two-domain management
//! architecture, and compares the engines:
//!
//! * exact enumeration (while it is still feasible),
//! * the symbolic BDD engine (exact, `2^(app components)` only),
//! * Monte Carlo (any size).
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use fmperf::core::{Analysis, MonteCarloOptions};
use fmperf::ftlqn::{FaultGraph, FtlqnModel, RequestTarget};
use fmperf::lqn::Multiplicity;
use fmperf::mama::{synthesize, ComponentSpace, KnowTable, SynthOptions};
use std::time::Instant;

/// Builds a `d`-department enterprise over `k` primary/backup pairs.
fn enterprise(d: usize, k: usize) -> FtlqnModel {
    let mut m = FtlqnModel::new();
    let pc = m.add_processor("terminals", 0.0, Multiplicity::Infinite);
    let mut primaries = Vec::new();
    let mut backups = Vec::new();
    for i in 0..k {
        let pp = m.add_processor(format!("srv-node-{i}"), 0.05, Multiplicity::Finite(1));
        let pt = m.add_task(format!("srv-{i}"), pp, 0.05, Multiplicity::Finite(1));
        let bp = m.add_processor(format!("bak-node-{i}"), 0.05, Multiplicity::Finite(1));
        let bt = m.add_task(format!("bak-{i}"), bp, 0.05, Multiplicity::Finite(1));
        primaries.push((pt, pp));
        backups.push((bt, bp));
    }
    for dep in 0..d {
        let ap = m.add_processor(format!("dept-node-{dep}"), 0.05, Multiplicity::Finite(1));
        let at = m.add_task(format!("dept-app-{dep}"), ap, 0.05, Multiplicity::Finite(2));
        let users = m.add_reference_task(format!("users-{dep}"), pc, 0.0, 20, 1.0);
        let e_u = m.add_entry(format!("u-{dep}"), users, 0.0);
        let e_a = m.add_entry(format!("a-{dep}"), at, 0.05);
        m.add_request(e_u, RequestTarget::Entry(e_a), 1.0, None);
        // Department dep prefers server dep % k, backed by its pair.
        let sx = dep % k;
        let e_p = m.add_entry(format!("p-{dep}"), primaries[sx].0, 0.1);
        let e_b = m.add_entry(format!("b-{dep}"), backups[sx].0, 0.12);
        let svc = m.add_service(format!("data-{dep}"));
        m.add_alternative(svc, e_p, None);
        m.add_alternative(svc, e_b, None);
        m.add_request(e_a, RequestTarget::Service(svc), 1.0, None);
    }
    m.validate().expect("generated enterprise is valid");
    m
}

fn main() {
    println!(
        "{:>4} {:>4} {:>9} {:>11} {:>11} {:>11} {:>12} {:>12}",
        "dept",
        "srv",
        "fallible",
        "P[f] exact",
        "P[f] symb",
        "P[f] mc",
        "t(symbolic)",
        "t(mc 100k)"
    );
    for (d, k) in [(1usize, 1usize), (2, 1), (2, 2), (3, 2), (4, 2)] {
        let app = enterprise(d, k);
        let mama = synthesize(
            &app,
            &SynthOptions {
                mgmt_fail_prob: 0.05,
                domains: 2,
                hierarchical: false,
            },
        );
        let graph = FaultGraph::build(&app).unwrap();
        let space = ComponentSpace::build(&app, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        let analysis = Analysis::new(&graph, &space).with_knowledge(&table);
        let fallible = space.fallible_indices().len();

        let exact = if fallible <= 22 {
            Some(analysis.enumerate_parallel(4).failed_probability())
        } else {
            None
        };
        let t0 = Instant::now();
        let sym = analysis.symbolic();
        let t_sym = t0.elapsed();
        let t0 = Instant::now();
        let mc = analysis.monte_carlo(MonteCarloOptions {
            samples: 100_000,
            seed: 17,
        });
        let t_mc = t0.elapsed();

        println!(
            "{d:>4} {k:>4} {fallible:>9} {:>11} {:>11.4} {:>11.4} {:>12.1?} {:>12.1?}",
            exact.map_or("-".to_string(), |p| format!("{p:.4}")),
            sym.failed_probability(),
            mc.failed_probability(),
            t_sym,
            t_mc,
        );
        if let Some(e) = exact {
            assert!(
                (e - sym.failed_probability()).abs() < 1e-9,
                "symbolic must stay exact"
            );
        }
    }
    println!();
    println!("The symbolic engine stays exact while only enumerating application states;");
    println!("Monte Carlo scales to arbitrary sizes with ~1/sqrt(n) error.");
}
