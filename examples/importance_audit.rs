//! Component-importance audit: which component deserves the next unit of
//! hardening budget?
//!
//! Ranks every fallible component — application *and* management — by the
//! derivative of the expected reward with respect to its availability
//! (reward-weighted Birnbaum importance).  Management components compete
//! on the same scale as servers: a dead manager loses reward through
//! missed reconfigurations rather than through lost capacity.
//!
//! ```text
//! cargo run --example importance_audit
//! ```

use fmperf::core::{sensitivity, Analysis, RewardSpec};
use fmperf::ftlqn::examples::das_woodside_system;
use fmperf::mama::{arch, ComponentSpace, KnowTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sys = das_woodside_system();
    let graph = sys.fault_graph()?;
    let mama = arch::centralized(&sys, 0.1);
    let space = ComponentSpace::build(&sys.model, &mama);
    let table = KnowTable::build(&graph, &mama, &space);
    let analysis = Analysis::new(&graph, &space).with_knowledge(&table);
    let spec = RewardSpec::new()
        .weight(sys.user_a, 1.0)
        .weight(sys.user_b, 1.0);

    let sens = sensitivity(&analysis, &spec)?;
    println!("Centralized management of the Figure 1 system");
    println!("∂E[reward]/∂availability, most important first:\n");
    println!("{:<12} {:>12}", "component", "dR/da");
    for (ix, d) in sens.ranked() {
        println!("{:<12} {:>12.4}", space.name(ix), d);
    }
    println!();
    println!("Reading: raising a component's availability from a to a+δ buys");
    println!("δ × (dR/da) extra reward per second.  Note where the central manager");
    println!("and the agents land relative to the application servers.");
    Ok(())
}
