//! Detection-delay extension: how heartbeat intervals eat into the
//! reward that coverage analysis promises.
//!
//! Steady-state coverage analysis treats a covered failure as instantly
//! repaired by reconfiguration.  This example applies the first-order
//! delay correction (paper §7 / reference [29]) for a range of heartbeat
//! intervals and failure rates on the Figure 1 system.
//!
//! ```text
//! cargo run --example detection_delay
//! ```

use fmperf::core::{expected_reward, solve_configurations, Analysis, DelayModel, RewardSpec};
use fmperf::ftlqn::examples::das_woodside_system;
use fmperf::mama::{arch, ComponentSpace, KnowTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sys = das_woodside_system();
    let graph = sys.fault_graph()?;
    let mama = arch::centralized(&sys, 0.1);
    let space = ComponentSpace::build(&sys.model, &mama);
    let table = KnowTable::build(&graph, &mama, &space);
    let analysis = Analysis::new(&graph, &space).with_knowledge(&table);
    let spec = RewardSpec::new()
        .weight(sys.user_a, 1.0)
        .weight(sys.user_b, 1.0);

    let dist = analysis.enumerate();
    let perfs = solve_configurations(&sys.model, &dist.configurations())?;
    let r_ss = expected_reward(&dist, &perfs, &spec);
    println!("Steady-state expected reward (instant detection): {r_ss:.3}/s\n");

    println!("First-order reward penalty for finite detection + reconfiguration:");
    println!(
        "{:>16} {:>14} {:>12} {:>14}",
        "MTBF per comp.", "window (s)", "penalty/s", "adjusted R"
    );
    for mtbf_hours in [24.0, 24.0 * 7.0] {
        for window in [1.0, 10.0, 60.0, 300.0] {
            let rate = 1.0 / (mtbf_hours * 3600.0);
            let model = DelayModel::uniform(space.len(), rate, window);
            let penalty = model.penalty(&analysis, &spec)?;
            println!(
                "{:>13.0} h {:>14.0} {:>12.5} {:>14.3}",
                mtbf_hours,
                window,
                penalty,
                r_ss - penalty
            );
        }
    }
    println!();
    println!("The correction matters once detection windows reach minutes on");
    println!("components that fail daily — exactly the regime where the paper");
    println!("suggests extending the model with explicit delay states.");
    Ok(())
}
