//! Vendored offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The build environment for this repository is fully hermetic: no
//! crates-io registry is reachable, so the real `serde_derive` (and its
//! `syn`/`quote` dependency tree) cannot be compiled. This shim accepts
//! the same `#[derive(Serialize, Deserialize)]` surface and emits marker
//! trait impls so that derived types satisfy `serde::Serialize` /
//! `serde::Deserialize` *bounds*. It performs no actual data-format
//! work; `serde_json` (also shimmed) reports serialisation as
//! unsupported at runtime, and tests that need real round-trips skip
//! themselves.
//!
//! Deliberately tiny: a hand-rolled item-name scanner instead of `syn`.
#![forbid(unsafe_code)]

use proc_macro::{TokenStream, TokenTree};

/// Extract the identifier that follows the `struct` / `enum` keyword,
/// plus the generics parameter list if one is present, from the token
/// stream of the item the derive is attached to.
fn item_name_and_generics(item: TokenStream) -> Option<(String, Vec<String>)> {
    let mut iter = item.into_iter();
    // Skip until the `struct` / `enum` keyword (visibility, attributes
    // and doc comments may precede it).
    loop {
        match iter.next()? {
            TokenTree::Ident(kw) => {
                let kw = kw.to_string();
                if kw == "struct" || kw == "enum" || kw == "union" {
                    break;
                }
            }
            _ => continue,
        }
    }
    let name = match iter.next()? {
        TokenTree::Ident(id) => id.to_string(),
        _ => return None,
    };
    // Collect simple generic parameter names from `<A, B: Bound, ...>`.
    // Lifetimes and const generics are not needed by this workspace.
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = iter.clone().next() {
        if p.as_char() == '<' {
            iter.next();
            let mut depth = 1usize;
            let mut expect_param = true;
            for tt in iter {
                match tt {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                        expect_param = true;
                    }
                    TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => {
                        expect_param = false;
                    }
                    TokenTree::Ident(id) if depth == 1 && expect_param => {
                        generics.push(id.to_string());
                        expect_param = false;
                    }
                    _ => {}
                }
            }
        }
    }
    Some((name, generics))
}

fn marker_impl(trait_path: &str, item: TokenStream) -> TokenStream {
    let Some((name, generics)) = item_name_and_generics(item) else {
        return TokenStream::new();
    };
    let (params, args, bounds) = if generics.is_empty() {
        (String::new(), String::new(), String::new())
    } else {
        let list = generics.join(", ");
        let bounds = generics
            .iter()
            .map(|g| format!("{g}: {trait_path}"))
            .collect::<Vec<_>>()
            .join(", ");
        (
            format!("<{list}>"),
            format!("<{list}>"),
            format!(" where {bounds}"),
        )
    };
    format!("impl{params} {trait_path} for {name}{args}{bounds} {{}}")
        .parse()
        .unwrap_or_default()
}

/// No-op `Serialize` derive: emits only a marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(item: TokenStream) -> TokenStream {
    marker_impl("::serde::Serialize", item)
}

/// No-op `Deserialize` derive: emits only a marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(item: TokenStream) -> TokenStream {
    marker_impl("::serde::Deserialize", item)
}
