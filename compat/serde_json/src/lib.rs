//! Vendored offline stand-in for the `serde_json` crate.
//!
//! The hermetic build cannot compile the real `serde_json`, and the
//! no-op `serde` derive shim carries no type information to serialise
//! from anyway. Every entry point therefore returns an error whose
//! [`Error::is_unsupported`] is `true`; callers (the round-trip test
//! suites) detect that and skip instead of failing, so the tests keep
//! compiling against the genuine API shape and light up again the
//! moment a real registry is available.
#![forbid(unsafe_code)]

use std::fmt;

/// Error type mirroring `serde_json::Error` for the shim's purposes.
pub struct Error {
    message: String,
}

impl Error {
    fn unsupported(op: &str) -> Self {
        Error {
            message: format!(
                "serde_json shim: {op} is unsupported in the hermetic offline build \
                 (vendored stub at compat/serde_json)"
            ),
        }
    }

    /// True when the error only signals that the vendored shim cannot
    /// perform real serialisation (always the case for this shim).
    /// Tests use this to self-skip rather than fail.
    pub fn is_unsupported(&self) -> bool {
        true
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({})", self.message)
    }
}

impl std::error::Error for Error {}

/// Mirrors `serde_json::to_string`; always unsupported in the shim.
pub fn to_string<T: ?Sized>(_value: &T) -> Result<String, Error> {
    Err(Error::unsupported("to_string"))
}

/// Mirrors `serde_json::to_string_pretty`; always unsupported in the shim.
pub fn to_string_pretty<T: ?Sized>(_value: &T) -> Result<String, Error> {
    Err(Error::unsupported("to_string_pretty"))
}

/// Mirrors `serde_json::from_str`; always unsupported in the shim.
pub fn from_str<T>(_s: &str) -> Result<T, Error> {
    Err(Error::unsupported("from_str"))
}
