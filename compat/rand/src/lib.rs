//! Vendored offline stand-in for the `rand` crate (0.8 API surface).
//!
//! The hermetic build cannot resolve crates-io, so this shim provides
//! the slice of `rand` the workspace actually uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen` for the primitive types
//! sampled by the simulator and the Monte Carlo engine. The generator
//! is xoshiro256++ seeded through SplitMix64 — high-quality, fast, and
//! deterministic across platforms, which is all the callers need
//! (they fix seeds for reproducibility; none require the exact stream
//! of upstream `StdRng`, which is version-unstable anyway).
#![forbid(unsafe_code)]

/// Core trait for generators: a source of uniform 64-bit words.
pub trait RngCore {
    /// Return the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Return the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, expanding it to the full
    /// internal state via SplitMix64 (the same scheme upstream uses).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::gen`], mirroring the `Standard`
/// distribution of upstream `rand`.
pub trait SampleUniformly: Sized {
    /// Draw one value uniformly from the type's natural range
    /// (`[0, 1)` for floats, full range for integers, fair coin for
    /// `bool`).
    fn sample_uniformly<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleUniformly for f64 {
    fn sample_uniformly<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniformly for f32 {
    fn sample_uniformly<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleUniformly for u64 {
    fn sample_uniformly<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleUniformly for u32 {
    fn sample_uniformly<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleUniformly for usize {
    fn sample_uniformly<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl SampleUniformly for bool {
    fn sample_uniformly<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its natural uniform range.
    fn gen<T: SampleUniformly>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_uniformly(self)
    }

    /// Sample `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Sample uniformly from `[low, high)`. Panics if the range is empty.
    fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range: empty range");
        let span = (range.end - range.start) as u64;
        range.start + (self.next_u64() % span) as usize
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro's all-zero state is absorbing; SplitMix64 cannot
            // produce it from any seed, but keep the guard explicit.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_are_in_range_and_well_spread() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }
}
