//! Vendored offline stand-in for the `proptest` crate.
//!
//! The hermetic build cannot resolve crates-io, so this shim
//! re-implements the slice of proptest the workspace's property tests
//! use: the `Strategy` trait with `prop_map` / `prop_flat_map` /
//! `prop_recursive` / `boxed`, range and tuple and `any::<T>()`
//! strategies, `collection::vec`, a small regex-subset string strategy,
//! `Just`, `prop_oneof!`, and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the deterministic
//!   case number; re-running reproduces it exactly (the RNG is seeded
//!   from the test's module path and case index).
//! * **`prop_assume!` skips** the current case rather than resampling.
//! * Default case count is 64 (not 256) to keep the offline test suite
//!   quick; `ProptestConfig::with_cases` is honoured.
#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic RNG + configuration for the shim harness.

    /// Harness configuration; only `cases` is meaningful to the shim.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// xoshiro256++ seeded from (test path, case index) — every case is
    /// reproducible without a persistence file.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn fnv1a(text: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in text.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    impl TestRng {
        /// RNG for one case of one property test.
        pub fn for_case(test_path: &str, case: u32) -> Self {
            let mut sm = fnv1a(test_path) ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            TestRng { s }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, n)`; panics when `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "TestRng::below(0)");
            self.next_u64() % n
        }

        /// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and its combinators.

    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for producing random values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a
    /// strategy is just a deterministic sampler over a seeded RNG.
    pub trait Strategy {
        /// The type of values this strategy generates.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                source: self,
                map: f,
            }
        }

        /// Generate a value, then generate from the strategy it selects.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap {
                source: self,
                map: f,
            }
        }

        /// Recursive strategies: `self` generates leaves, `recurse`
        /// wraps an inner strategy into one more level. `depth` bounds
        /// the nesting; the size/branch hints of the real API are
        /// accepted and ignored.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(strat).boxed();
                strat = Union::weighted(vec![(1, leaf.clone()), (2, deeper)]).boxed();
            }
            strat
        }

        /// Type-erase the strategy behind a cheaply clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let inner = self;
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| inner.sample(rng)))
        }
    }

    /// Type-erased, clonable strategy handle.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always yields a clone of one value (`proptest::strategy::Just`).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        source: S,
        map: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.map)(self.source.sample(rng)).sample(rng)
        }
    }

    /// Weighted choice among boxed strategies (backs `prop_oneof!` and
    /// `prop_recursive`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Uniform union over the given arms.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            Union::weighted(arms.into_iter().map(|a| (1, a)).collect())
        }

        /// Union with per-arm weights.
        pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "Union of zero strategies");
            let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "Union with all-zero weights");
            Union { arms, total }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
                total: self.total,
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, arm) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return arm.sample(rng);
                }
                pick -= w;
            }
            unreachable!("weights summed incorrectly")
        }
    }

    /// Types with a natural "whole domain" strategy, for [`any`].
    pub trait Arbitrary: Sized {
        /// Sample uniformly from the type's entire domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),+) => {
            $(impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            })+
        };
    }
    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy over a type's whole domain (`proptest::prelude::any`).
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Build the [`Any`] strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Integer / float range sampling used by the `Range` strategies.
    pub trait SampleRange: Copy + PartialOrd {
        /// Uniform draw from `[lo, hi)`.
        fn sample_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
        /// Uniform draw from `[lo, hi]`.
        fn sample_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
    }

    macro_rules! sample_range_uint {
        ($($t:ty),+) => {
            $(impl SampleRange for $t {
                fn sample_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                    assert!(lo < hi, "empty range strategy");
                    lo + (rng.below((hi - lo) as u64)) as $t
                }
                fn sample_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                    assert!(lo <= hi, "empty inclusive range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        rng.next_u64() as $t
                    } else {
                        lo + (rng.below(span + 1)) as $t
                    }
                }
            })+
        };
    }
    sample_range_uint!(u8, u16, u32, u64, usize);

    macro_rules! sample_range_float {
        ($($t:ty),+) => {
            $(impl SampleRange for $t {
                fn sample_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                    assert!(lo < hi, "empty range strategy");
                    let v = lo + (rng.unit_f64() as $t) * (hi - lo);
                    if v >= hi { lo } else { v }
                }
                fn sample_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                    assert!(lo <= hi, "empty inclusive range strategy");
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            })+
        };
    }
    sample_range_float!(f32, f64);

    impl<T: SampleRange> Strategy for std::ops::Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::sample_half_open(self.start, self.end, rng)
        }
    }

    impl<T: SampleRange> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::sample_inclusive(*self.start(), *self.end(), rng)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
    tuple_strategy!(A, B, C, D, E, F, G, H, I);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

    // ---- regex-subset string strategies -------------------------------

    /// Character class: inclusive codepoint ranges, first range favoured
    /// so `\PC` stays mostly ASCII.
    struct CharClass {
        ranges: Vec<(u32, u32)>,
        favour_first: bool,
    }

    impl CharClass {
        fn sample(&self, rng: &mut TestRng) -> char {
            let ix = if self.favour_first && self.ranges.len() > 1 {
                // 85% from the first (ASCII) range.
                if rng.below(100) < 85 {
                    0
                } else {
                    1 + rng.below(self.ranges.len() as u64 - 1) as usize
                }
            } else {
                rng.below(self.ranges.len() as u64) as usize
            };
            let (lo, hi) = self.ranges[ix];
            for _ in 0..16 {
                let cp = lo + rng.below(u64::from(hi - lo + 1)) as u32;
                if let Some(c) = char::from_u32(cp) {
                    return c;
                }
            }
            ' '
        }
    }

    fn parse_char_class(pat: &str) -> Option<(CharClass, &str)> {
        if let Some(rest) = pat.strip_prefix("\\PC") {
            // "Any printable character": ASCII printable plus a sprinkle
            // of wider Unicode to exercise multi-byte handling.
            return Some((
                CharClass {
                    ranges: vec![
                        (0x20, 0x7E),
                        (0xA1, 0xFF),
                        (0x0391, 0x03C9),
                        (0x4E00, 0x4EFF),
                        (0x1F600, 0x1F64F),
                    ],
                    favour_first: true,
                },
                rest,
            ));
        }
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let (body, rest) = (&rest[..close], &rest[close + 1..]);
        let chars: Vec<char> = body.chars().collect();
        let mut ranges = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                ranges.push((chars[i] as u32, chars[i + 2] as u32));
                i += 3;
            } else {
                ranges.push((chars[i] as u32, chars[i] as u32));
                i += 1;
            }
        }
        Some((
            CharClass {
                ranges,
                favour_first: false,
            },
            rest,
        ))
    }

    fn parse_repetition(pat: &str) -> Option<(usize, usize, &str)> {
        let rest = pat.strip_prefix('{')?;
        let close = rest.find('}')?;
        let (body, rest) = (&rest[..close], &rest[close + 1..]);
        let (lo, hi) = match body.split_once(',') {
            Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
            None => {
                let n = body.trim().parse().ok()?;
                (n, n)
            }
        };
        Some((lo, hi, rest))
    }

    /// String literals are strategies over the regex subset
    /// `\PC{m,n}` / `[class]{m,n}` (a trailing `{m,n}` optional);
    /// anything else is unsupported and panics with a clear message.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let (class, rest) = parse_char_class(self)
                .unwrap_or_else(|| panic!("proptest shim: unsupported string pattern {self:?}"));
            let (lo, hi, rest) = if rest.is_empty() {
                (1, 1, rest)
            } else {
                parse_repetition(rest)
                    .unwrap_or_else(|| panic!("proptest shim: unsupported string pattern {self:?}"))
            };
            assert!(
                rest.is_empty() && lo <= hi,
                "proptest shim: unsupported string pattern {self:?}"
            );
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..n).map(|_| class.sample(rng)).collect()
        }
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive length range for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy over `element` with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Property-test harness macro; see the crate docs for shim semantics.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            @cfg($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

/// Internal recursion for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                // Immediately-invoked closure so `prop_assume!` can skip
                // the case with `return`.
                #[allow(clippy::redundant_closure_call)]
                (|| $body)();
            }
        }
        $crate::__proptest_cases! { @cfg($cfg) $($rest)* }
    };
}

/// Assert within a property; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!(
                "prop_assert failed: {}: {}",
                stringify!($cond),
                format_args!($($fmt)+)
            );
        }
    };
}

/// Assert equality within a property; panics on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    panic!("prop_assert_eq failed: `{:?}` != `{:?}`", __l, __r);
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    panic!(
                        "prop_assert_eq failed: `{:?}` != `{:?}`: {}",
                        __l,
                        __r,
                        format_args!($($fmt)+)
                    );
                }
            }
        }
    };
}

/// Skip the current case when the precondition does not hold.
///
/// Real proptest resamples; the shim just moves to the next case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            let _ = format_args!($($fmt)+);
            return;
        }
    };
}

/// Choose among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
