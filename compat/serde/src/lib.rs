//! Vendored offline stand-in for the `serde` crate.
//!
//! This workspace builds hermetically (no crates-io registry), so the
//! real `serde` cannot be resolved. Model types only *derive*
//! `Serialize`/`Deserialize` — nothing in the workspace implements a
//! data format against the real serde data model — so marker traits are
//! sufficient for every `use serde::...` site to compile unchanged.
//! Actual JSON round-trips are reported as unsupported by the companion
//! `serde_json` shim, and the affected tests skip themselves.
#![forbid(unsafe_code)]

/// Marker trait mirroring `serde::Serialize`.
///
/// Implemented by the no-op derive; carries no methods because no code
/// in this workspace drives a serialiser through the trait.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
///
/// The real trait is `Deserialize<'de>`; the lifetime is dropped here
/// because no bound in the workspace names it.
pub trait Deserialize {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {
        $(impl Serialize for $t {}
          impl Deserialize for $t {})*
    };
}

impl_markers!(
    (),
    bool,
    char,
    f32,
    f64,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Deserialize> Deserialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Deserialize> Deserialize for Option<T> {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<K: Deserialize, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {}
impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {}
impl<T: Deserialize> Deserialize for std::collections::BTreeSet<T> {}
