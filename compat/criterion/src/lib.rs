//! Vendored offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the API slice used by `fmperf-bench` — `criterion_group!`,
//! `criterion_main!`, `Criterion::bench_function`, benchmark groups
//! with `sample_size`, `BenchmarkId`, and `Bencher::iter` — backed by a
//! simple wall-clock timer: per benchmark it warms up once, then runs
//! timed iterations until a small time budget or iteration cap is hit
//! and reports mean/min time per iteration. No statistics, plotting or
//! baselines; enough to compare relative costs offline.
#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque blackbox preventing the optimiser from deleting a benchmark
/// body. Mirrors `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id rendered as `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    iters: u64,
    total: Duration,
    best: Duration,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            iters: 0,
            total: Duration::ZERO,
            best: Duration::MAX,
        }
    }

    /// Time repeated runs of `f` until the harness budget is consumed.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up run.
        black_box(f());
        let budget = Duration::from_millis(300);
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            self.total += dt;
            self.best = self.best.min(dt);
            self.iters += 1;
            if self.iters >= 10 && start.elapsed() >= budget {
                break;
            }
            if self.iters >= 1000 {
                break;
            }
        }
    }

    fn report(&self, label: &str) {
        if self.iters == 0 {
            println!("{label:<40} (no iterations)");
            return;
        }
        let mean = self.total / self.iters as u32;
        println!(
            "{label:<40} mean {mean:>12.3?}   min {best:>12.3?}   ({iters} iters)",
            best = self.best,
            iters = self.iters,
        );
    }
}

/// A named set of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&label);
        self
    }

    /// Finish the group (a no-op beyond matching the real API).
    pub fn finish(self) {}
}

/// The harness entry object, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&id.label);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// Mirrors `criterion::criterion_group!`: bundles benchmark functions
/// into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: emits `main` for the bench
/// binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
