//! Robustness properties of the parser: arbitrary input must never
//! panic, and structured mutations of a valid model must either parse or
//! fail with a line-numbered error.

use fmperf_text::parse;
use proptest::prelude::*;

const VALID: &str = "processor pc cores inf\nprocessor p1 fail 0.1\n\
    users u on pc population 5 think 1.0\ntask s on p1 fail 0.1\n\
    entry eu of u\nentry es of s demand 0.2\ncall eu -> es\nreward u 1.0\n";

proptest! {
    /// Arbitrary bytes (as a string) never panic the parser.
    #[test]
    fn arbitrary_text_never_panics(s in "\\PC{0,400}") {
        let _ = parse(&s);
    }

    /// Arbitrary *tokens* assembled into statement-shaped lines never
    /// panic, and errors carry a plausible line number.
    #[test]
    fn token_soup_never_panics(
        words in proptest::collection::vec("[a-z0-9.>#-]{1,8}", 0..60),
        breaks in proptest::collection::vec(any::<bool>(), 0..60),
    ) {
        let mut src = String::new();
        for (w, b) in words.iter().zip(breaks.iter().chain(std::iter::repeat(&false))) {
            src.push_str(w);
            src.push(if *b { '\n' } else { ' ' });
        }
        match parse(&src) {
            Ok(_) => {}
            Err(e) => {
                let lines = src.lines().count();
                prop_assert!(e.line <= lines + 1, "line {} of {}", e.line, lines);
            }
        }
    }

    /// Deleting any single line from a valid model either still parses or
    /// fails cleanly (no panic) — simulates hand-editing mistakes.
    #[test]
    fn line_deletion_is_handled(ix in 0usize..8) {
        let lines: Vec<&str> = VALID.lines().collect();
        let mutated: String = lines
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != ix)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        let _ = parse(&mutated);
    }

    /// Duplicating any single line either parses (idempotent statements
    /// do not exist here, so in practice it errors) or reports the right
    /// duplicate.
    #[test]
    fn line_duplication_is_handled(ix in 0usize..8) {
        let lines: Vec<&str> = VALID.lines().collect();
        let mut mutated = String::new();
        for (i, l) in lines.iter().enumerate() {
            mutated.push_str(l);
            mutated.push('\n');
            if i == ix {
                mutated.push_str(l);
                mutated.push('\n');
            }
        }
        match parse(&mutated) {
            Ok(_) => {}
            Err(e) => prop_assert!(!e.message.is_empty()),
        }
    }
}

#[test]
fn valid_base_model_parses() {
    parse(VALID).unwrap();
}
