//! Canonical text serialisation of combined models.
//!
//! `parse(write_model(m)) == m` structurally, and `write_model` is a
//! fixed point: writing a re-parsed model yields byte-identical text.

use fmperf_ftlqn::{FtTaskId, FtlqnModel, RequestTarget};
use fmperf_lqn::Multiplicity;
use fmperf_mama::model::{ConnectorKind, MamaComponentKind, MgmtRole};
use fmperf_mama::MamaModel;
use std::fmt::Write as _;

fn mult(m: Multiplicity) -> String {
    match m {
        Multiplicity::Finite(n) => n.to_string(),
        Multiplicity::Infinite => "inf".to_string(),
    }
}

fn num(x: f64) -> String {
    // Shortest representation that round-trips through f64 parsing.
    let s = format!("{x}");
    debug_assert_eq!(s.parse::<f64>().ok(), Some(x));
    s
}

/// Serialises an application model, its management architecture and
/// reward weights into the textual format accepted by
/// [`parse`](crate::parse).
pub fn write_model(app: &FtlqnModel, mama: &MamaModel, rewards: &[(FtTaskId, f64)]) -> String {
    let mut out = String::new();
    out.push_str("# fmperf model\n");

    for p in app.processor_ids() {
        let _ = writeln!(
            out,
            "processor {} fail {} cores {}",
            app.processor_name(p),
            num(app.fail_prob(fmperf_ftlqn::Component::Processor(p))),
            mult(app.processor_multiplicity(p)),
        );
    }
    for l in app.link_ids() {
        let _ = writeln!(
            out,
            "link {} fail {}",
            app.component_name(fmperf_ftlqn::Component::Link(l)),
            num(app.fail_prob(fmperf_ftlqn::Component::Link(l))),
        );
    }
    for t in app.task_ids() {
        let proc = app.processor_name(app.processor_of(t));
        match app.reference_params(t) {
            Some((population, think)) => {
                let _ = writeln!(
                    out,
                    "users {} on {} population {} think {} fail {}",
                    app.task_name(t),
                    proc,
                    population,
                    num(think),
                    num(app.fail_prob(fmperf_ftlqn::Component::Task(t))),
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "task {} on {} fail {} threads {}",
                    app.task_name(t),
                    proc,
                    num(app.fail_prob(fmperf_ftlqn::Component::Task(t))),
                    mult(app.task_multiplicity(t)),
                );
            }
        }
    }
    for e in app.entry_ids() {
        let mut line = format!(
            "entry {} of {} demand {}",
            app.entry_name(e),
            app.task_name(app.task_of(e)),
            num(app.entry_demand(e)),
        );
        if app.second_phase_demand(e) > 0.0 {
            let _ = write!(line, " demand2 {}", num(app.second_phase_demand(e)));
        }
        let _ = writeln!(out, "{line}");
    }
    for s in app.service_ids() {
        let alts: Vec<&str> = app
            .alternatives(s)
            .map(|(e, _)| app.entry_name(e))
            .collect();
        let _ = writeln!(
            out,
            "service {} = {}",
            app.service_name(s),
            alts.join(" > ")
        );
    }
    for e in app.entry_ids() {
        for (target, mean, link, phase) in app.requests_of(e) {
            let tname = match target {
                RequestTarget::Entry(te) => app.entry_name(te),
                RequestTarget::Service(s) => app.service_name(s),
            };
            let mut line = format!("call {} -> {} x {}", app.entry_name(e), tname, num(mean));
            if let Some(l) = link {
                let _ = write!(
                    line,
                    " via {}",
                    app.component_name(fmperf_ftlqn::Component::Link(l))
                );
            }
            if phase == fmperf_lqn::Phase::Two {
                let _ = write!(line, " phase 2");
            }
            let _ = writeln!(out, "{line}");
        }
    }

    // Management side.  App-bound components are implicit (the parser
    // auto-registers them on first use) but must be *ordered* before
    // their first use; emitting mgmt processors and tasks first, then
    // connectors, reproduces any model because connectors name app
    // components directly.
    for id in mama.component_ids() {
        let comp = mama.component(id);
        match comp.kind {
            MamaComponentKind::MgmtProcessor { fail_prob } => {
                let _ = writeln!(out, "mgmtproc {} fail {}", comp.name, num(fail_prob));
            }
            MamaComponentKind::MgmtTask {
                role,
                processor,
                fail_prob,
            } => {
                let kw = match role {
                    MgmtRole::Agent => "agent",
                    MgmtRole::Manager => "manager",
                };
                let _ = writeln!(
                    out,
                    "{kw} {} on {} fail {}",
                    comp.name,
                    mama.component(processor).name,
                    num(fail_prob),
                );
            }
            // Implicit: recreated on demand by connector statements.
            MamaComponentKind::AppTask { .. } | MamaComponentKind::AppProcessor { .. } => {}
        }
    }
    for cid in mama.connector_ids() {
        let conn = mama.connector(cid);
        let src = &mama.component(conn.source).name;
        let dst = &mama.component(conn.target).name;
        match conn.kind {
            ConnectorKind::AliveWatch => {
                let _ = writeln!(out, "watch alive {src} -> {dst} name {}", conn.name);
            }
            ConnectorKind::StatusWatch => {
                let _ = writeln!(out, "watch status {src} -> {dst} name {}", conn.name);
            }
            ConnectorKind::Notify => {
                let _ = writeln!(out, "notify {src} -> {dst} name {}", conn.name);
            }
        }
    }
    for &(t, w) in rewards {
        let _ = writeln!(out, "reward {} {}", app.task_name(t), num(w));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use fmperf_ftlqn::examples::das_woodside_system;
    use fmperf_mama::arch;

    #[test]
    fn paper_system_roundtrips() {
        let sys = das_woodside_system();
        let mama = arch::centralized(&sys, 0.1);
        let rewards = vec![(sys.user_a, 1.0), (sys.user_b, 1.0)];
        let text = write_model(&sys.model, &mama, &rewards);
        let parsed = parse(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        assert_eq!(parsed.app.task_count(), sys.model.task_count());
        assert_eq!(parsed.app.entry_count(), sys.model.entry_count());
        assert_eq!(parsed.app.service_count(), sys.model.service_count());
        assert_eq!(parsed.mama.connector_count(), mama.connector_count());
        assert_eq!(parsed.rewards.len(), 2);
        // Fixed point: writing the reparsed model is byte-identical.
        let text2 = write_model(&parsed.app, &parsed.mama, &parsed.rewards);
        assert_eq!(text, text2);
    }

    #[test]
    fn all_architectures_roundtrip() {
        let sys = das_woodside_system();
        for kind in arch::ArchKind::ALL {
            let mama = arch::build(kind, &sys, 0.1);
            let text = write_model(&sys.model, &mama, &[]);
            let parsed = parse(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", kind.name()));
            assert_eq!(
                parsed.mama.connector_count(),
                mama.connector_count(),
                "{}",
                kind.name()
            );
            let text2 = write_model(&parsed.app, &parsed.mama, &parsed.rewards);
            assert_eq!(text, text2, "{} not a fixed point", kind.name());
        }
    }

    #[test]
    fn analysis_on_reparsed_model_matches_original() {
        use fmperf_core::Analysis;
        use fmperf_mama::{ComponentSpace, KnowTable};

        let sys = das_woodside_system();
        let mama = arch::centralized(&sys, 0.1);
        let text = write_model(&sys.model, &mama, &[]);
        let parsed = parse(&text).unwrap();

        let run = |app: &fmperf_ftlqn::FtlqnModel, mama: &fmperf_mama::MamaModel| {
            let graph = fmperf_ftlqn::FaultGraph::build(app).unwrap();
            let space = ComponentSpace::build(app, mama);
            let table = KnowTable::build(&graph, mama, &space);
            Analysis::new(&graph, &space)
                .with_knowledge(&table)
                .enumerate()
                .failed_probability()
        };
        let orig = run(&sys.model, &mama);
        let reparsed = run(&parsed.app, &parsed.mama);
        assert!((orig - reparsed).abs() < 1e-12);
    }
}
