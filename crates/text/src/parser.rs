//! The line-oriented parser.  Definitions must precede uses.

use fmperf_ftlqn::{
    FtEntryId, FtProcId, FtTaskId, FtlqnError, FtlqnModel, LinkId, ModelRef, RequestTarget,
    ServiceId,
};
use fmperf_lqn::Multiplicity;
use fmperf_mama::model::ConnectorKind;
use fmperf_mama::{ConnId, MamaCompId, MamaError, MamaModel, MamaRef};
use std::collections::BTreeMap;
use std::fmt;

/// Maps every declared element back to the 1-based source line of its
/// declaration, so validation errors and lint diagnostics can point at
/// the offending statement.
#[derive(Debug, Clone, Default)]
pub struct SourceMap {
    tasks: BTreeMap<FtTaskId, usize>,
    entries: BTreeMap<FtEntryId, usize>,
    services: BTreeMap<ServiceId, usize>,
    procs: BTreeMap<FtProcId, usize>,
    links: BTreeMap<LinkId, usize>,
    components: BTreeMap<MamaCompId, usize>,
    connectors: BTreeMap<ConnId, usize>,
    requests: BTreeMap<(FtEntryId, usize), usize>,
    rewards: Vec<usize>,
}

impl SourceMap {
    /// Line of a task declaration (`task`/`users`).
    pub fn task_line(&self, id: FtTaskId) -> Option<usize> {
        self.tasks.get(&id).copied()
    }
    /// Line of an entry declaration.
    pub fn entry_line(&self, id: FtEntryId) -> Option<usize> {
        self.entries.get(&id).copied()
    }
    /// Line of a service declaration.
    pub fn service_line(&self, id: ServiceId) -> Option<usize> {
        self.services.get(&id).copied()
    }
    /// Line of a processor declaration.
    pub fn processor_line(&self, id: FtProcId) -> Option<usize> {
        self.procs.get(&id).copied()
    }
    /// Line of a link declaration.
    pub fn link_line(&self, id: LinkId) -> Option<usize> {
        self.links.get(&id).copied()
    }
    /// Line of a MAMA component declaration (or, for auto-registered
    /// application components, of the statement that first used them).
    pub fn component_line(&self, id: MamaCompId) -> Option<usize> {
        self.components.get(&id).copied()
    }
    /// Line of a `watch`/`notify` statement.
    pub fn connector_line(&self, id: ConnId) -> Option<usize> {
        self.connectors.get(&id).copied()
    }
    /// Line of the `call` statement that added the `ix`-th request of an
    /// entry.
    pub fn request_line(&self, entry: FtEntryId, ix: usize) -> Option<usize> {
        self.requests.get(&(entry, ix)).copied()
    }
    /// Line of the `i`-th `reward` statement.
    pub fn reward_line(&self, ix: usize) -> Option<usize> {
        self.rewards.get(ix).copied()
    }
    /// Line for an application-model locus, if it has one.
    pub fn model_line(&self, at: ModelRef) -> Option<usize> {
        match at {
            ModelRef::Task(t) => self.task_line(t),
            ModelRef::Entry(e) => self.entry_line(e),
            ModelRef::Service(s) => self.service_line(s),
            ModelRef::Processor(p) => self.processor_line(p),
            ModelRef::Link(l) => self.link_line(l),
            ModelRef::Model => None,
        }
    }
    /// Line for a management-model locus, if it has one.
    pub fn mama_line(&self, at: MamaRef) -> Option<usize> {
        match at {
            MamaRef::Component(c) => self.component_line(c),
            MamaRef::Connector(c) => self.connector_line(c),
        }
    }
}

/// A parsed combined model.
#[derive(Debug, Clone)]
pub struct ParsedModel {
    /// The application model.
    pub app: FtlqnModel,
    /// The management architecture (possibly empty).
    pub mama: MamaModel,
    /// Reward weights declared with `reward` statements.
    pub rewards: Vec<(FtTaskId, f64)>,
    /// Source lines of every declaration.
    pub spans: SourceMap,
    pub(crate) tasks: BTreeMap<String, FtTaskId>,
    pub(crate) entries: BTreeMap<String, FtEntryId>,
    pub(crate) services: BTreeMap<String, ServiceId>,
    pub(crate) procs: BTreeMap<String, FtProcId>,
    pub(crate) links: BTreeMap<String, LinkId>,
}

impl ParsedModel {
    /// Looks up a task by its name in the source text.
    pub fn task(&self, name: &str) -> Option<FtTaskId> {
        self.tasks.get(name).copied()
    }
    /// Looks up an entry by name.
    pub fn entry(&self, name: &str) -> Option<FtEntryId> {
        self.entries.get(name).copied()
    }
    /// Looks up a service by name.
    pub fn service(&self, name: &str) -> Option<ServiceId> {
        self.services.get(name).copied()
    }
    /// Looks up a processor by name.
    pub fn processor(&self, name: &str) -> Option<FtProcId> {
        self.procs.get(name).copied()
    }
}

/// A parse failure, with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number; `0` when the failure has no single source
    /// line (e.g. a whole-model validation error).
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

struct Ctx {
    model: ParsedModel,
    /// MAMA components by name (agents, managers, mgmt processors and
    /// auto-registered app components).
    mama_comps: BTreeMap<String, MamaCompId>,
    conn_counter: usize,
}

macro_rules! bail {
    ($line:expr, $($arg:tt)*) => {
        return Err(ParseError { line: $line, message: format!($($arg)*) })
    };
}

/// A syntactically valid model together with any semantic validation
/// errors, as produced by [`parse_lenient`].
#[derive(Debug, Clone)]
pub struct LenientParse {
    /// The parsed model (well-formed references, possibly invalid
    /// semantics).
    pub model: ParsedModel,
    /// All application-model validation errors, in check order.
    pub app_errors: Vec<FtlqnError>,
    /// All management-model validation errors, in check order.
    pub mama_errors: Vec<MamaError>,
}

/// Parses a combined model from source text.
///
/// # Errors
///
/// Returns the first syntax or reference error with its line number; the
/// resulting models are additionally validated (`FtlqnModel::validate`,
/// `MamaModel::validate`) before being returned, and the first validation
/// error is reported at the offending declaration's line.
pub fn parse(src: &str) -> Result<ParsedModel, ParseError> {
    let lenient = parse_lenient(src)?;
    if let Some(e) = lenient.app_errors.first() {
        let line = lenient.model.spans.model_line(e.locus()).unwrap_or(0);
        return Err(ParseError {
            line,
            message: format!("application model invalid: {e}"),
        });
    }
    if let Some(e) = lenient.mama_errors.first() {
        let line = lenient.model.spans.mama_line(e.locus()).unwrap_or(0);
        return Err(ParseError {
            line,
            message: format!("management model invalid: {e}"),
        });
    }
    Ok(lenient.model)
}

/// Parses a combined model but *collects* semantic validation errors
/// instead of failing on the first one.
///
/// Intended for tooling (the `fmperf-lint` linter) that wants to report
/// every problem at once.  Syntax and reference errors still fail hard:
/// without resolvable names there is no model to diagnose.
///
/// # Errors
///
/// Returns the first syntax or unresolved-reference error.
pub fn parse_lenient(src: &str) -> Result<LenientParse, ParseError> {
    let mut ctx = Ctx {
        model: ParsedModel {
            app: FtlqnModel::new(),
            mama: MamaModel::new(),
            rewards: Vec::new(),
            spans: SourceMap::default(),
            tasks: BTreeMap::new(),
            entries: BTreeMap::new(),
            services: BTreeMap::new(),
            procs: BTreeMap::new(),
            links: BTreeMap::new(),
        },
        mama_comps: BTreeMap::new(),
        conn_counter: 0,
    };
    for (ix, raw) in src.lines().enumerate() {
        let line_no = ix + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        statement(&mut ctx, line_no, &tokens)?;
    }
    let app_errors = ctx.model.app.validate_all();
    let mama_errors = ctx.model.mama.validate_all(&ctx.model.app);
    Ok(LenientParse {
        model: ctx.model,
        app_errors,
        mama_errors,
    })
}

/// Resource bounds for parsing untrusted input (see [`parse_bounded`]).
///
/// The defaults are sized for network request bodies: a model source
/// over a megabyte or 65 536 lines is rejected outright, and syntax
/// errors are collected up to a budget of 32 before the parser gives
/// up — enough to report every mistake in a hand-edited model without
/// letting a hostile input make the error list itself unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum accepted source length in bytes.
    pub max_bytes: usize,
    /// Maximum accepted number of source lines.
    pub max_lines: usize,
    /// Maximum syntax errors collected before parsing stops.
    pub max_errors: usize,
}

impl Default for ParseLimits {
    fn default() -> ParseLimits {
        ParseLimits {
            max_bytes: 1 << 20,
            max_lines: 1 << 16,
            max_errors: 32,
        }
    }
}

/// [`parse_lenient`] hardened for untrusted input: enforces
/// [`ParseLimits`] and *collects* syntax errors (skipping the offending
/// line and continuing) instead of failing on the first one.
///
/// Statements after a bad line may report cascading
/// unresolved-reference errors (a failed `processor` line makes every
/// task on it unknown); the error budget bounds the fallout.  Because a
/// line with a syntax error contributes nothing to the model, a
/// non-empty error list means the model is incomplete and the `Ok`
/// variant is withheld.
///
/// # Errors
///
/// Returns every collected syntax/reference error (at most
/// `max_errors + 1`: the budget plus a final note that it was
/// exhausted), or a single size-limit error for oversized input.
pub fn parse_bounded(src: &str, limits: &ParseLimits) -> Result<LenientParse, Vec<ParseError>> {
    if src.len() > limits.max_bytes {
        return Err(vec![ParseError {
            line: 0,
            message: format!(
                "input too large: {} bytes (limit {})",
                src.len(),
                limits.max_bytes
            ),
        }]);
    }
    let mut ctx = Ctx {
        model: ParsedModel {
            app: FtlqnModel::new(),
            mama: MamaModel::new(),
            rewards: Vec::new(),
            spans: SourceMap::default(),
            tasks: BTreeMap::new(),
            entries: BTreeMap::new(),
            services: BTreeMap::new(),
            procs: BTreeMap::new(),
            links: BTreeMap::new(),
        },
        mama_comps: BTreeMap::new(),
        conn_counter: 0,
    };
    let mut errors: Vec<ParseError> = Vec::new();
    for (ix, raw) in src.lines().enumerate() {
        let line_no = ix + 1;
        if line_no > limits.max_lines {
            errors.push(ParseError {
                line: line_no,
                message: format!("too many lines (limit {})", limits.max_lines),
            });
            break;
        }
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if let Err(e) = statement(&mut ctx, line_no, &tokens) {
            errors.push(e);
            if errors.len() >= limits.max_errors {
                errors.push(ParseError {
                    line: line_no,
                    message: format!(
                        "error budget exhausted after {} error(s); giving up",
                        limits.max_errors
                    ),
                });
                break;
            }
        }
    }
    if !errors.is_empty() {
        return Err(errors);
    }
    let app_errors = ctx.model.app.validate_all();
    let mama_errors = ctx.model.mama.validate_all(&ctx.model.app);
    Ok(LenientParse {
        model: ctx.model,
        app_errors,
        mama_errors,
    })
}

fn statement(ctx: &mut Ctx, line: usize, t: &[&str]) -> Result<(), ParseError> {
    match t[0] {
        "processor" => processor(ctx, line, t),
        "users" => users(ctx, line, t),
        "task" => task(ctx, line, t),
        "entry" => entry(ctx, line, t),
        "link" => link(ctx, line, t),
        "service" => service(ctx, line, t),
        "call" => call(ctx, line, t),
        "mgmtproc" => mgmtproc(ctx, line, t),
        "agent" | "manager" => mgmt_task(ctx, line, t),
        "watch" => watch(ctx, line, t),
        "notify" => notify(ctx, line, t),
        "reward" => reward(ctx, line, t),
        other => bail!(line, "unknown statement `{other}`"),
    }
}

/// Parses trailing `key value` option pairs.
fn options(
    line: usize,
    t: &[&str],
    allowed: &[&str],
) -> Result<BTreeMap<String, String>, ParseError> {
    if !t.len().is_multiple_of(2) {
        bail!(
            line,
            "options must come in `key value` pairs, got `{}`",
            t.join(" ")
        );
    }
    let mut out = BTreeMap::new();
    for pair in t.chunks(2) {
        if !allowed.contains(&pair[0]) {
            bail!(
                line,
                "unknown option `{}` (allowed: {})",
                pair[0],
                allowed.join(", ")
            );
        }
        if out
            .insert(pair[0].to_string(), pair[1].to_string())
            .is_some()
        {
            bail!(line, "duplicate option `{}`", pair[0]);
        }
    }
    Ok(out)
}

fn f64_opt(
    line: usize,
    opts: &BTreeMap<String, String>,
    key: &str,
    default: f64,
) -> Result<f64, ParseError> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v.parse::<f64>().map_err(|_| ParseError {
            line,
            message: format!("bad number for `{key}`: `{v}`"),
        }),
    }
}

fn u32_opt(
    line: usize,
    opts: &BTreeMap<String, String>,
    key: &str,
    default: u32,
) -> Result<u32, ParseError> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v.parse::<u32>().map_err(|_| ParseError {
            line,
            message: format!("bad integer for `{key}`: `{v}`"),
        }),
    }
}

fn mult_opt(
    line: usize,
    opts: &BTreeMap<String, String>,
    key: &str,
    default: Multiplicity,
) -> Result<Multiplicity, ParseError> {
    match opts.get(key).map(|s| s.as_str()) {
        None => Ok(default),
        Some("inf") => Ok(Multiplicity::Infinite),
        Some(v) => v
            .parse::<u32>()
            .map(Multiplicity::Finite)
            .map_err(|_| ParseError {
                line,
                message: format!("bad multiplicity for `{key}`: `{v}`"),
            }),
    }
}

fn fresh_name(ctx: &Ctx, line: usize, name: &str) -> Result<(), ParseError> {
    let m = &ctx.model;
    if m.tasks.contains_key(name)
        || m.entries.contains_key(name)
        || m.services.contains_key(name)
        || m.procs.contains_key(name)
        || m.links.contains_key(name)
        || ctx.mama_comps.contains_key(name)
    {
        bail!(line, "name `{name}` already defined");
    }
    Ok(())
}

fn processor(ctx: &mut Ctx, line: usize, t: &[&str]) -> Result<(), ParseError> {
    let [_, name, rest @ ..] = t else {
        bail!(line, "usage: processor <name> [options]")
    };
    fresh_name(ctx, line, name)?;
    let opts = options(line, rest, &["fail", "cores"])?;
    let fail = f64_opt(line, &opts, "fail", 0.0)?;
    let cores = mult_opt(line, &opts, "cores", Multiplicity::Finite(1))?;
    let id = ctx.model.app.add_processor(*name, fail, cores);
    ctx.model.procs.insert(name.to_string(), id);
    ctx.model.spans.procs.insert(id, line);
    Ok(())
}

fn users(ctx: &mut Ctx, line: usize, t: &[&str]) -> Result<(), ParseError> {
    let [_, name, "on", proc, rest @ ..] = t else {
        bail!(line, "usage: users <name> on <proc> [options]")
    };
    fresh_name(ctx, line, name)?;
    let Some(&p) = ctx.model.procs.get(*proc) else {
        bail!(line, "unknown processor `{proc}`")
    };
    let opts = options(line, rest, &["population", "think", "fail"])?;
    let population = u32_opt(line, &opts, "population", 1)?;
    let think = f64_opt(line, &opts, "think", 0.0)?;
    let fail = f64_opt(line, &opts, "fail", 0.0)?;
    let id = ctx
        .model
        .app
        .add_reference_task(*name, p, fail, population, think);
    ctx.model.tasks.insert(name.to_string(), id);
    ctx.model.spans.tasks.insert(id, line);
    Ok(())
}

fn task(ctx: &mut Ctx, line: usize, t: &[&str]) -> Result<(), ParseError> {
    let [_, name, "on", proc, rest @ ..] = t else {
        bail!(line, "usage: task <name> on <proc> [options]")
    };
    fresh_name(ctx, line, name)?;
    let Some(&p) = ctx.model.procs.get(*proc) else {
        bail!(line, "unknown processor `{proc}`")
    };
    let opts = options(line, rest, &["fail", "threads"])?;
    let fail = f64_opt(line, &opts, "fail", 0.0)?;
    let threads = mult_opt(line, &opts, "threads", Multiplicity::Finite(1))?;
    let id = ctx.model.app.add_task(*name, p, fail, threads);
    ctx.model.tasks.insert(name.to_string(), id);
    ctx.model.spans.tasks.insert(id, line);
    Ok(())
}

fn entry(ctx: &mut Ctx, line: usize, t: &[&str]) -> Result<(), ParseError> {
    let [_, name, "of", task, rest @ ..] = t else {
        bail!(
            line,
            "usage: entry <name> of <task> [demand <d>] [demand2 <d>]"
        )
    };
    fresh_name(ctx, line, name)?;
    let Some(&tk) = ctx.model.tasks.get(*task) else {
        bail!(line, "unknown task `{task}`")
    };
    let opts = options(line, rest, &["demand", "demand2"])?;
    let demand = f64_opt(line, &opts, "demand", 0.0)?;
    let demand2 = f64_opt(line, &opts, "demand2", 0.0)?;
    let id = ctx.model.app.add_entry(*name, tk, demand);
    if demand2 > 0.0 {
        ctx.model.app.set_second_phase_demand(id, demand2);
    }
    ctx.model.entries.insert(name.to_string(), id);
    ctx.model.spans.entries.insert(id, line);
    Ok(())
}

fn link(ctx: &mut Ctx, line: usize, t: &[&str]) -> Result<(), ParseError> {
    let [_, name, rest @ ..] = t else {
        bail!(line, "usage: link <name> [fail <p>]")
    };
    fresh_name(ctx, line, name)?;
    let opts = options(line, rest, &["fail"])?;
    let fail = f64_opt(line, &opts, "fail", 0.0)?;
    let id = ctx.model.app.add_link(*name, fail);
    ctx.model.links.insert(name.to_string(), id);
    ctx.model.spans.links.insert(id, line);
    Ok(())
}

fn service(ctx: &mut Ctx, line: usize, t: &[&str]) -> Result<(), ParseError> {
    let [_, name, "=", alts @ ..] = t else {
        bail!(line, "usage: service <name> = <entry> [> <entry>]...")
    };
    fresh_name(ctx, line, name)?;
    if alts.is_empty() {
        bail!(line, "service `{name}` needs at least one alternative");
    }
    let id = ctx.model.app.add_service(*name);
    for part in alts.split(|&s| s == ">") {
        let [alt] = part else {
            bail!(line, "alternatives must be single entries separated by `>`")
        };
        let Some(&e) = ctx.model.entries.get(*alt) else {
            bail!(line, "unknown entry `{alt}`")
        };
        ctx.model.app.add_alternative(id, e, None);
    }
    ctx.model.services.insert(name.to_string(), id);
    ctx.model.spans.services.insert(id, line);
    Ok(())
}

fn call(ctx: &mut Ctx, line: usize, t: &[&str]) -> Result<(), ParseError> {
    let [_, from, "->", to, rest @ ..] = t else {
        bail!(
            line,
            "usage: call <entry> -> <entry-or-service> [x <mean>] [via <link>]"
        )
    };
    let Some(&fe) = ctx.model.entries.get(*from) else {
        bail!(line, "unknown entry `{from}`")
    };
    let target = if let Some(&te) = ctx.model.entries.get(*to) {
        RequestTarget::Entry(te)
    } else if let Some(&s) = ctx.model.services.get(*to) {
        RequestTarget::Service(s)
    } else {
        bail!(line, "unknown call target `{to}`");
    };
    let opts = options(line, rest, &["x", "via", "phase"])?;
    let mean = f64_opt(line, &opts, "x", 1.0)?;
    let via = match opts.get("via") {
        None => None,
        Some(l) => match ctx.model.links.get(l) {
            Some(&l) => Some(l),
            None => bail!(line, "unknown link `{l}`"),
        },
    };
    let phase = match opts.get("phase").map(String::as_str) {
        None | Some("1") => fmperf_lqn::Phase::One,
        Some("2") => fmperf_lqn::Phase::Two,
        Some(other) => bail!(line, "phase must be 1 or 2, got `{other}`"),
    };
    ctx.model
        .app
        .add_request_in_phase(fe, target, mean, via, phase);
    let ix = ctx.model.app.requests_of(fe).count() - 1;
    ctx.model.spans.requests.insert((fe, ix), line);
    Ok(())
}

fn mgmtproc(ctx: &mut Ctx, line: usize, t: &[&str]) -> Result<(), ParseError> {
    let [_, name, rest @ ..] = t else {
        bail!(line, "usage: mgmtproc <name> [fail <p>]")
    };
    fresh_name(ctx, line, name)?;
    let opts = options(line, rest, &["fail"])?;
    let fail = f64_opt(line, &opts, "fail", 0.0)?;
    let id = ctx.model.mama.add_mgmt_processor(*name, fail);
    ctx.mama_comps.insert(name.to_string(), id);
    ctx.model.spans.components.insert(id, line);
    Ok(())
}

/// Resolves (auto-registering if needed) a name to a MAMA component.
fn mama_comp(ctx: &mut Ctx, line: usize, name: &str) -> Result<MamaCompId, ParseError> {
    if let Some(&c) = ctx.mama_comps.get(name) {
        return Ok(c);
    }
    // App processor?
    if let Some(&p) = ctx.model.procs.get(name) {
        let id = ctx.model.mama.add_app_processor(name, p);
        ctx.mama_comps.insert(name.to_string(), id);
        // Auto-registered: point at the processor's own declaration.
        let decl = ctx.model.spans.procs.get(&p).copied().unwrap_or(line);
        ctx.model.spans.components.insert(id, decl);
        return Ok(id);
    }
    // App task?  Its processor must be registered first.
    if let Some(&t) = ctx.model.tasks.get(name) {
        let p = ctx.model.app.processor_of(t);
        let pname = ctx.model.app.processor_name(p).to_string();
        let pc = mama_comp(ctx, line, &pname)?;
        let id = ctx.model.mama.add_app_task(name, t, pc);
        ctx.mama_comps.insert(name.to_string(), id);
        let decl = ctx.model.spans.tasks.get(&t).copied().unwrap_or(line);
        ctx.model.spans.components.insert(id, decl);
        return Ok(id);
    }
    bail!(line, "unknown component `{name}`")
}

fn mgmt_task(ctx: &mut Ctx, line: usize, t: &[&str]) -> Result<(), ParseError> {
    let [kind, name, "on", proc, rest @ ..] = t else {
        bail!(line, "usage: {} <name> on <proc> [fail <p>]", t[0])
    };
    fresh_name(ctx, line, name)?;
    let opts = options(line, rest, &["fail"])?;
    let fail = f64_opt(line, &opts, "fail", 0.0)?;
    let pc = mama_comp(ctx, line, proc)?;
    let id = if *kind == "agent" {
        ctx.model.mama.add_agent(*name, pc, fail)
    } else {
        ctx.model.mama.add_manager(*name, pc, fail)
    };
    ctx.mama_comps.insert(name.to_string(), id);
    ctx.model.spans.components.insert(id, line);
    Ok(())
}

fn connector_name(ctx: &mut Ctx, opts: &BTreeMap<String, String>) -> String {
    match opts.get("name") {
        Some(n) => n.clone(),
        None => {
            ctx.conn_counter += 1;
            format!("c{}", ctx.conn_counter)
        }
    }
}

fn watch(ctx: &mut Ctx, line: usize, t: &[&str]) -> Result<(), ParseError> {
    let [_, kind, src, "->", dst, rest @ ..] = t else {
        bail!(
            line,
            "usage: watch alive|status <component> -> <monitor> [name <c>]"
        )
    };
    let ck = match *kind {
        "alive" => ConnectorKind::AliveWatch,
        "status" => ConnectorKind::StatusWatch,
        other => bail!(
            line,
            "watch kind must be `alive` or `status`, got `{other}`"
        ),
    };
    let s = mama_comp(ctx, line, src)?;
    let d = mama_comp(ctx, line, dst)?;
    let opts = options(line, rest, &["name"])?;
    let name = connector_name(ctx, &opts);
    let id = ctx.model.mama.watch(name, ck, s, d);
    ctx.model.spans.connectors.insert(id, line);
    Ok(())
}

fn notify(ctx: &mut Ctx, line: usize, t: &[&str]) -> Result<(), ParseError> {
    let [_, src, "->", dst, rest @ ..] = t else {
        bail!(line, "usage: notify <notifier> -> <subscriber> [name <c>]")
    };
    let s = mama_comp(ctx, line, src)?;
    let d = mama_comp(ctx, line, dst)?;
    let opts = options(line, rest, &["name"])?;
    let name = connector_name(ctx, &opts);
    let id = ctx.model.mama.notify(name, s, d);
    ctx.model.spans.connectors.insert(id, line);
    Ok(())
}

fn reward(ctx: &mut Ctx, line: usize, t: &[&str]) -> Result<(), ParseError> {
    let [_, users, weight] = t else {
        bail!(line, "usage: reward <users> <weight>")
    };
    let Some(&u) = ctx.model.tasks.get(*users) else {
        bail!(line, "unknown task `{users}`")
    };
    if !ctx.model.app.is_reference(u) {
        bail!(line, "`{users}` is not a users (reference) task");
    }
    let w: f64 = weight.parse().map_err(|_| ParseError {
        line,
        message: format!("bad weight `{weight}`"),
    })?;
    ctx.model.rewards.push((u, w));
    ctx.model.spans.rewards.push(line);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"
        # a primary/backup system
        processor pc cores inf
        processor p1 fail 0.1
        processor p2 fail 0.1
        users u on pc population 10 think 1.0
        task prim on p1 fail 0.1
        task back on p2 fail 0.1
        entry eu of u
        entry e1 of prim demand 0.5
        entry e2 of back demand 0.5
        service data = e1 > e2
        call eu -> data x 1.0
        reward u 1.0
    "#;

    #[test]
    fn minimal_parses() {
        let m = parse(MINIMAL).unwrap();
        assert_eq!(m.app.task_count(), 3);
        assert_eq!(m.app.service_count(), 1);
        assert_eq!(m.rewards.len(), 1);
        assert!(m.task("prim").is_some());
        assert!(m.entry("e2").is_some());
        assert!(m.service("data").is_some());
    }

    #[test]
    fn management_section_parses_with_auto_registration() {
        let src = format!(
            "{MINIMAL}\n\
             mgmtproc p5 fail 0.1\n\
             agent ag1 on p1 fail 0.1\n\
             manager m1 on p5 fail 0.1\n\
             watch alive prim -> ag1\n\
             watch status ag1 -> m1\n\
             watch alive p1 -> m1\n\
             notify m1 -> ag1\n"
        );
        let m = parse(&src).unwrap();
        assert_eq!(m.mama.connector_count(), 4);
        // prim and p1 were auto-registered.
        assert!(m.mama.component_by_name("prim").is_some());
        assert!(m.mama.component_by_name("p1").is_some());
    }

    #[test]
    fn unknown_statement_is_reported_with_line() {
        let err = parse("processor p\nfrobnicate x\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("frobnicate"));
    }

    #[test]
    fn undefined_reference_fails() {
        let err = parse("task t on nowhere\n").unwrap_err();
        assert!(err.message.contains("unknown processor"));
    }

    #[test]
    fn duplicate_name_fails() {
        let err = parse("processor p\nprocessor p\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("already defined"));
    }

    #[test]
    fn bad_option_value_fails() {
        let err = parse("processor p fail many\n").unwrap_err();
        assert!(err.message.contains("bad number"));
    }

    #[test]
    fn odd_option_tokens_fail() {
        let err = parse("processor p fail\n").unwrap_err();
        assert!(err.message.contains("pairs"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let m = parse("# hi\n\n   # more\nprocessor p\nusers u on p\nentry e of u\n").unwrap();
        assert_eq!(m.app.processor_count(), 1);
    }

    #[test]
    fn invalid_final_model_reports_validation_error() {
        // Users with two entries: invalid.
        let err = parse("processor p\nusers u on p\nentry a of u\nentry b of u\n").unwrap_err();
        assert!(err.message.contains("invalid"));
        // The error points at the declaration of the offending task.
        assert_eq!(err.line, 2);
    }

    #[test]
    fn validation_error_without_locus_has_no_line_prefix() {
        // No reference task at all: a whole-model error with no span.
        let err = parse("processor p\ntask t on p\nentry e of t demand 0.1\n").unwrap_err();
        assert_eq!(err.line, 0);
        assert!(!err.to_string().starts_with("line 0"), "{err}");
    }

    #[test]
    fn lenient_parse_collects_all_validation_errors() {
        // Two independent problems: users task with two entries AND a
        // bad probability on another task.
        let src = "processor p\nusers u on p\nentry a of u\nentry b of u\n\
                   task t on p fail 1.5\nentry e of t demand 0.1\ncall a -> e\n";
        let lenient = parse_lenient(src).unwrap();
        assert!(lenient.app_errors.len() >= 2, "{:?}", lenient.app_errors);
    }

    #[test]
    fn spans_record_declaration_lines() {
        let m = parse(MINIMAL).unwrap();
        let prim = m.task("prim").unwrap();
        // MINIMAL is a raw string starting with a newline: `task prim`
        // is on line 7.
        assert_eq!(m.spans.task_line(prim), Some(7));
        let data = m.service("data").unwrap();
        assert_eq!(m.spans.service_line(data), Some(12));
        assert_eq!(m.spans.reward_line(0), Some(14));
    }

    #[test]
    fn call_via_link() {
        let src = "processor pc cores inf\nprocessor p1\nusers u on pc\ntask s on p1\n\
                   entry eu of u\nentry es of s demand 0.1\nlink net fail 0.05\n\
                   call eu -> es via net\n";
        let m = parse(src).unwrap();
        assert_eq!(m.app.link_count(), 1);
    }

    #[test]
    fn bounded_rejects_oversized_input() {
        let limits = ParseLimits {
            max_bytes: 16,
            ..ParseLimits::default()
        };
        let errs = parse_bounded("processor p\nprocessor q\n", &limits).unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("too large"), "{errs:?}");
    }

    #[test]
    fn bounded_rejects_too_many_lines() {
        let limits = ParseLimits {
            max_lines: 2,
            ..ParseLimits::default()
        };
        let errs = parse_bounded("processor a\nprocessor b\nprocessor c\n", &limits).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("too many lines")));
    }

    #[test]
    fn bounded_collects_multiple_syntax_errors() {
        let src = "processor p\nfrobnicate x\nusers u on p\nwibble y\nentry e of u\n";
        let errs = parse_bounded(src, &ParseLimits::default()).unwrap_err();
        assert_eq!(errs.len(), 2, "{errs:?}");
        assert_eq!(errs[0].line, 2);
        assert_eq!(errs[1].line, 4);
    }

    #[test]
    fn bounded_error_budget_stops_collection() {
        let hostile: String = (0..100).map(|i| format!("bogus{i}\n")).collect();
        let limits = ParseLimits {
            max_errors: 5,
            ..ParseLimits::default()
        };
        let errs = parse_bounded(&hostile, &limits).unwrap_err();
        // Budget of 5 plus the final exhaustion note.
        assert_eq!(errs.len(), 6, "{errs:?}");
        assert!(errs.last().unwrap().message.contains("budget exhausted"));
    }

    #[test]
    fn bounded_matches_lenient_on_clean_input() {
        let bounded = parse_bounded(MINIMAL, &ParseLimits::default()).unwrap();
        let lenient = parse_lenient(MINIMAL).unwrap();
        assert_eq!(
            bounded.model.app.task_count(),
            lenient.model.app.task_count()
        );
        assert!(bounded.app_errors.is_empty());
        assert!(bounded.mama_errors.is_empty());
    }

    #[test]
    fn reward_requires_reference_task() {
        let src = "processor pc cores inf\nprocessor p1\nusers u on pc\ntask s on p1\n\
                   entry eu of u\nentry es of s demand 0.1\ncall eu -> es\nreward s 1.0\n";
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("not a users"));
    }
}
