//! The line-oriented parser.  Definitions must precede uses.

use fmperf_ftlqn::{FtEntryId, FtProcId, FtTaskId, FtlqnModel, LinkId, RequestTarget, ServiceId};
use fmperf_lqn::Multiplicity;
use fmperf_mama::model::ConnectorKind;
use fmperf_mama::{MamaCompId, MamaModel};
use std::collections::BTreeMap;
use std::fmt;

/// A parsed combined model.
#[derive(Debug, Clone)]
pub struct ParsedModel {
    /// The application model.
    pub app: FtlqnModel,
    /// The management architecture (possibly empty).
    pub mama: MamaModel,
    /// Reward weights declared with `reward` statements.
    pub rewards: Vec<(FtTaskId, f64)>,
    pub(crate) tasks: BTreeMap<String, FtTaskId>,
    pub(crate) entries: BTreeMap<String, FtEntryId>,
    pub(crate) services: BTreeMap<String, ServiceId>,
    pub(crate) procs: BTreeMap<String, FtProcId>,
    pub(crate) links: BTreeMap<String, LinkId>,
}

impl ParsedModel {
    /// Looks up a task by its name in the source text.
    pub fn task(&self, name: &str) -> Option<FtTaskId> {
        self.tasks.get(name).copied()
    }
    /// Looks up an entry by name.
    pub fn entry(&self, name: &str) -> Option<FtEntryId> {
        self.entries.get(name).copied()
    }
    /// Looks up a service by name.
    pub fn service(&self, name: &str) -> Option<ServiceId> {
        self.services.get(name).copied()
    }
    /// Looks up a processor by name.
    pub fn processor(&self, name: &str) -> Option<FtProcId> {
        self.procs.get(name).copied()
    }
}

/// A parse failure, with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Ctx {
    model: ParsedModel,
    /// MAMA components by name (agents, managers, mgmt processors and
    /// auto-registered app components).
    mama_comps: BTreeMap<String, MamaCompId>,
    conn_counter: usize,
}

macro_rules! bail {
    ($line:expr, $($arg:tt)*) => {
        return Err(ParseError { line: $line, message: format!($($arg)*) })
    };
}

/// Parses a combined model from source text.
///
/// # Errors
///
/// Returns the first syntax or reference error with its line number; the
/// resulting models are additionally validated (`FtlqnModel::validate`,
/// `MamaModel::validate`) before being returned.
pub fn parse(src: &str) -> Result<ParsedModel, ParseError> {
    let mut ctx = Ctx {
        model: ParsedModel {
            app: FtlqnModel::new(),
            mama: MamaModel::new(),
            rewards: Vec::new(),
            tasks: BTreeMap::new(),
            entries: BTreeMap::new(),
            services: BTreeMap::new(),
            procs: BTreeMap::new(),
            links: BTreeMap::new(),
        },
        mama_comps: BTreeMap::new(),
        conn_counter: 0,
    };
    for (ix, raw) in src.lines().enumerate() {
        let line_no = ix + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        statement(&mut ctx, line_no, &tokens)?;
    }
    ctx.model.app.validate().map_err(|e| ParseError {
        line: 0,
        message: format!("application model invalid: {e}"),
    })?;
    ctx.model
        .mama
        .validate(&ctx.model.app)
        .map_err(|e| ParseError {
            line: 0,
            message: format!("management model invalid: {e}"),
        })?;
    Ok(ctx.model)
}

fn statement(ctx: &mut Ctx, line: usize, t: &[&str]) -> Result<(), ParseError> {
    match t[0] {
        "processor" => processor(ctx, line, t),
        "users" => users(ctx, line, t),
        "task" => task(ctx, line, t),
        "entry" => entry(ctx, line, t),
        "link" => link(ctx, line, t),
        "service" => service(ctx, line, t),
        "call" => call(ctx, line, t),
        "mgmtproc" => mgmtproc(ctx, line, t),
        "agent" | "manager" => mgmt_task(ctx, line, t),
        "watch" => watch(ctx, line, t),
        "notify" => notify(ctx, line, t),
        "reward" => reward(ctx, line, t),
        other => bail!(line, "unknown statement `{other}`"),
    }
}

/// Parses trailing `key value` option pairs.
fn options(
    line: usize,
    t: &[&str],
    allowed: &[&str],
) -> Result<BTreeMap<String, String>, ParseError> {
    if !t.len().is_multiple_of(2) {
        bail!(
            line,
            "options must come in `key value` pairs, got `{}`",
            t.join(" ")
        );
    }
    let mut out = BTreeMap::new();
    for pair in t.chunks(2) {
        if !allowed.contains(&pair[0]) {
            bail!(
                line,
                "unknown option `{}` (allowed: {})",
                pair[0],
                allowed.join(", ")
            );
        }
        if out
            .insert(pair[0].to_string(), pair[1].to_string())
            .is_some()
        {
            bail!(line, "duplicate option `{}`", pair[0]);
        }
    }
    Ok(out)
}

fn f64_opt(
    line: usize,
    opts: &BTreeMap<String, String>,
    key: &str,
    default: f64,
) -> Result<f64, ParseError> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v.parse::<f64>().map_err(|_| ParseError {
            line,
            message: format!("bad number for `{key}`: `{v}`"),
        }),
    }
}

fn u32_opt(
    line: usize,
    opts: &BTreeMap<String, String>,
    key: &str,
    default: u32,
) -> Result<u32, ParseError> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v.parse::<u32>().map_err(|_| ParseError {
            line,
            message: format!("bad integer for `{key}`: `{v}`"),
        }),
    }
}

fn mult_opt(
    line: usize,
    opts: &BTreeMap<String, String>,
    key: &str,
    default: Multiplicity,
) -> Result<Multiplicity, ParseError> {
    match opts.get(key).map(|s| s.as_str()) {
        None => Ok(default),
        Some("inf") => Ok(Multiplicity::Infinite),
        Some(v) => v
            .parse::<u32>()
            .map(Multiplicity::Finite)
            .map_err(|_| ParseError {
                line,
                message: format!("bad multiplicity for `{key}`: `{v}`"),
            }),
    }
}

fn fresh_name(ctx: &Ctx, line: usize, name: &str) -> Result<(), ParseError> {
    let m = &ctx.model;
    if m.tasks.contains_key(name)
        || m.entries.contains_key(name)
        || m.services.contains_key(name)
        || m.procs.contains_key(name)
        || m.links.contains_key(name)
        || ctx.mama_comps.contains_key(name)
    {
        bail!(line, "name `{name}` already defined");
    }
    Ok(())
}

fn processor(ctx: &mut Ctx, line: usize, t: &[&str]) -> Result<(), ParseError> {
    let [_, name, rest @ ..] = t else {
        bail!(line, "usage: processor <name> [options]")
    };
    fresh_name(ctx, line, name)?;
    let opts = options(line, rest, &["fail", "cores"])?;
    let fail = f64_opt(line, &opts, "fail", 0.0)?;
    let cores = mult_opt(line, &opts, "cores", Multiplicity::Finite(1))?;
    let id = ctx.model.app.add_processor(*name, fail, cores);
    ctx.model.procs.insert(name.to_string(), id);
    Ok(())
}

fn users(ctx: &mut Ctx, line: usize, t: &[&str]) -> Result<(), ParseError> {
    let [_, name, "on", proc, rest @ ..] = t else {
        bail!(line, "usage: users <name> on <proc> [options]")
    };
    fresh_name(ctx, line, name)?;
    let Some(&p) = ctx.model.procs.get(*proc) else {
        bail!(line, "unknown processor `{proc}`")
    };
    let opts = options(line, rest, &["population", "think", "fail"])?;
    let population = u32_opt(line, &opts, "population", 1)?;
    let think = f64_opt(line, &opts, "think", 0.0)?;
    let fail = f64_opt(line, &opts, "fail", 0.0)?;
    let id = ctx
        .model
        .app
        .add_reference_task(*name, p, fail, population, think);
    ctx.model.tasks.insert(name.to_string(), id);
    Ok(())
}

fn task(ctx: &mut Ctx, line: usize, t: &[&str]) -> Result<(), ParseError> {
    let [_, name, "on", proc, rest @ ..] = t else {
        bail!(line, "usage: task <name> on <proc> [options]")
    };
    fresh_name(ctx, line, name)?;
    let Some(&p) = ctx.model.procs.get(*proc) else {
        bail!(line, "unknown processor `{proc}`")
    };
    let opts = options(line, rest, &["fail", "threads"])?;
    let fail = f64_opt(line, &opts, "fail", 0.0)?;
    let threads = mult_opt(line, &opts, "threads", Multiplicity::Finite(1))?;
    let id = ctx.model.app.add_task(*name, p, fail, threads);
    ctx.model.tasks.insert(name.to_string(), id);
    Ok(())
}

fn entry(ctx: &mut Ctx, line: usize, t: &[&str]) -> Result<(), ParseError> {
    let [_, name, "of", task, rest @ ..] = t else {
        bail!(
            line,
            "usage: entry <name> of <task> [demand <d>] [demand2 <d>]"
        )
    };
    fresh_name(ctx, line, name)?;
    let Some(&tk) = ctx.model.tasks.get(*task) else {
        bail!(line, "unknown task `{task}`")
    };
    let opts = options(line, rest, &["demand", "demand2"])?;
    let demand = f64_opt(line, &opts, "demand", 0.0)?;
    let demand2 = f64_opt(line, &opts, "demand2", 0.0)?;
    let id = ctx.model.app.add_entry(*name, tk, demand);
    if demand2 > 0.0 {
        ctx.model.app.set_second_phase_demand(id, demand2);
    }
    ctx.model.entries.insert(name.to_string(), id);
    Ok(())
}

fn link(ctx: &mut Ctx, line: usize, t: &[&str]) -> Result<(), ParseError> {
    let [_, name, rest @ ..] = t else {
        bail!(line, "usage: link <name> [fail <p>]")
    };
    fresh_name(ctx, line, name)?;
    let opts = options(line, rest, &["fail"])?;
    let fail = f64_opt(line, &opts, "fail", 0.0)?;
    let id = ctx.model.app.add_link(*name, fail);
    ctx.model.links.insert(name.to_string(), id);
    Ok(())
}

fn service(ctx: &mut Ctx, line: usize, t: &[&str]) -> Result<(), ParseError> {
    let [_, name, "=", alts @ ..] = t else {
        bail!(line, "usage: service <name> = <entry> [> <entry>]...")
    };
    fresh_name(ctx, line, name)?;
    if alts.is_empty() {
        bail!(line, "service `{name}` needs at least one alternative");
    }
    let id = ctx.model.app.add_service(*name);
    for part in alts.split(|&s| s == ">") {
        let [alt] = part else {
            bail!(line, "alternatives must be single entries separated by `>`")
        };
        let Some(&e) = ctx.model.entries.get(*alt) else {
            bail!(line, "unknown entry `{alt}`")
        };
        ctx.model.app.add_alternative(id, e, None);
    }
    ctx.model.services.insert(name.to_string(), id);
    Ok(())
}

fn call(ctx: &mut Ctx, line: usize, t: &[&str]) -> Result<(), ParseError> {
    let [_, from, "->", to, rest @ ..] = t else {
        bail!(
            line,
            "usage: call <entry> -> <entry-or-service> [x <mean>] [via <link>]"
        )
    };
    let Some(&fe) = ctx.model.entries.get(*from) else {
        bail!(line, "unknown entry `{from}`")
    };
    let target = if let Some(&te) = ctx.model.entries.get(*to) {
        RequestTarget::Entry(te)
    } else if let Some(&s) = ctx.model.services.get(*to) {
        RequestTarget::Service(s)
    } else {
        bail!(line, "unknown call target `{to}`");
    };
    let opts = options(line, rest, &["x", "via", "phase"])?;
    let mean = f64_opt(line, &opts, "x", 1.0)?;
    let via = match opts.get("via") {
        None => None,
        Some(l) => match ctx.model.links.get(l) {
            Some(&l) => Some(l),
            None => bail!(line, "unknown link `{l}`"),
        },
    };
    let phase = match opts.get("phase").map(String::as_str) {
        None | Some("1") => fmperf_lqn::Phase::One,
        Some("2") => fmperf_lqn::Phase::Two,
        Some(other) => bail!(line, "phase must be 1 or 2, got `{other}`"),
    };
    ctx.model
        .app
        .add_request_in_phase(fe, target, mean, via, phase);
    Ok(())
}

fn mgmtproc(ctx: &mut Ctx, line: usize, t: &[&str]) -> Result<(), ParseError> {
    let [_, name, rest @ ..] = t else {
        bail!(line, "usage: mgmtproc <name> [fail <p>]")
    };
    fresh_name(ctx, line, name)?;
    let opts = options(line, rest, &["fail"])?;
    let fail = f64_opt(line, &opts, "fail", 0.0)?;
    let id = ctx.model.mama.add_mgmt_processor(*name, fail);
    ctx.mama_comps.insert(name.to_string(), id);
    Ok(())
}

/// Resolves (auto-registering if needed) a name to a MAMA component.
fn mama_comp(ctx: &mut Ctx, line: usize, name: &str) -> Result<MamaCompId, ParseError> {
    if let Some(&c) = ctx.mama_comps.get(name) {
        return Ok(c);
    }
    // App processor?
    if let Some(&p) = ctx.model.procs.get(name) {
        let id = ctx.model.mama.add_app_processor(name, p);
        ctx.mama_comps.insert(name.to_string(), id);
        return Ok(id);
    }
    // App task?  Its processor must be registered first.
    if let Some(&t) = ctx.model.tasks.get(name) {
        let p = ctx.model.app.processor_of(t);
        let pname = ctx.model.app.processor_name(p).to_string();
        let pc = mama_comp(ctx, line, &pname)?;
        let id = ctx.model.mama.add_app_task(name, t, pc);
        ctx.mama_comps.insert(name.to_string(), id);
        return Ok(id);
    }
    bail!(line, "unknown component `{name}`")
}

fn mgmt_task(ctx: &mut Ctx, line: usize, t: &[&str]) -> Result<(), ParseError> {
    let [kind, name, "on", proc, rest @ ..] = t else {
        bail!(line, "usage: {} <name> on <proc> [fail <p>]", t[0])
    };
    fresh_name(ctx, line, name)?;
    let opts = options(line, rest, &["fail"])?;
    let fail = f64_opt(line, &opts, "fail", 0.0)?;
    let pc = mama_comp(ctx, line, proc)?;
    let id = if *kind == "agent" {
        ctx.model.mama.add_agent(*name, pc, fail)
    } else {
        ctx.model.mama.add_manager(*name, pc, fail)
    };
    ctx.mama_comps.insert(name.to_string(), id);
    Ok(())
}

fn connector_name(ctx: &mut Ctx, opts: &BTreeMap<String, String>) -> String {
    match opts.get("name") {
        Some(n) => n.clone(),
        None => {
            ctx.conn_counter += 1;
            format!("c{}", ctx.conn_counter)
        }
    }
}

fn watch(ctx: &mut Ctx, line: usize, t: &[&str]) -> Result<(), ParseError> {
    let [_, kind, src, "->", dst, rest @ ..] = t else {
        bail!(
            line,
            "usage: watch alive|status <component> -> <monitor> [name <c>]"
        )
    };
    let ck = match *kind {
        "alive" => ConnectorKind::AliveWatch,
        "status" => ConnectorKind::StatusWatch,
        other => bail!(
            line,
            "watch kind must be `alive` or `status`, got `{other}`"
        ),
    };
    let s = mama_comp(ctx, line, src)?;
    let d = mama_comp(ctx, line, dst)?;
    let opts = options(line, rest, &["name"])?;
    let name = connector_name(ctx, &opts);
    ctx.model.mama.watch(name, ck, s, d);
    Ok(())
}

fn notify(ctx: &mut Ctx, line: usize, t: &[&str]) -> Result<(), ParseError> {
    let [_, src, "->", dst, rest @ ..] = t else {
        bail!(line, "usage: notify <notifier> -> <subscriber> [name <c>]")
    };
    let s = mama_comp(ctx, line, src)?;
    let d = mama_comp(ctx, line, dst)?;
    let opts = options(line, rest, &["name"])?;
    let name = connector_name(ctx, &opts);
    ctx.model.mama.notify(name, s, d);
    Ok(())
}

fn reward(ctx: &mut Ctx, line: usize, t: &[&str]) -> Result<(), ParseError> {
    let [_, users, weight] = t else {
        bail!(line, "usage: reward <users> <weight>")
    };
    let Some(&u) = ctx.model.tasks.get(*users) else {
        bail!(line, "unknown task `{users}`")
    };
    if !ctx.model.app.is_reference(u) {
        bail!(line, "`{users}` is not a users (reference) task");
    }
    let w: f64 = weight.parse().map_err(|_| ParseError {
        line,
        message: format!("bad weight `{weight}`"),
    })?;
    ctx.model.rewards.push((u, w));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"
        # a primary/backup system
        processor pc cores inf
        processor p1 fail 0.1
        processor p2 fail 0.1
        users u on pc population 10 think 1.0
        task prim on p1 fail 0.1
        task back on p2 fail 0.1
        entry eu of u
        entry e1 of prim demand 0.5
        entry e2 of back demand 0.5
        service data = e1 > e2
        call eu -> data x 1.0
        reward u 1.0
    "#;

    #[test]
    fn minimal_parses() {
        let m = parse(MINIMAL).unwrap();
        assert_eq!(m.app.task_count(), 3);
        assert_eq!(m.app.service_count(), 1);
        assert_eq!(m.rewards.len(), 1);
        assert!(m.task("prim").is_some());
        assert!(m.entry("e2").is_some());
        assert!(m.service("data").is_some());
    }

    #[test]
    fn management_section_parses_with_auto_registration() {
        let src = format!(
            "{MINIMAL}\n\
             mgmtproc p5 fail 0.1\n\
             agent ag1 on p1 fail 0.1\n\
             manager m1 on p5 fail 0.1\n\
             watch alive prim -> ag1\n\
             watch status ag1 -> m1\n\
             watch alive p1 -> m1\n\
             notify m1 -> ag1\n"
        );
        let m = parse(&src).unwrap();
        assert_eq!(m.mama.connector_count(), 4);
        // prim and p1 were auto-registered.
        assert!(m.mama.component_by_name("prim").is_some());
        assert!(m.mama.component_by_name("p1").is_some());
    }

    #[test]
    fn unknown_statement_is_reported_with_line() {
        let err = parse("processor p\nfrobnicate x\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("frobnicate"));
    }

    #[test]
    fn undefined_reference_fails() {
        let err = parse("task t on nowhere\n").unwrap_err();
        assert!(err.message.contains("unknown processor"));
    }

    #[test]
    fn duplicate_name_fails() {
        let err = parse("processor p\nprocessor p\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("already defined"));
    }

    #[test]
    fn bad_option_value_fails() {
        let err = parse("processor p fail many\n").unwrap_err();
        assert!(err.message.contains("bad number"));
    }

    #[test]
    fn odd_option_tokens_fail() {
        let err = parse("processor p fail\n").unwrap_err();
        assert!(err.message.contains("pairs"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let m = parse("# hi\n\n   # more\nprocessor p\nusers u on p\nentry e of u\n").unwrap();
        assert_eq!(m.app.processor_count(), 1);
    }

    #[test]
    fn invalid_final_model_reports_validation_error() {
        // Users with two entries: invalid.
        let err = parse("processor p\nusers u on p\nentry a of u\nentry b of u\n").unwrap_err();
        assert!(err.message.contains("invalid"));
    }

    #[test]
    fn call_via_link() {
        let src = "processor pc cores inf\nprocessor p1\nusers u on pc\ntask s on p1\n\
                   entry eu of u\nentry es of s demand 0.1\nlink net fail 0.05\n\
                   call eu -> es via net\n";
        let m = parse(src).unwrap();
        assert_eq!(m.app.link_count(), 1);
    }

    #[test]
    fn reward_requires_reference_task() {
        let src = "processor pc cores inf\nprocessor p1\nusers u on pc\ntask s on p1\n\
                   entry eu of u\nentry es of s demand 0.1\ncall eu -> es\nreward s 1.0\n";
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("not a users"));
    }
}
