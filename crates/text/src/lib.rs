//! # fmperf-text
//!
//! A human-editable textual format for combined FTLQN + MAMA models, with
//! a [`parse`] function and a [`write_model`] serializer.
//!
//! One statement per line, `#` starts a comment.  Statements:
//!
//! ```text
//! processor <name> [fail <p>] [cores <n|inf>]
//! users     <name> on <proc> [population <n>] [think <t>]
//! task      <name> on <proc> [fail <p>] [threads <n|inf>]
//! entry     <name> of <task> [demand <d>]
//! link      <name> [fail <p>]
//! service   <name> = <entry> [> <entry>]...         # priority order
//! call      <entry> -> <entry-or-service> [x <mean>] [via <link>]
//!
//! mgmtproc  <name> [fail <p>]
//! agent     <name> on <proc> [fail <p>]
//! manager   <name> on <proc> [fail <p>]
//! watch     alive|status <component> -> <agent-or-manager> [name <c>]
//! notify    <agent-or-manager> -> <component> [name <c>]
//!
//! reward    <users> <weight>
//! ```
//!
//! Application tasks and processors referenced from `watch`/`notify`
//! statements are registered in the MAMA model automatically.
//!
//! ```
//! let src = r#"
//!     processor pc cores inf
//!     processor p1 fail 0.1
//!     users u on pc population 10 think 1.0
//!     task s on p1 fail 0.1
//!     entry eu of u
//!     entry es of s demand 0.5
//!     call eu -> es
//!     reward u 1.0
//! "#;
//! let parsed = fmperf_text::parse(src).unwrap();
//! assert_eq!(parsed.app.task_count(), 2);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod parser;
mod writer;

pub use parser::{
    parse, parse_bounded, parse_lenient, LenientParse, ParseError, ParseLimits, ParsedModel,
    SourceMap,
};
pub use writer::write_model;
