//! Steps 5 and 6 of the paper's algorithm: solve an LQN per distinct
//! configuration and fold throughputs with configuration probabilities
//! into the expected steady-state reward rate.

use crate::distribution::ConfigDistribution;
use fmperf_ftlqn::lower::lower;
use fmperf_ftlqn::{Configuration, FtTaskId, FtlqnModel, LoweredLqn};
use fmperf_lqn::{SolveError, SolverOptions};
use std::collections::BTreeMap;

/// Reward weights per user group: `R_i = Σ_j w_j · f_{i,j}` (paper §6.3).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RewardSpec {
    weights: BTreeMap<FtTaskId, f64>,
}

impl RewardSpec {
    /// Creates an empty spec (all weights default to 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the weight of a user group (reference task).
    #[must_use]
    pub fn weight(mut self, chain: FtTaskId, w: f64) -> Self {
        self.weights.insert(chain, w);
        self
    }

    /// The weight of a chain (0 when unset).
    pub fn weight_of(&self, chain: FtTaskId) -> f64 {
        self.weights.get(&chain).copied().unwrap_or(0.0)
    }

    /// The reward rate of one configuration's performance.
    pub fn reward(&self, perf: &ConfigPerformance) -> f64 {
        perf.throughputs
            .iter()
            .map(|(&chain, &f)| self.weight_of(chain) * f)
            .sum()
    }
}

/// Solved performance of one configuration: the throughput of every user
/// group (zero for failed chains).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConfigPerformance {
    /// Cycle throughput per reference task.
    pub throughputs: BTreeMap<FtTaskId, f64>,
}

impl ConfigPerformance {
    /// Throughput of one chain (0 when absent).
    pub fn throughput(&self, chain: FtTaskId) -> f64 {
        self.throughputs.get(&chain).copied().unwrap_or(0.0)
    }
}

/// Solves the LQN of every configuration (paper §5, step 5) with default
/// solver options.
///
/// The failed configuration gets zero throughputs without solving.
/// Results align index-wise with `configs`.
///
/// # Errors
///
/// Propagates LQN solver failures, tagged with the offending
/// configuration index.
pub fn solve_configurations(
    model: &FtlqnModel,
    configs: &[Configuration],
) -> Result<Vec<ConfigPerformance>, ConfigSolveError> {
    solve_configurations_with(model, configs, SolverOptions::default())
}

/// [`solve_configurations`] with explicit LQN solver options.
///
/// # Errors
///
/// Propagates LQN solver failures, tagged with the offending
/// configuration index.
pub fn solve_configurations_with(
    model: &FtlqnModel,
    configs: &[Configuration],
    options: SolverOptions,
) -> Result<Vec<ConfigPerformance>, ConfigSolveError> {
    let chains: Vec<FtTaskId> = model.reference_tasks().collect();
    let mut out = Vec::with_capacity(configs.len());
    for (ix, config) in configs.iter().enumerate() {
        let mut perf = ConfigPerformance::default();
        for &c in &chains {
            perf.throughputs.insert(c, 0.0);
        }
        if !config.is_failed() {
            let lowered: LoweredLqn = lower(model, config).map_err(|e| ConfigSolveError {
                config_index: ix,
                message: e.to_string(),
            })?;
            let sol = options
                .solve(&lowered.model)
                .map_err(|e: SolveError| ConfigSolveError {
                    config_index: ix,
                    message: e.to_string(),
                })?;
            for &c in &chains {
                if let Some(lt) = lowered.task(c) {
                    perf.throughputs.insert(c, sol.task_throughput(lt));
                }
            }
        }
        out.push(perf);
    }
    Ok(out)
}

/// Failure while solving one configuration's LQN.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigSolveError {
    /// Index into the configuration slice passed in.
    pub config_index: usize,
    /// Human-readable cause.
    pub message: String,
}

impl std::fmt::Display for ConfigSolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "configuration #{}: {}", self.config_index, self.message)
    }
}

impl std::error::Error for ConfigSolveError {}

/// Step 6: `R = Σ_i R_i · Prob(C_i)`.
///
/// `perfs` must align with `dist.configurations()` (the order
/// [`solve_configurations`] consumes).
///
/// # Panics
///
/// Panics if the lengths disagree.
pub fn expected_reward(
    dist: &ConfigDistribution,
    perfs: &[ConfigPerformance],
    spec: &RewardSpec,
) -> f64 {
    let configs = dist.configurations();
    assert_eq!(configs.len(), perfs.len(), "performance results misaligned");
    configs
        .iter()
        .zip(perfs)
        .map(|(c, perf)| dist.probability(c) * spec.reward(perf))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analysis;
    use fmperf_ftlqn::examples::das_woodside_system;
    use fmperf_mama::ComponentSpace;

    #[test]
    fn reward_spec_weighted_sum() {
        let sys = das_woodside_system();
        let spec = RewardSpec::new()
            .weight(sys.user_a, 1.0)
            .weight(sys.user_b, 2.0);
        let mut perf = ConfigPerformance::default();
        perf.throughputs.insert(sys.user_a, 0.5);
        perf.throughputs.insert(sys.user_b, 0.25);
        assert!((spec.reward(&perf) - 1.0).abs() < 1e-12);
        assert_eq!(spec.weight_of(sys.app_a), 0.0);
    }

    #[test]
    fn failed_configuration_has_zero_reward() {
        let sys = das_woodside_system();
        let configs = vec![Configuration::default()];
        let perfs = solve_configurations(&sys.model, &configs).unwrap();
        assert_eq!(perfs[0].throughput(sys.user_a), 0.0);
        assert_eq!(perfs[0].throughput(sys.user_b), 0.0);
    }

    /// End-to-end perfect-knowledge expected reward: the paper reports
    /// ~0.85/s for equal weights.
    #[test]
    fn perfect_knowledge_expected_reward_near_paper() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let space = ComponentSpace::app_only(&sys.model);
        let dist = Analysis::new(&graph, &space).enumerate();
        let configs = dist.configurations();
        let perfs = solve_configurations(&sys.model, &configs).unwrap();
        let spec = RewardSpec::new()
            .weight(sys.user_a, 1.0)
            .weight(sys.user_b, 1.0);
        let r = expected_reward(&dist, &perfs, &spec);
        // Paper: 0.85/s.  Our LQN solver differs from LQNS by a few
        // percent on the shared configurations; allow a modest band.
        assert!(
            (0.78..=0.92).contains(&r),
            "expected reward {r}, paper ~0.85"
        );
    }

    #[test]
    fn single_group_configurations_reward_half() {
        // C1-style configuration: only UserA, via Server1 -> 0.5/s.
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let space = ComponentSpace::app_only(&sys.model);
        let dist = Analysis::new(&graph, &space).enumerate();
        let configs = dist.configurations();
        let perfs = solve_configurations(&sys.model, &configs).unwrap();
        for (c, p) in configs.iter().zip(&perfs) {
            if c.user_chains.len() == 1 && c.user_chains.contains(&sys.user_a) {
                let f = p.throughput(sys.user_a);
                assert!((f - 0.5).abs() < 0.02, "C1/C2 throughput {f}, paper 0.5");
                assert_eq!(p.throughput(sys.user_b), 0.0);
            }
        }
    }

    #[test]
    fn expected_reward_is_linear_in_weights() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let space = ComponentSpace::app_only(&sys.model);
        let dist = Analysis::new(&graph, &space).enumerate();
        let configs = dist.configurations();
        let perfs = solve_configurations(&sys.model, &configs).unwrap();
        let r_a = expected_reward(&dist, &perfs, &RewardSpec::new().weight(sys.user_a, 1.0));
        let r_b = expected_reward(&dist, &perfs, &RewardSpec::new().weight(sys.user_b, 1.0));
        let r_ab = expected_reward(
            &dist,
            &perfs,
            &RewardSpec::new()
                .weight(sys.user_a, 2.0)
                .weight(sys.user_b, 3.0),
        );
        assert!((r_ab - (2.0 * r_a + 3.0 * r_b)).abs() < 1e-9);
    }
}
