//! Monte Carlo estimation of the configuration distribution.
//!
//! The paper's conclusion notes that the `2^N` scan "will limit the
//! scalability of the approach ... to one or two dozen entities".  For
//! larger systems the distribution can be estimated by sampling component
//! states; each configuration's probability estimate is a binomial
//! proportion with the usual normal-approximation confidence interval.

use crate::analysis::{Analysis, Knowledge};
use crate::budget::{AnalysisError, BudgetGuard, EstimateInfo};
use crate::distribution::ConfigDistribution;
use fmperf_ftlqn::PerfectKnowledge;
use fmperf_obs::{Counter, Phase, Span};
use fmperf_sim::BatchMeans;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options for [`Analysis::monte_carlo`].
#[derive(Debug, Clone, Copy)]
pub struct MonteCarloOptions {
    /// Number of independent state samples.
    pub samples: u64,
    /// RNG seed (identical seeds give identical estimates).
    pub seed: u64,
}

impl Default for MonteCarloOptions {
    fn default() -> Self {
        MonteCarloOptions {
            samples: 100_000,
            seed: 0xC0FFEE,
        }
    }
}

/// A pooled Monte Carlo estimate with its batch-means provenance.
#[derive(Debug, Clone)]
pub struct MonteCarloEstimate {
    /// The pooled (batch-averaged) configuration distribution.
    pub distribution: ConfigDistribution,
    /// Samples, seed, batch count and the failure-probability CI.
    pub info: EstimateInfo,
}

/// Normal-approximation 95% half-width for a probability estimate `p`
/// from `n` samples.
pub fn proportion_half_width(p: f64, n: u64) -> f64 {
    if n == 0 {
        return f64::INFINITY;
    }
    1.96 * (p * (1.0 - p) / n as f64).sqrt()
}

impl Analysis<'_> {
    /// Estimates the configuration distribution from random state
    /// samples.  Works for any number of components.
    ///
    /// Dispatches to the compiled bitmask kernel when the analysis is
    /// compilable; the kernel consumes the RNG in exactly the same
    /// order, so a given seed yields the same estimate either way.
    pub fn monte_carlo(&self, options: MonteCarloOptions) -> ConfigDistribution {
        let _span = Span::enter(self.recorder, Phase::Sampling);
        let mut rng = StdRng::seed_from_u64(options.seed);
        if let Some(kernel) = self.compile() {
            return kernel.monte_carlo_run(&mut rng, options.samples);
        }
        self.monte_carlo_naive(&mut rng, options.samples)
    }

    /// [`monte_carlo`](Analysis::monte_carlo) with the degenerate input
    /// surfaced as a typed error.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::NoSamples`] when `options.samples` is zero.
    pub fn try_monte_carlo(
        &self,
        options: MonteCarloOptions,
    ) -> Result<ConfigDistribution, AnalysisError> {
        if options.samples == 0 {
            return Err(AnalysisError::NoSamples);
        }
        Ok(self.monte_carlo(options))
    }

    /// Batched Monte Carlo estimation with a batch-means confidence
    /// interval — the bottom rung of the degradation ladder.
    ///
    /// `options.samples` is split over `batches` (at least 2) equal
    /// batches; each batch's failure-probability estimate feeds a
    /// Student-t 95% interval.  With a guard, the deadline is polled
    /// *between* batches once the two-batch minimum has run, so this
    /// estimator always returns a distribution and a finite-df interval
    /// even when the deadline has already expired.
    pub fn monte_carlo_batched(
        &self,
        options: MonteCarloOptions,
        batches: u64,
        guard: Option<&BudgetGuard>,
    ) -> MonteCarloEstimate {
        let _span = Span::enter(self.recorder, Phase::Sampling);
        let batches = batches.max(2);
        let per_batch = (options.samples / batches).max(1);
        let mut rng = StdRng::seed_from_u64(options.seed);
        let kernel = self.compile();
        let mut bm = BatchMeans::new();
        let mut merged = ConfigDistribution::new();
        let mut completed = 0u64;
        let mut polls = 0u64;
        for b in 0..batches {
            // The first two batches always run: the estimator's contract
            // is to produce a result with a finite-df interval no matter
            // how starved the budget is.
            if b >= 2 {
                if let Some(g) = guard {
                    polls += 1;
                    if g.check().is_err() {
                        break;
                    }
                }
            }
            let dist = match &kernel {
                Some(k) => k.monte_carlo_run(&mut rng, per_batch),
                None => self.monte_carlo_naive(&mut rng, per_batch),
            };
            bm.push_batch(dist.failed_probability());
            merged.merge(dist);
            completed += 1;
        }
        // Each batch distribution is normalised to its own batch; the
        // pooled estimate is their average.
        let mut distribution = ConfigDistribution::new();
        for (config, p) in merged.iter() {
            distribution.add(config.clone(), p / completed as f64);
        }
        let drawn = per_batch * completed;
        distribution.set_states_explored(drawn);
        if let Some(r) = self.recorder {
            r.add(Counter::MonteCarloBatches, completed);
            r.add(Counter::BudgetPolls, polls);
        }
        let ci = bm.confidence_interval();
        MonteCarloEstimate {
            distribution,
            info: EstimateInfo {
                samples: drawn,
                seed: options.seed,
                batches: completed,
                failed_mean: ci.mean,
                failed_half_width: ci.half_width,
                is: None,
            },
        }
    }

    /// The allocating per-sample estimator — the reference path the
    /// compiled kernel's sampler is differentially tested against.
    fn monte_carlo_naive(&self, rng: &mut StdRng, samples: u64) -> ConfigDistribution {
        let fallible = self.space.fallible_indices();
        let mut dist = ConfigDistribution::new();
        let mut state = self.space.all_up();
        let weight = 1.0 / samples as f64;
        for _ in 0..samples {
            for &ix in &fallible {
                state[ix] = rng.gen::<f64>() < self.space.up_prob(ix);
            }
            let config = match self.knowledge {
                Knowledge::Perfect => {
                    self.graph
                        .configuration(&state, &PerfectKnowledge, self.policy)
                }
                Knowledge::Mama(table) => {
                    let oracle = table
                        .oracle(&state)
                        .default_for_missing(self.unmonitored_known);
                    self.graph.configuration(&state, &oracle, self.policy)
                }
            };
            dist.add(config, weight);
        }
        dist.set_states_explored(samples);
        fmperf_obs::add(self.recorder, Counter::MonteCarloSamples, samples);
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmperf_ftlqn::examples::das_woodside_system;
    use fmperf_mama::{arch, ComponentSpace, KnowTable};

    #[test]
    fn estimates_converge_to_exact() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let mama = arch::centralized(&sys, 0.1);
        let space = ComponentSpace::build(&sys.model, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        let analysis = Analysis::new(&graph, &space).with_knowledge(&table);
        let exact = analysis.enumerate();
        let mc = analysis.monte_carlo(MonteCarloOptions {
            samples: 200_000,
            seed: 7,
        });
        // Every configuration estimate within 4 standard errors.
        for (c, p_exact) in exact.iter() {
            let p_mc = mc.probability(c);
            let tol = 2.1 * proportion_half_width(p_exact.max(1e-4), 200_000);
            assert!(
                (p_mc - p_exact).abs() <= tol,
                "config {:?}: mc {p_mc} vs exact {p_exact} (tol {tol})",
                c.label(&sys.model)
            );
        }
        assert!((mc.total_probability() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_under_seed() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let space = ComponentSpace::app_only(&sys.model);
        let analysis = Analysis::new(&graph, &space);
        let a = analysis.monte_carlo(MonteCarloOptions {
            samples: 10_000,
            seed: 1,
        });
        let b = analysis.monte_carlo(MonteCarloOptions {
            samples: 10_000,
            seed: 1,
        });
        assert_eq!(a.max_abs_diff(&b), 0.0);
        let c = analysis.monte_carlo(MonteCarloOptions {
            samples: 10_000,
            seed: 2,
        });
        assert!(a.max_abs_diff(&c) > 0.0);
    }

    #[test]
    fn kernel_sampler_matches_naive_bit_for_bit() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let mama = arch::hierarchical(&sys, 0.1);
        let space = ComponentSpace::build(&sys.model, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        let analysis = Analysis::new(&graph, &space).with_knowledge(&table);
        let options = MonteCarloOptions {
            samples: 20_000,
            seed: 42,
        };
        // `monte_carlo` dispatches to the compiled kernel; the naive
        // sampler must consume the RNG identically, so the estimates are
        // equal, not merely close.
        let compiled = analysis.monte_carlo(options);
        let mut rng = StdRng::seed_from_u64(options.seed);
        let naive = analysis.monte_carlo_naive(&mut rng, options.samples);
        assert!(analysis.compile().is_some());
        assert_eq!(compiled, naive);
    }

    #[test]
    fn half_width_shrinks_with_samples() {
        assert!(proportion_half_width(0.5, 10_000) < proportion_half_width(0.5, 100));
        assert_eq!(proportion_half_width(0.5, 0), f64::INFINITY);
    }
}
