//! Availability sweeps over the compiled MTBDD.
//!
//! The paper's effectiveness study (§6, Figure 11) varies management
//! availability and re-derives the configuration probabilities at every
//! point.  With [`Analysis::compile_mtbdd`] that workload becomes
//! `compile + points × linear-pass` instead of `points × enumerate`: the
//! state→configuration map is compiled once and each sweep point is one
//! pass over the frozen diagram.

use crate::budget::{AnalysisError, BudgetGuard};
use crate::mtbdd_engine::CompiledMtbdd;
use fmperf_obs::{Counter, Phase, Recorder, Span};

/// One availability sweep: vary `component`'s availability from `from`
/// to `to` over `steps` evenly spaced points.
#[derive(Debug, Clone, Copy)]
pub struct SweepSpec {
    /// Global component index (into the analysis' component space).
    pub component: usize,
    /// First availability value (inclusive).
    pub from: f64,
    /// Last availability value (inclusive).
    pub to: f64,
    /// Number of sweep points (1 evaluates only `from`).
    pub steps: usize,
    /// Worker threads for the batched evaluation.
    pub threads: usize,
}

/// The distribution at one sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The swept component's availability at this point.
    pub availability: f64,
    /// Per-configuration probabilities, aligned with
    /// [`CompiledMtbdd::configurations`].
    pub probabilities: Vec<f64>,
}

/// A sweep rejected before evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// The component index is outside the component space.
    ComponentOutOfRange(usize),
    /// An availability bound lies outside `[0, 1]`.
    BoundOutOfRange,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::ComponentOutOfRange(ix) => {
                write!(f, "component index {ix} is outside the component space")
            }
            SweepError::BoundOutOfRange => {
                write!(f, "sweep bounds must lie in [0, 1]")
            }
        }
    }
}

impl std::error::Error for SweepError {}

/// The `steps` evenly spaced availability values from `from` to `to`
/// (both inclusive; a single step yields just `from`).
pub fn availability_points(from: f64, to: f64, steps: usize) -> Vec<f64> {
    match steps {
        0 => Vec::new(),
        1 => vec![from],
        _ => (0..steps)
            .map(|i| from + (to - from) * i as f64 / (steps - 1) as f64)
            .collect(),
    }
}

/// Runs the sweep: one batched linear-pass evaluation per point, all
/// other availabilities held at the compiled baseline.
///
/// # Errors
///
/// Rejects out-of-range component indices and bounds outside `[0, 1]`.
pub fn sweep(compiled: &CompiledMtbdd, spec: &SweepSpec) -> Result<Vec<SweepPoint>, SweepError> {
    if spec.component >= compiled.baseline_up().len() {
        return Err(SweepError::ComponentOutOfRange(spec.component));
    }
    if !(0.0..=1.0).contains(&spec.from) || !(0.0..=1.0).contains(&spec.to) {
        return Err(SweepError::BoundOutOfRange);
    }
    let points = availability_points(spec.from, spec.to, spec.steps);
    let rows: Vec<Vec<f64>> = points
        .iter()
        .map(|&a| {
            let mut up = compiled.baseline_up().to_vec();
            up[spec.component] = a;
            up
        })
        .collect();
    let probabilities = compiled.batch_probabilities(&rows, spec.threads.max(1));
    Ok(points
        .into_iter()
        .zip(probabilities)
        .map(|(availability, probabilities)| SweepPoint {
            availability,
            probabilities,
        })
        .collect())
}

/// Sweep points evaluated per deadline check — small enough that an
/// expired deadline is noticed within a few linear passes.
const SWEEP_CHUNK: usize = 16;

/// Budget-guarded [`sweep`]: evaluates the points in chunks of
/// [`SWEEP_CHUNK`], polling the guard's deadline between chunks.  A
/// within-budget run returns exactly what [`sweep`] returns.
///
/// # Errors
///
/// [`AnalysisError::Sweep`] for a rejected spec,
/// [`AnalysisError::DeadlineExpired`] when the guard trips mid-sweep.
pub fn sweep_guarded(
    compiled: &CompiledMtbdd,
    spec: &SweepSpec,
    guard: &BudgetGuard,
) -> Result<Vec<SweepPoint>, AnalysisError> {
    sweep_guarded_observed(compiled, spec, guard, None)
}

/// [`sweep_guarded`] with an optional [`Recorder`]: the evaluation is
/// wrapped in an [`mtbdd-eval`](Phase::MtbddEval) span and each
/// between-chunk deadline poll is counted.
///
/// # Errors
///
/// Exactly those of [`sweep_guarded`].
pub fn sweep_guarded_observed(
    compiled: &CompiledMtbdd,
    spec: &SweepSpec,
    guard: &BudgetGuard,
    recorder: Option<&dyn Recorder>,
) -> Result<Vec<SweepPoint>, AnalysisError> {
    let _span = Span::enter(recorder, Phase::MtbddEval);
    if spec.component >= compiled.baseline_up().len() {
        return Err(SweepError::ComponentOutOfRange(spec.component).into());
    }
    if !(0.0..=1.0).contains(&spec.from) || !(0.0..=1.0).contains(&spec.to) {
        return Err(SweepError::BoundOutOfRange.into());
    }
    let points = availability_points(spec.from, spec.to, spec.steps);
    let mut out = Vec::with_capacity(points.len());
    for chunk in points.chunks(SWEEP_CHUNK) {
        fmperf_obs::add(recorder, Counter::BudgetPolls, 1);
        guard.check()?;
        let rows: Vec<Vec<f64>> = chunk
            .iter()
            .map(|&a| {
                let mut up = compiled.baseline_up().to_vec();
                up[spec.component] = a;
                up
            })
            .collect();
        let probabilities = compiled.try_batch_probabilities(&rows, spec.threads.max(1))?;
        out.extend(
            chunk
                .iter()
                .zip(probabilities)
                .map(|(&availability, probabilities)| SweepPoint {
                    availability,
                    probabilities,
                }),
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analysis;
    use fmperf_ftlqn::examples::das_woodside_system;
    use fmperf_mama::{arch, ComponentSpace, KnowTable};

    #[test]
    fn availability_points_are_inclusive_and_even() {
        assert!(availability_points(0.2, 0.8, 0).is_empty());
        assert_eq!(availability_points(0.2, 0.8, 1), vec![0.2]);
        let pts = availability_points(0.0, 1.0, 5);
        assert_eq!(pts, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn sweep_endpoint_matches_direct_evaluation() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let mama = arch::centralized(&sys, 0.1);
        let space = ComponentSpace::build(&sys.model, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        let analysis = Analysis::new(&graph, &space).with_knowledge(&table);
        let compiled = analysis.compile_mtbdd();
        let target = compiled.fallible_indices()[0];
        let spec = SweepSpec {
            component: target,
            from: 0.5,
            to: 1.0,
            steps: 3,
            threads: 2,
        };
        let pts = sweep(&compiled, &spec).unwrap();
        assert_eq!(pts.len(), 3);
        for pt in &pts {
            let mut up = compiled.baseline_up().to_vec();
            up[target] = pt.availability;
            let direct = compiled.probabilities_for(&up);
            for (a, b) in pt.probabilities.iter().zip(&direct) {
                assert!((a - b).abs() < 1e-15);
            }
            let total: f64 = pt.probabilities.iter().sum();
            assert!((total - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sweep_rejects_bad_specs() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let space = ComponentSpace::app_only(&sys.model);
        let analysis = Analysis::new(&graph, &space);
        let compiled = analysis.compile_mtbdd();
        let bad_ix = SweepSpec {
            component: 10_000,
            from: 0.0,
            to: 1.0,
            steps: 2,
            threads: 1,
        };
        assert_eq!(
            sweep(&compiled, &bad_ix),
            Err(SweepError::ComponentOutOfRange(10_000))
        );
        let bad_bound = SweepSpec {
            component: 0,
            from: -0.5,
            to: 1.0,
            steps: 2,
            threads: 1,
        };
        assert_eq!(
            sweep(&compiled, &bad_bound),
            Err(SweepError::BoundOutOfRange)
        );
    }
}
