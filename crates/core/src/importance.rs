//! Rare-event importance sampling of the configuration distribution.
//!
//! Naive Monte Carlo ([`Analysis::monte_carlo`]) draws component states
//! from their nominal probabilities, so a component that fails with
//! probability `1e-4` is seen down once every ten thousand samples — the
//! outage states that determine coverage are almost never visited and the
//! estimator is *sample-starved*.  This module estimates the same
//! distribution by sampling from a **biased proposal** and reweighting
//! each draw with its exact likelihood ratio, which keeps the estimator
//! unbiased while concentrating samples on the failure states:
//!
//! * **Balanced failure biasing** — every fallible component's failure
//!   probability is raised to at least `bias / N` (capped at `1/2`), so a
//!   proposal draw fails about [`ImportanceOptions::bias`] components in
//!   expectation regardless of how rare the nominal failures are.  The
//!   per-bit twist keeps the likelihood ratio a product of per-component
//!   factors that the sampler accumulates in log space.
//! * **Defensive mixture** — states are drawn from
//!   `q_mix = λ·p + (1−λ)·q` (`λ` = [`ImportanceOptions::mixture`]),
//!   which bounds every weight by `1/λ` and therefore bounds the weight
//!   variance even when the twist is badly tuned for the model at hand.
//! * **Weighted batch means** — `samples` are split over batches; each
//!   batch's weighted failure mass feeds the same Student-t machinery as
//!   the plain estimator ([`fmperf_sim::BatchMeans`]), now also at the
//!   99% level used by the differential-validation contract, plus the
//!   effective sample size `ESS = (Σw)²/Σw²` and the weight coefficient
//!   of variation as self-consistency gates for sizes where no exact
//!   answer exists.
//!
//! Samples are resolved through the compiled kernel's masked evaluator
//! and flat decision memo whenever the model compiles (≤ 64 fallible
//! components); larger models — the 50–500-component synthesized planes
//! this engine exists for — fall back to the canonical per-state
//! evaluator, consuming the RNG in exactly the same order so estimates
//! are seed-reproducible on either path.

use crate::analysis::{Analysis, Knowledge};
use crate::budget::{AnalysisError, BudgetGuard, EstimateInfo, IsInfo};
use crate::distribution::ConfigDistribution;
use fmperf_ftlqn::PerfectKnowledge;
use fmperf_obs::{Counter, Phase, Span};
use fmperf_sim::BatchMeans;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default failure-biasing strength: expected biased component failures
/// per proposal draw.  `1.0` is optimal when order-1 cut sets dominate
/// the failure probability (the common case for well-designed planes);
/// raise it when deeper joint failures matter.
pub const DEFAULT_BIAS: f64 = 1.0;

/// Default defensive-mixture weight of the nominal measure: bounds every
/// likelihood-ratio weight by `1/λ = 5` at a ≤ 20% variance-reduction
/// sacrifice.
pub const DEFAULT_MIXTURE: f64 = 0.2;

/// Batches for [`Analysis::importance`] (matching the guarded ladder's
/// Monte Carlo rung).
const IS_BATCHES: u64 = 20;

/// Options for [`Analysis::importance`].
#[derive(Debug, Clone, Copy)]
pub struct ImportanceOptions {
    /// Number of proposal draws.
    pub samples: u64,
    /// RNG seed (identical seeds give identical estimates).
    pub seed: u64,
    /// Failure-biasing strength: expected biased failures per draw
    /// (see [`DEFAULT_BIAS`]).
    pub bias: f64,
    /// Defensive-mixture weight `λ ∈ [0, 1]` of the nominal measure
    /// (see [`DEFAULT_MIXTURE`]; `1.0` degenerates to plain Monte
    /// Carlo).  Values outside `[0, 1]` are clamped.
    pub mixture: f64,
}

impl Default for ImportanceOptions {
    fn default() -> Self {
        ImportanceOptions {
            samples: 100_000,
            seed: 0xC0FFEE,
            bias: DEFAULT_BIAS,
            mixture: DEFAULT_MIXTURE,
        }
    }
}

/// An importance-sampled estimate with its weighted batch-means
/// provenance.
#[derive(Debug, Clone)]
pub struct ImportanceEstimate {
    /// The pooled configuration distribution: each batch is
    /// self-normalized by its mean weight, then the batches are
    /// averaged, so the total probability is exactly 1 (the raw mean
    /// weight — whose expectation is 1 — is preserved in
    /// [`IsInfo::mean_weight`](crate::budget::IsInfo::mean_weight)).
    pub distribution: ConfigDistribution,
    /// Samples, seed, batches, the failure-probability CI and the
    /// importance-sampling diagnostics ([`EstimateInfo::is`]).
    pub info: EstimateInfo,
    /// Student-t 99% half-width on
    /// [`failed_mean`](EstimateInfo::failed_mean) — the level the
    /// differential-validation contract brackets exact results at.
    pub failed_half_width_99: f64,
}

/// One batch of weighted samples: the weighted distribution plus the
/// weight moments the ESS and weight-CV diagnostics are pooled from.
#[derive(Debug, Clone)]
pub(crate) struct WeightedRun {
    pub(crate) distribution: ConfigDistribution,
    pub(crate) weight_sum: f64,
    pub(crate) weight_sq_sum: f64,
}

/// The likelihood-ratio weight `p(x) / (λ·p(x) + (1−λ)·q(x))` from the
/// log densities of the realized state under the nominal (`log_p`) and
/// proposal (`log_q`) measures.
///
/// Evaluated in log space so 500-bit probability products cannot
/// underflow: the weight only depends on `log_q − log_p`, and the result
/// is bounded by `1/λ` however extreme the ratio gets.  `λ = 1` is the
/// pure-nominal degenerate case where every weight is exactly 1 (kept
/// separate because `0 · ∞` would otherwise poison states with zero
/// nominal probability).
#[inline]
pub(crate) fn likelihood_ratio(log_p: f64, log_q: f64, mixture: f64) -> f64 {
    if mixture >= 1.0 {
        return 1.0;
    }
    1.0 / (mixture + (1.0 - mixture) * (log_q - log_p).exp())
}

/// The balanced failure-biasing proposal: per-bit **up** probabilities
/// derived from the nominal ones by raising every failure probability to
/// at least `min(bias / N, 1/2)`.
///
/// Components that cannot fail (`up = 1`) and components already failing
/// more often than the floor keep their nominal probability — biasing
/// them would either waste draws on zero-probability states or *reduce*
/// the failure rate.
pub fn proposal_up(nominal_up: &[f64], bias: f64) -> Vec<f64> {
    let n = nominal_up.len().max(1) as f64;
    let floor = (bias.max(0.0) / n).min(0.5);
    nominal_up
        .iter()
        .map(|&up| {
            // Leave untouched probabilities bit-identical to nominal so
            // their log-ratio contribution is exactly zero.
            if up >= 1.0 || 1.0 - up >= floor {
                up
            } else {
                1.0 - floor
            }
        })
        .collect()
}

impl Analysis<'_> {
    /// Estimates the configuration distribution by importance sampling
    /// with [`IS_BATCHES`] batches and no budget guard.  Works for any
    /// number of components.
    pub fn importance(&self, options: ImportanceOptions) -> ImportanceEstimate {
        self.importance_batched(options, IS_BATCHES, None)
    }

    /// [`importance`](Analysis::importance) with the degenerate input
    /// surfaced as a typed error.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::NoSamples`] when `options.samples` is zero.
    pub fn try_importance(
        &self,
        options: ImportanceOptions,
    ) -> Result<ImportanceEstimate, AnalysisError> {
        if options.samples == 0 {
            return Err(AnalysisError::NoSamples);
        }
        Ok(self.importance(options))
    }

    /// Batched importance-sampled estimation with weighted batch-means
    /// confidence intervals — the rare-event rung of the degradation
    /// ladder.
    ///
    /// `options.samples` is split over `batches` (at least 2) equal
    /// batches; each batch's weighted failure mass feeds Student-t 95%
    /// and 99% intervals.  With a guard, the deadline is polled *between*
    /// batches once the two-batch minimum has run, so this estimator
    /// always returns a distribution and a finite-df interval even when
    /// the deadline has already expired.
    pub fn importance_batched(
        &self,
        options: ImportanceOptions,
        batches: u64,
        guard: Option<&BudgetGuard>,
    ) -> ImportanceEstimate {
        let _span = Span::enter(self.recorder, Phase::Sampling);
        let batches = batches.max(2);
        let per_batch = (options.samples / batches).max(1);
        let mixture = options.mixture.clamp(0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(options.seed);
        let kernel = self.compile();
        let fallible = self.space.fallible_indices();
        let nominal_up: Vec<f64> = fallible.iter().map(|&ix| self.space.up_prob(ix)).collect();
        let q_up = proposal_up(&nominal_up, options.bias);
        let mut bm = BatchMeans::new();
        let mut merged = ConfigDistribution::new();
        let mut weight_sum = 0.0;
        let mut weight_sq_sum = 0.0;
        let mut completed = 0u64;
        let mut polls = 0u64;
        for b in 0..batches {
            // The first two batches always run: the estimator's contract
            // is to produce a result with a finite-df interval no matter
            // how starved the budget is.
            if b >= 2 {
                if let Some(g) = guard {
                    polls += 1;
                    if g.check().is_err() {
                        break;
                    }
                }
            }
            let run = match &kernel {
                Some(k) => k.importance_run(&mut rng, per_batch, &q_up, mixture),
                None => self.importance_naive(&mut rng, per_batch, &nominal_up, &q_up, mixture),
            };
            // Self-normalize the batch by its mean weight so the batch
            // distribution is a distribution (total exactly 1), like the
            // plain estimator's batches.  The raw mass — whose
            // expectation is 1 — is preserved in the weight moments.
            let scale = if run.weight_sum > 0.0 {
                per_batch as f64 / run.weight_sum
            } else {
                1.0
            };
            let mut batch = ConfigDistribution::new();
            for (config, p) in run.distribution.iter() {
                batch.add(config.clone(), p * scale);
            }
            bm.push_batch(batch.failed_probability());
            merged.merge(batch);
            weight_sum += run.weight_sum;
            weight_sq_sum += run.weight_sq_sum;
            completed += 1;
        }
        // Each batch distribution is normalised to its own batch; the
        // pooled estimate is their average.
        let mut distribution = ConfigDistribution::new();
        for (config, p) in merged.iter() {
            distribution.add(config.clone(), p / completed as f64);
        }
        let drawn = per_batch * completed;
        distribution.set_states_explored(drawn);
        if let Some(r) = self.recorder {
            r.add(Counter::MonteCarloBatches, completed);
            r.add(Counter::BudgetPolls, polls);
        }
        let ci = bm.confidence_interval();
        let ci99 = bm.confidence_interval_99();
        let ess = if weight_sq_sum > 0.0 {
            weight_sum * weight_sum / weight_sq_sum
        } else {
            0.0
        };
        let weight_cv = if weight_sum > 0.0 {
            (drawn as f64 * weight_sq_sum / (weight_sum * weight_sum) - 1.0)
                .max(0.0)
                .sqrt()
        } else {
            f64::INFINITY
        };
        ImportanceEstimate {
            distribution,
            info: EstimateInfo {
                samples: drawn,
                seed: options.seed,
                batches: completed,
                failed_mean: ci.mean,
                failed_half_width: ci.half_width,
                is: Some(IsInfo {
                    ess,
                    weight_cv,
                    mean_weight: weight_sum / drawn as f64,
                    bias: options.bias,
                    mixture,
                }),
            },
            failed_half_width_99: ci99.half_width,
        }
    }

    /// The allocating per-sample weighted estimator — the reference path
    /// the compiled kernel's importance sampler is differentially tested
    /// against, and the only path for models beyond 64 fallible
    /// components.
    fn importance_naive(
        &self,
        rng: &mut StdRng,
        samples: u64,
        nominal_up: &[f64],
        q_up: &[f64],
        mixture: f64,
    ) -> WeightedRun {
        let fallible = self.space.fallible_indices();
        let mut dist = ConfigDistribution::new();
        let mut state = self.space.all_up();
        let inv = 1.0 / samples as f64;
        let mut weight_sum = 0.0;
        let mut weight_sq_sum = 0.0;
        for _ in 0..samples {
            let nominal = rng.gen::<f64>() < mixture;
            let mut log_p = 0.0;
            let mut log_q = 0.0;
            for (b, &ix) in fallible.iter().enumerate() {
                let p = nominal_up[b];
                let q = q_up[b];
                let draw = if nominal { p } else { q };
                let up = rng.gen::<f64>() < draw;
                state[ix] = up;
                if up {
                    log_p += p.ln();
                    log_q += q.ln();
                } else {
                    log_p += (1.0 - p).ln();
                    log_q += (1.0 - q).ln();
                }
            }
            let w = likelihood_ratio(log_p, log_q, mixture);
            let config = match self.knowledge {
                Knowledge::Perfect => {
                    self.graph
                        .configuration(&state, &PerfectKnowledge, self.policy)
                }
                Knowledge::Mama(table) => {
                    let oracle = table
                        .oracle(&state)
                        .default_for_missing(self.unmonitored_known);
                    self.graph.configuration(&state, &oracle, self.policy)
                }
            };
            dist.add(config, w * inv);
            weight_sum += w;
            weight_sq_sum += w * w;
        }
        dist.set_states_explored(samples);
        fmperf_obs::add(self.recorder, Counter::MonteCarloSamples, samples);
        WeightedRun {
            distribution: dist,
            weight_sum,
            weight_sq_sum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmperf_ftlqn::examples::das_woodside_system;
    use fmperf_mama::{arch, ComponentSpace, KnowTable};

    #[test]
    fn proposal_floors_rare_failures_and_keeps_common_ones() {
        let nominal = [1.0 - 1e-5, 0.5, 1.0, 0.2];
        let q = proposal_up(&nominal, 1.0);
        // 1e-5 failure raised to the 1/4 floor.
        assert!((q[0] - 0.75).abs() < 1e-12);
        // Already failing past the floor: untouched.
        assert_eq!(q[1], 0.5);
        // Cannot fail: untouched (biasing it would sample impossible
        // states).
        assert_eq!(q[2], 1.0);
        assert_eq!(q[3], 0.2);
        // The floor caps at 1/2 for aggressive bias settings.
        let q = proposal_up(&[1.0 - 1e-5, 1.0 - 1e-5], 100.0);
        assert_eq!(q, vec![0.5, 0.5]);
    }

    #[test]
    fn likelihood_ratio_is_bounded_and_degenerates() {
        // λ bounds the weight from above ...
        assert!(likelihood_ratio(0.0, -800.0, 0.2) <= 1.0 / 0.2 + 1e-12);
        // ... zero nominal probability zeroes the weight ...
        assert_eq!(likelihood_ratio(f64::NEG_INFINITY, -1.0, 0.2), 0.0);
        // ... and λ = 1 is plain Monte Carlo, weight exactly 1 even for
        // impossible states.
        assert_eq!(likelihood_ratio(f64::NEG_INFINITY, -1.0, 1.0), 1.0);
        assert_eq!(likelihood_ratio(-3.0, -3.0, 0.2), 1.0);
    }

    #[test]
    fn kernel_sampler_matches_naive_bit_for_bit() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let mama = arch::hierarchical(&sys, 0.1);
        let space = ComponentSpace::build(&sys.model, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        let analysis = Analysis::new(&graph, &space).with_knowledge(&table);
        assert!(analysis.compile().is_some());
        let options = ImportanceOptions {
            samples: 20_000,
            seed: 42,
            ..ImportanceOptions::default()
        };
        // The kernel path consumed by `importance` vs the explicit naive
        // path with the same seed: weighted estimates must be equal, not
        // merely close.
        let compiled = analysis.importance(options);
        let fallible = analysis.space.fallible_indices();
        let nominal_up: Vec<f64> = fallible
            .iter()
            .map(|&ix| analysis.space.up_prob(ix))
            .collect();
        let q_up = proposal_up(&nominal_up, options.bias);
        let mut rng = StdRng::seed_from_u64(options.seed);
        let per_batch = options.samples / IS_BATCHES;
        let mut merged = ConfigDistribution::new();
        let mut wsum = 0.0;
        let mut wsq = 0.0;
        for _ in 0..IS_BATCHES {
            let run =
                analysis.importance_naive(&mut rng, per_batch, &nominal_up, &q_up, options.mixture);
            let scale = per_batch as f64 / run.weight_sum;
            for (config, p) in run.distribution.iter() {
                merged.add(config.clone(), p * scale);
            }
            wsum += run.weight_sum;
            wsq += run.weight_sq_sum;
        }
        let mut naive = ConfigDistribution::new();
        for (config, p) in merged.iter() {
            naive.add(config.clone(), p / IS_BATCHES as f64);
        }
        naive.set_states_explored(per_batch * IS_BATCHES);
        assert_eq!(compiled.distribution, naive);
        let is = compiled.info.is.unwrap();
        assert_eq!(is.ess, wsum * wsum / wsq);
    }

    #[test]
    fn weighted_estimate_covers_exact_on_the_paper_model() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let mama = arch::centralized(&sys, 0.1);
        let space = ComponentSpace::build(&sys.model, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        let analysis = Analysis::new(&graph, &space).with_knowledge(&table);
        let exact = analysis.enumerate().failed_probability();
        let est = analysis.importance(ImportanceOptions {
            samples: 200_000,
            seed: 7,
            ..ImportanceOptions::default()
        });
        assert!(
            (est.info.failed_mean - exact).abs() <= est.failed_half_width_99,
            "99% CI {} ± {} must cover exact {exact}",
            est.info.failed_mean,
            est.failed_half_width_99
        );
        // The pooled distribution is self-normalized to exactly 1, and
        // the raw mean weight — an unbiased estimate of 1 — stays close.
        assert!((est.distribution.total_probability() - 1.0).abs() < 1e-9);
        let is = est.info.is.unwrap();
        assert!((is.mean_weight - 1.0).abs() < 0.05);
        assert!(is.ess > 0.0 && is.ess <= est.info.samples as f64);
        assert!(is.weight_cv.is_finite());
    }

    #[test]
    fn mixture_one_reduces_to_plain_monte_carlo() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let space = ComponentSpace::app_only(&sys.model);
        let analysis = Analysis::new(&graph, &space);
        let est = analysis.importance(ImportanceOptions {
            samples: 10_000,
            seed: 3,
            bias: 1.0,
            mixture: 1.0,
        });
        // Every weight is exactly 1, so the weighted mass is exactly the
        // sample mass.
        assert!((est.distribution.total_probability() - 1.0).abs() < 1e-9);
        let is = est.info.is.unwrap();
        assert!((is.ess - est.info.samples as f64).abs() < 1e-6);
        assert!(is.weight_cv.abs() < 1e-9);
        assert_eq!(is.mean_weight, 1.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let space = ComponentSpace::app_only(&sys.model);
        let analysis = Analysis::new(&graph, &space);
        let opts = ImportanceOptions {
            samples: 10_000,
            seed: 11,
            ..ImportanceOptions::default()
        };
        let a = analysis.importance(opts);
        let b = analysis.importance(opts);
        assert_eq!(a.distribution.max_abs_diff(&b.distribution), 0.0);
        assert_eq!(a.info, b.info);
        let c = analysis.importance(ImportanceOptions { seed: 12, ..opts });
        assert!(a.distribution.max_abs_diff(&c.distribution) > 0.0);
    }

    #[test]
    fn zero_samples_is_a_typed_error() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let space = ComponentSpace::app_only(&sys.model);
        let analysis = Analysis::new(&graph, &space);
        assert!(matches!(
            analysis.try_importance(ImportanceOptions {
                samples: 0,
                ..ImportanceOptions::default()
            }),
            Err(AnalysisError::NoSamples)
        ));
    }
}
