//! Symbolic structural audit: minimal cut sets, SPOF proofs and
//! provable coverage gaps.
//!
//! The campaign machinery ([`crate::campaign`]) answers the coverage
//! question *dynamically*: inject a management fault, re-analyse, read
//! the loss.  This module answers it *statically*, from the compiled
//! Boolean structure alone:
//!
//! * **Application-plane cut sets** — minimal sets of application
//!   components whose joint failure (management held up, so every
//!   failure is detected) leaves no user chain operational.  The system
//!   structure function is compiled to one BDD by the same
//!   region-enumeration the symbolic engine uses ([`crate::symbolic`]),
//!   and cuts are extracted with [`Bdd::minimal_cuts`].
//! * **Management-plane cut sets** — minimal sets of management
//!   elements (managers, agents, management processors, connectors)
//!   whose joint failure destroys *all* coverage: no deciding task can
//!   learn the state of any component it needs to know about.  Order-1
//!   cuts are structural single points of failure — the centralized
//!   architecture's manager is the canonical example.
//! * **Provably-uncovered components** — decision-relevant components
//!   whose `know` guard is unsatisfiable: their failure can never be
//!   detected, under any fault pattern.
//! * **Dead management edges** — watch/notify connectors that appear in
//!   no know-guard's support: severing them cannot affect coverage.
//! * **Birnbaum criticality** — `∂ Pr[system operational] / ∂ p_i` for
//!   every fallible element, read off the BDD's lo/hi cofactors.
//!
//! Every static claim is falsifiable dynamically: [`replay_mgmt_cut`]
//! re-derives a reported management cut as a [`fmperf_mama::inject`]
//! scenario and checks the rebuilt know table really loses all
//! coverage, and [`replay_app_cut`] drives the configuration evaluator
//! at the cut's state vector.  The differential tests in
//! `tests/audit_structural.rs` additionally run the converse direction
//! (no dynamic finding of order ≤ k that the audit missed).

use crate::analysis::Analysis;
use crate::campaign::covered_components;
use crate::know_guards::{GuardBuilder, KnowCache};
use fmperf_bdd::{Bdd, NodeRef};
use fmperf_ftlqn::{Component, FaultGraph, KnowPolicy};
use fmperf_mama::inject::{injection_for_element, Scenario};
use fmperf_mama::model::MamaComponentKind;
use fmperf_mama::{ComponentSpace, KnowTable, MamaModel};
use std::collections::BTreeMap;
use std::fmt;

/// Options of the structural audit.
#[derive(Debug, Clone, Copy)]
pub struct AuditOptions {
    /// Maximum cut-set order to search (default 3).
    pub max_order: usize,
    /// Skipped-alternative knowledge policy (see
    /// [`Analysis::with_policy`]).
    pub policy: KnowPolicy,
    /// Treat unmonitored components as vacuously known (see
    /// [`Analysis::with_unmonitored_known`]).  Under this flag no
    /// component is ever provably uncovered.
    pub unmonitored_known: bool,
}

impl Default for AuditOptions {
    fn default() -> AuditOptions {
        AuditOptions {
            max_order: 3,
            policy: KnowPolicy::AnyFailedComponent,
            unmonitored_known: false,
        }
    }
}

/// Why an audit could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditError {
    /// Building the structure function enumerates `2^A` application
    /// states; beyond this many fallible application components that is
    /// infeasible.
    TooLarge {
        /// Fallible application components in the model.
        fallible: usize,
        /// The audit's enumeration ceiling.
        limit: usize,
    },
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::TooLarge { fallible, limit } => write!(
                f,
                "{fallible} fallible application components exceed the audit's \
                 structure-function ceiling of {limit} (2^A region enumeration)"
            ),
        }
    }
}

impl std::error::Error for AuditError {}

/// A decision-relevant component whose failure can never be detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UncoveredComponent {
    /// Component name.
    pub name: String,
    /// `true` when know paths exist but none can ever hold (every path
    /// rides a certainly-failed element); `false` when no deciding task
    /// has any knowledge path at all.
    pub has_paths: bool,
}

/// Management-plane findings (absent for app-only models).
#[derive(Debug, Clone)]
pub struct MgmtAudit {
    /// Components some deciding task can learn about with everything up
    /// — the reference set all coverage cuts are measured against.
    pub baseline_covered: Vec<String>,
    /// Minimal sets of management elements whose joint failure empties
    /// the covered set, up to the audit's `max_order`.  Order-1 cuts
    /// are management-plane SPOFs.
    pub cuts: Vec<Vec<String>>,
    /// Decision-relevant components whose failure is provably never
    /// detected.
    pub uncovered: Vec<UncoveredComponent>,
    /// Watch/notify connectors appearing in no know-guard support:
    /// they can never affect coverage.
    pub dead_edges: Vec<String>,
}

impl MgmtAudit {
    /// Names of the order-1 coverage cuts (management-plane SPOFs).
    pub fn spofs(&self) -> Vec<&str> {
        self.cuts
            .iter()
            .filter(|c| c.len() == 1)
            .map(|c| c[0].as_str())
            .collect()
    }
}

/// The complete result of a structural audit.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// The `max_order` the cut search ran with.
    pub max_order: usize,
    /// Total indexed elements (components + connectors).
    pub components: usize,
    /// Elements with up-probability below 1.
    pub fallible: usize,
    /// `true` when the system is failed even with every element up
    /// (degenerate model; the cut lists are then empty).
    pub baseline_failed: bool,
    /// Minimal application-plane cut sets up to `max_order`, management
    /// held up.  Order-1 cuts are application SPOFs.
    pub app_cuts: Vec<Vec<String>>,
    /// Management-plane findings, when the model has a management
    /// architecture.
    pub mgmt: Option<MgmtAudit>,
    /// Birnbaum criticality `Pr[op | i up] − Pr[op | i down]` per
    /// fallible element, sorted descending.
    pub criticality: Vec<(String, f64)>,
}

impl AuditReport {
    /// Names of the order-1 application cuts (application SPOFs).
    pub fn app_spofs(&self) -> Vec<&str> {
        self.app_cuts
            .iter()
            .filter(|c| c.len() == 1)
            .map(|c| c[0].as_str())
            .collect()
    }

    /// Names of the order-1 management cuts, if a management plane was
    /// audited.
    pub fn mgmt_spofs(&self) -> Vec<&str> {
        self.mgmt.as_ref().map(MgmtAudit::spofs).unwrap_or_default()
    }
}

/// Ceiling on fallible application components: the structure function
/// enumerates `2^A · 2^S` evaluator regions, like [`Analysis::symbolic`].
pub const MAX_APP_FALLIBLE: usize = 20;

/// Runs the structural audit (see the [module docs](self)).
///
/// Pass `mama: None` (or a management model with no components) to
/// audit the application plane alone.
///
/// # Errors
///
/// [`AuditError::TooLarge`] when more than [`MAX_APP_FALLIBLE`]
/// application components are fallible.
pub fn audit(
    graph: &FaultGraph<'_>,
    mama: Option<&MamaModel>,
    opts: &AuditOptions,
) -> Result<AuditReport, AuditError> {
    let ft = graph.model();
    let mama = mama.filter(|m| m.component_count() > 0);
    let space = match mama {
        Some(m) => ComponentSpace::build(ft, m),
        None => ComponentSpace::app_only(ft),
    };
    let table = mama.map(|m| KnowTable::build(graph, m, &space));
    let mut analysis = Analysis::new(graph, &space)
        .with_policy(opts.policy)
        .with_unmonitored_known(opts.unmonitored_known);
    if let Some(t) = &table {
        analysis = analysis.with_knowledge(t);
    }

    let app_fallible: Vec<usize> = space
        .fallible_indices()
        .into_iter()
        .filter(|&ix| ix < space.app_count())
        .collect();
    if app_fallible.len() > MAX_APP_FALLIBLE {
        return Err(AuditError::TooLarge {
            fallible: app_fallible.len(),
            limit: MAX_APP_FALLIBLE,
        });
    }

    // --- Compile the "system operational" structure function: OR over
    // (application cube ∧ signed know-guards) of every region whose
    // configuration keeps at least one user chain running.  Same region
    // factoring as the symbolic engine, but the application variables
    // stay symbolic so cuts can be read off one diagram.
    let mut bdd = Bdd::new(space.len());
    let guards = GuardBuilder::new(&analysis);
    let mut cache: KnowCache<NodeRef> = KnowCache::new();
    let n_services = ft.service_count();
    let mut f_op = NodeRef::FALSE;
    let mut state = space.all_up();
    for mask in 0..(1u64 << app_fallible.len()) {
        let mut cube = NodeRef::TRUE;
        for (bit, &ix) in app_fallible.iter().enumerate() {
            let up = mask & (1 << bit) != 0;
            state[ix] = up;
            let lit = if up { bdd.var(ix) } else { bdd.nvar(ix) };
            cube = bdd.and(cube, lit);
        }
        for sigma in 0..(1u64 << n_services) {
            let outcomes: Vec<bool> = (0..n_services).map(|s| sigma & (1 << s) != 0).collect();
            let (config, decisions) = graph.configuration_with_outcomes(&state, &outcomes);
            // Canonical form, as in the symbolic engine: an unconsulted
            // service must carry σ_s = false.
            if decisions
                .iter()
                .zip(&outcomes)
                .any(|(d, &o)| d.is_none() && o)
            {
                continue;
            }
            if config.is_failed() {
                continue;
            }
            let mut g = cube;
            for (s, decision) in decisions.iter().enumerate() {
                let Some(d) = decision else { continue };
                let guard = guards.decision_guard(&mut bdd, &mut cache, d);
                let signed = if outcomes[s] { guard } else { bdd.not(guard) };
                g = bdd.and(g, signed);
                if g.is_false() {
                    break;
                }
            }
            f_op = bdd.or(f_op, g);
        }
    }

    // Baseline point: everything up except deterministically-down
    // elements — the same point the campaign's coverage probe uses.
    let baseline: Vec<bool> = (0..space.len()).map(|ix| space.up_prob(ix) > 0.0).collect();
    let baseline_failed = !bdd.evaluate(f_op, &baseline);
    let f_fail = bdd.not(f_op);

    // --- Application-plane cuts: application candidates only, the
    // management plane held at its baseline (all up), so every cut is a
    // pure application failure pattern.
    let app_candidates: Vec<usize> = app_fallible
        .iter()
        .copied()
        .filter(|&ix| baseline[ix])
        .collect();
    let app_cuts = if baseline_failed {
        Vec::new()
    } else {
        name_sets(
            &space,
            bdd.minimal_cuts(f_fail, &baseline, &app_candidates, opts.max_order),
        )
    };

    // --- Birnbaum criticality via the lo/hi cofactor path.
    let up_probs: Vec<f64> = (0..space.len()).map(|ix| space.up_prob(ix)).collect();
    let mut criticality: Vec<(String, f64)> = space
        .fallible_indices()
        .into_iter()
        .map(|ix| {
            (
                space.name(ix).to_string(),
                bdd.birnbaum(f_op, ix, &up_probs),
            )
        })
        .collect();
    criticality.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));

    // --- Management plane.
    let mgmt = match (mama, &table) {
        (Some(m), Some(t)) => {
            // Per-component coverage: OR of know(c, decider) over every
            // decider that may consult c.  The guards are monotone, so
            // satisfiability equals truth at the baseline point.
            let mut cov: BTreeMap<Component, NodeRef> = BTreeMap::new();
            for (&(c, decider), _) in t.iter() {
                let k = guards.know(&mut bdd, &mut cache, c, decider);
                let acc = cov.entry(c).or_insert(NodeRef::FALSE);
                *acc = bdd.or(*acc, k);
            }
            let covered: Vec<(Component, NodeRef)> = cov
                .iter()
                .filter(|(_, &g)| bdd.evaluate(g, &baseline))
                .map(|(&c, &g)| (c, g))
                .collect();
            let mut baseline_covered: Vec<String> = covered
                .iter()
                .map(|&(c, _)| ft.component_name(c).to_string())
                .collect();
            baseline_covered.sort();

            // Candidates are exactly the injectable elements: managers,
            // agents, management processors and connectors.
            let mut candidates: Vec<usize> = Vec::new();
            for id in m.component_ids() {
                match m.component(id).kind {
                    MamaComponentKind::MgmtTask { .. }
                    | MamaComponentKind::MgmtProcessor { .. } => {
                        candidates.push(space.mama_index(id));
                    }
                    _ => {}
                }
            }
            for cid in m.connector_ids() {
                candidates.push(space.connector_index(cid));
            }
            candidates.retain(|&ix| baseline[ix]);

            // A management cut empties the covered set: every covered
            // component's coverage function goes false.
            let cuts = if covered.is_empty() {
                Vec::new()
            } else {
                let mut lose_all = NodeRef::TRUE;
                for &(_, g) in &covered {
                    let lost = bdd.not(g);
                    lose_all = bdd.and(lose_all, lost);
                }
                name_sets(
                    &space,
                    bdd.minimal_cuts(lose_all, &baseline, &candidates, opts.max_order),
                )
            };

            // Provably-uncovered components: decision-relevant (they
            // have a know-table entry) yet unsatisfiable coverage.
            let mut uncovered: Vec<UncoveredComponent> = cov
                .iter()
                .filter(|(_, &g)| !bdd.evaluate(g, &baseline))
                .map(|(&c, _)| {
                    let has_paths = t.iter().any(|(&(tc, _), f)| tc == c && !f.is_never());
                    UncoveredComponent {
                        name: ft.component_name(c).to_string(),
                        has_paths,
                    }
                })
                .collect();
            uncovered.sort_by(|a, b| a.name.cmp(&b.name));

            // Dead edges: connectors in no guard's support.
            let mut live: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
            for (&(c, decider), _) in t.iter() {
                let k = guards.know(&mut bdd, &mut cache, c, decider);
                live.extend(bdd.support(k));
            }
            let dead_edges: Vec<String> = m
                .connector_ids()
                .filter(|&cid| !live.contains(&space.connector_index(cid)))
                .map(|cid| m.connector(cid).name.clone())
                .collect();

            Some(MgmtAudit {
                baseline_covered,
                cuts,
                uncovered,
                dead_edges,
            })
        }
        _ => None,
    };

    Ok(AuditReport {
        max_order: opts.max_order,
        components: space.len(),
        fallible: space.fallible_indices().len(),
        baseline_failed,
        app_cuts,
        mgmt,
        criticality,
    })
}

/// Maps index sets to sorted name sets, sorted by (order, names).
fn name_sets(space: &ComponentSpace, cuts: Vec<Vec<usize>>) -> Vec<Vec<String>> {
    let mut named: Vec<Vec<String>> = cuts
        .into_iter()
        .map(|cut| {
            let mut names: Vec<String> = cut
                .into_iter()
                .map(|ix| space.name(ix).to_string())
                .collect();
            names.sort();
            names
        })
        .collect();
    named.sort_by(|a, b| (a.len(), a.as_slice()).cmp(&(b.len(), b.as_slice())));
    named
}

/// Outcome of replaying one audit finding dynamically.
#[derive(Debug, Clone)]
pub struct CutConfirmation {
    /// The element names of the replayed cut.
    pub elements: Vec<String>,
    /// The injection-scenario label (management cuts) or the state
    /// description (application cuts).
    pub label: String,
    /// `true` when the dynamic replay confirms the static claim.
    pub confirmed: bool,
    /// Baseline-covered components lost under the injection
    /// (management cuts only).
    pub coverage_loss: Option<usize>,
}

/// Replays a management-plane cut as a concrete injection scenario:
/// every element is pinned down via [`fmperf_mama::inject`], the
/// component space and know table are rebuilt from the injected model,
/// and the static coverage probe must come back empty.
///
/// # Errors
///
/// An element name that maps to no injectable management element.
pub fn replay_mgmt_cut(
    graph: &FaultGraph<'_>,
    mama: &MamaModel,
    cut: &[String],
) -> Result<CutConfirmation, String> {
    let injections = cut
        .iter()
        .map(|name| {
            injection_for_element(mama, name)
                .ok_or_else(|| format!("`{name}` is not an injectable management element"))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let scenario = Scenario { injections };
    let label = scenario.label(mama);
    let injected = scenario.apply(mama);

    let base_space = ComponentSpace::build(graph.model(), mama);
    let base_table = KnowTable::build(graph, mama, &base_space);
    let baseline = covered_components(graph, &base_space, &base_table);

    let space = ComponentSpace::build(graph.model(), &injected);
    let table = KnowTable::build(graph, &injected, &space);
    let covered = covered_components(graph, &space, &table);

    Ok(CutConfirmation {
        elements: cut.to_vec(),
        label,
        confirmed: covered.is_empty(),
        coverage_loss: Some(baseline.difference(&covered).count()),
    })
}

/// Replays an application-plane cut through the configuration
/// evaluator: with the cut's components down, the management plane up
/// and knowledge answered by the real know table, the system must be
/// failed — and must be operational again with any single member
/// restored (minimality).
///
/// # Errors
///
/// An element name not present in the component space.
pub fn replay_app_cut(
    graph: &FaultGraph<'_>,
    mama: Option<&MamaModel>,
    cut: &[String],
    opts: &AuditOptions,
) -> Result<CutConfirmation, String> {
    let ft = graph.model();
    let mama = mama.filter(|m| m.component_count() > 0);
    let space = match mama {
        Some(m) => ComponentSpace::build(ft, m),
        None => ComponentSpace::app_only(ft),
    };
    let table = mama.map(|m| KnowTable::build(graph, m, &space));
    let mut analysis = Analysis::new(graph, &space)
        .with_policy(opts.policy)
        .with_unmonitored_known(opts.unmonitored_known);
    if let Some(t) = &table {
        analysis = analysis.with_knowledge(t);
    }

    let index_of = |name: &str| -> Result<usize, String> {
        (0..space.len())
            .find(|&ix| space.name(ix) == name)
            .ok_or_else(|| format!("`{name}` is not a component of this model"))
    };
    let mut state: Vec<bool> = (0..space.len()).map(|ix| space.up_prob(ix) > 0.0).collect();
    let mut indices = Vec::with_capacity(cut.len());
    for name in cut {
        let ix = index_of(name)?;
        state[ix] = false;
        indices.push(ix);
    }
    let mut confirmed = analysis.configuration_of(&state).is_failed();
    // Minimality: restoring any single member must recover the system.
    for &ix in &indices {
        state[ix] = true;
        confirmed &= !analysis.configuration_of(&state).is_failed();
        state[ix] = false;
    }
    Ok(CutConfirmation {
        elements: cut.to_vec(),
        label: format!("down({})", cut.join(" + ")),
        confirmed,
        coverage_loss: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmperf_ftlqn::examples::das_woodside_system;
    use fmperf_mama::arch;

    fn app_cut_names() -> Vec<Vec<&'static str>> {
        // Hand-derived: the system fails iff both user chains are dead.
        // Chain A dies with AppA/proc1 or both servers; chain B with
        // AppB/proc2 or both servers (a server is dead with its task or
        // its processor down).  All minimal cuts are therefore order-2:
        // one element per chain head, or one element per server.
        vec![
            vec!["AppA", "AppB"],
            vec!["AppA", "proc2"],
            vec!["AppB", "proc1"],
            vec!["AppB", "proc3", "proc4"], // never minimal: superset check below
        ]
    }

    #[test]
    fn app_plane_cuts_of_the_paper_system_are_the_eight_order_two_sets() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let report = audit(&graph, None, &AuditOptions::default()).unwrap();
        assert!(!report.baseline_failed);
        assert!(report.app_spofs().is_empty());
        let expected: Vec<Vec<String>> = [
            ["AppA", "AppB"],
            ["AppA", "proc2"],
            ["AppB", "proc1"],
            ["Server1", "Server2"],
            ["Server1", "proc4"],
            ["Server2", "proc3"],
            ["proc1", "proc2"],
            ["proc3", "proc4"],
        ]
        .iter()
        .map(|c| c.iter().map(|s| s.to_string()).collect())
        .collect();
        assert_eq!(report.app_cuts, expected);
        // The helper's order-3 superset is indeed not minimal.
        assert!(app_cut_names()
            .iter()
            .any(|c| c.len() == 3 && !report.app_cuts.iter().any(|r| r.len() == 3)));
    }

    #[test]
    fn centralized_manager_is_an_order_one_management_cut() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let mama = arch::centralized(&sys, 0.1);
        let report = audit(&graph, Some(&mama), &AuditOptions::default()).unwrap();
        let spofs = report.mgmt_spofs();
        assert!(spofs.contains(&"m1"), "{spofs:?}");
        let mgmt = report.mgmt.as_ref().unwrap();
        assert!(!mgmt.baseline_covered.is_empty());
    }

    #[test]
    fn hierarchical_has_no_order_one_management_cut() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let mama = arch::hierarchical(&sys, 0.1);
        let report = audit(&graph, Some(&mama), &AuditOptions::default()).unwrap();
        assert!(report.mgmt_spofs().is_empty(), "{:?}", report.mgmt_spofs());
    }

    #[test]
    fn replayed_management_spof_loses_all_coverage() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let mama = arch::centralized(&sys, 0.1);
        let report = audit(&graph, Some(&mama), &AuditOptions::default()).unwrap();
        for cut in &report.mgmt.as_ref().unwrap().cuts {
            let conf = replay_mgmt_cut(&graph, &mama, cut).unwrap();
            assert!(conf.confirmed, "{}", conf.label);
            assert!(conf.coverage_loss.unwrap() > 0, "{}", conf.label);
        }
    }

    #[test]
    fn replayed_app_cuts_fail_the_evaluator() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let opts = AuditOptions::default();
        let report = audit(&graph, None, &opts).unwrap();
        for cut in &report.app_cuts {
            let conf = replay_app_cut(&graph, None, cut, &opts).unwrap();
            assert!(conf.confirmed, "{}", conf.label);
        }
    }

    #[test]
    fn criticality_is_reported_for_every_fallible_element() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let mama = arch::centralized(&sys, 0.1);
        let report = audit(&graph, Some(&mama), &AuditOptions::default()).unwrap();
        let space = ComponentSpace::build(&sys.model, &mama);
        assert_eq!(report.criticality.len(), space.fallible_indices().len());
        // Birnbaum values are sorted descending.
        for w in report.criticality.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
