//! The MTBDD engine: compile the complete state→configuration map once,
//! then evaluate any availability vector in time linear in the diagram.
//!
//! The [`symbolic`](crate::symbolic) engine already avoids the `2^(A+M)`
//! scan, but it still pays its `2^A · 2^S` BDD evaluations *per
//! availability vector* — sweeps, sensitivity studies and repeated
//! what-if analyses re-walk everything for every parameter point.  This
//! engine factors the work differently: the entire function
//!
//! ```text
//! (joint component up/down state) → (operational configuration)
//! ```
//!
//! is compiled into **one multi-terminal BDD per common-cause context**,
//! with interned configuration ids at the terminals
//! ([`fmperf_bdd::mtbdd`]).  Construction enumerates, exactly as the
//! symbolic engine does, the `2^A` application states and the canonical
//! service-outcome vectors, but instead of evaluating a probability per
//! region it conjoins the region's formula — application-state cube ∧
//! signed know-guards — and writes the configuration id into the diagram
//! with a generalised `ite`.  The regions are disjoint and cover the full
//! state space (asserted: the build starts from a sentinel terminal and
//! the sentinel must be unreachable in the final diagram).
//!
//! After the one-time compile the diagram is [frozen]
//! (level-ordered arrays) and a complete [`ConfigDistribution`] for *any*
//! availability vector is a single top-down pass over `O(|diagram|)`
//! nodes — no `2^A` or `2^(A+M)` term — and exact per-component reward
//! sensitivities (`E[reward | i up] − E[reward | i down]`) fall out of
//! the lo/hi co-factors in the same pass.
//!
//! [frozen]: fmperf_bdd::FrozenMtbdd

use crate::analysis::Analysis;
use crate::budget::{AnalysisError, BudgetGuard};
use crate::ccf::FailureDependencies;
use crate::distribution::ConfigDistribution;
use crate::know_guards::{GuardBuilder, KnowCache};
use crate::sensitivity::Sensitivity;
use fmperf_bdd::{FrozenMtbdd, MtRef, Mtbdd};
use fmperf_ftlqn::Configuration;
use fmperf_obs::{Counter, Phase, Span};
use std::collections::{BTreeMap, BTreeSet};

/// Sentinel terminal value marking states no region claimed.  The build
/// asserts it is unreachable in the final diagram (the regions partition
/// the state space).
const UNREACHED: u64 = u64::MAX;

/// One common-cause context: the frozen diagram for the state space with
/// the group's members forced down, weighted by the group-mask
/// probability.
struct MtContext {
    gprob: f64,
    frozen: FrozenMtbdd,
    /// Frozen terminal slot → index into [`CompiledMtbdd::configs`].
    config_of: Vec<u32>,
}

/// The compiled state→configuration map of one analysis.
///
/// Built by [`Analysis::compile_mtbdd`]; evaluation methods never touch
/// the fault graph or know table again, so a single compile amortises
/// over arbitrarily many availability vectors.
pub struct CompiledMtbdd {
    configs: Vec<Configuration>,
    contexts: Vec<MtContext>,
    up_probs: Vec<f64>,
    fallible: Vec<usize>,
    node_count: usize,
}

impl Analysis<'_> {
    /// Compiles the complete *(component states → configuration)* map
    /// into a multi-terminal BDD (see the [module docs](crate::mtbdd_engine)).
    ///
    /// # Panics
    ///
    /// Panics if more than 30 *application* components are fallible.
    pub fn compile_mtbdd(&self) -> CompiledMtbdd {
        self.compile_mtbdd_masked(None)
    }

    /// [`compile_mtbdd`](Analysis::compile_mtbdd) with common-cause
    /// failure dependencies: one diagram per group mask with positive
    /// probability, members forced down (mirroring
    /// [`enumerate_with_dependencies`](Analysis::enumerate_with_dependencies)).
    pub fn compile_mtbdd_with_dependencies(&self, deps: &FailureDependencies) -> CompiledMtbdd {
        self.compile_mtbdd_masked(Some(deps))
    }

    /// [`compile_mtbdd`](Analysis::compile_mtbdd) with the feasibility
    /// check surfaced as a typed error instead of a panic.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::TooManyComponents`] when more than 30
    /// *application* components are fallible.
    pub fn try_compile_mtbdd(&self) -> Result<CompiledMtbdd, AnalysisError> {
        self.compile_mtbdd_fallible(None, None)
    }

    /// Budget-guarded [`compile_mtbdd`](Analysis::compile_mtbdd): the
    /// build loop polls the guard's deadline per application-state cube,
    /// node allocation is capped at the budget's `max_mtbdd_nodes`, and
    /// the `2^A·2^S` region count must fit the budget's `max_states`.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::TooManyComponents`],
    /// [`AnalysisError::StateCapExceeded`],
    /// [`AnalysisError::DeadlineExpired`] or
    /// [`AnalysisError::NodeCapExceeded`].
    pub fn try_compile_mtbdd_guarded(
        &self,
        guard: &BudgetGuard,
    ) -> Result<CompiledMtbdd, AnalysisError> {
        self.compile_mtbdd_fallible(None, Some(guard))
    }

    fn compile_mtbdd_masked(&self, deps: Option<&FailureDependencies>) -> CompiledMtbdd {
        match self.compile_mtbdd_fallible(deps, None) {
            Ok(compiled) => compiled,
            // Without a guard the only failure is the feasibility check;
            // the unguarded API contract is to panic on it.
            Err(e) => panic!("invariant: MTBDD compile fits in 30 application bits — {e}"),
        }
    }

    fn compile_mtbdd_fallible(
        &self,
        deps: Option<&FailureDependencies>,
        guard: Option<&BudgetGuard>,
    ) -> Result<CompiledMtbdd, AnalysisError> {
        let _span = Span::enter(self.recorder, Phase::MtbddCompile);
        let space = self.space;
        let mut mt = Mtbdd::new(space.len());
        if let Some(g) = guard {
            mt.set_node_limit(g.budget().max_mtbdd_nodes);
        }
        let mut ids: BTreeMap<Configuration, u32> = BTreeMap::new();
        let mut configs: Vec<Configuration> = Vec::new();
        let mut contexts = Vec::new();
        let n_group_states: u64 = 1 << deps.map_or(0, |d| d.group_count());
        for gmask in 0..n_group_states {
            let gprob = deps.map_or(1.0, |d| d.mask_probability(gmask));
            if gprob == 0.0 {
                continue;
            }
            let forced: BTreeSet<usize> = deps
                .map_or(Vec::new(), |d| d.forced_down(gmask))
                .into_iter()
                .collect();
            let root = self.build_map(&mut mt, &forced, &mut ids, &mut configs, guard)?;
            let frozen = mt.freeze(root);
            let config_of: Vec<u32> = frozen
                .terminal_values()
                .iter()
                .map(|&v| {
                    assert!(
                        v != UNREACHED,
                        "MTBDD compile left part of the state space unmapped"
                    );
                    u32::try_from(v).expect("configuration id overflow")
                })
                .collect();
            contexts.push(MtContext {
                gprob,
                frozen,
                config_of,
            });
        }
        if let Some(r) = self.recorder {
            r.add(Counter::MtbddNodesCreated, mt.node_count() as u64);
            r.add(Counter::MtbddCacheHits, mt.ite_cache_hits());
            r.add(Counter::CcfContexts, contexts.len() as u64);
        }
        let node_count = contexts.iter().map(|c| c.frozen.node_count()).sum();
        Ok(CompiledMtbdd {
            configs,
            contexts,
            up_probs: (0..space.len()).map(|ix| space.up_prob(ix)).collect(),
            fallible: space.fallible_indices(),
            node_count,
        })
    }

    /// Builds the state→configuration MTBDD for one common-cause context
    /// (`forced` members down), interning configurations into
    /// `ids`/`configs`.
    fn build_map(
        &self,
        mt: &mut Mtbdd,
        forced: &BTreeSet<usize>,
        ids: &mut BTreeMap<Configuration, u32>,
        configs: &mut Vec<Configuration>,
        budget: Option<&BudgetGuard>,
    ) -> Result<MtRef, AnalysisError> {
        let space = self.space;
        let ft = self.graph.model();
        let n_services = ft.service_count();

        // Free application-side fallible variables (forced ones are fixed).
        let app_fallible: Vec<usize> = space
            .fallible_indices()
            .into_iter()
            .filter(|&ix| ix < space.app_count() && !forced.contains(&ix))
            .collect();
        if app_fallible.len() > 30 {
            return Err(AnalysisError::TooManyComponents {
                fallible: app_fallible.len(),
                groups: 0,
            });
        }
        if let Some(g) = budget {
            // The build enumerates 2^A application cubes × 2^S service
            // outcomes: that region count is this engine's "state" cost.
            let bits = app_fallible.len() + n_services;
            let regions = 1u128 << bits.min(127);
            if bits >= 64 || regions > u128::from(g.budget().max_states) {
                return Err(AnalysisError::StateCapExceeded {
                    states: u64::try_from(regions.min(u128::from(u64::MAX)))
                        .expect("invariant: value clamped to u64::MAX"),
                    max_states: g.budget().max_states,
                });
            }
        }

        let guards = GuardBuilder::for_context(self, forced, true);
        let mut cache: KnowCache<MtRef> = KnowCache::new();
        let mut state = space.all_up();
        for &ix in forced {
            state[ix] = false;
        }
        let mut map = mt.constant(UNREACHED);
        let n_app_states: u64 = 1 << app_fallible.len();
        let n_sigma: u64 = 1 << n_services;
        for mask in 0..n_app_states {
            if let Some(g) = budget {
                fmperf_obs::add(self.recorder, Counter::BudgetPolls, 1);
                g.check()?;
                if mt.node_limit_hit() {
                    return Err(AnalysisError::NodeCapExceeded {
                        max_nodes: g.budget().max_mtbdd_nodes,
                    });
                }
            }
            for (bit, &ix) in app_fallible.iter().enumerate() {
                state[ix] = mask & (1 << bit) != 0;
            }
            for sigma in 0..n_sigma {
                let outcomes: Vec<bool> = (0..n_services).map(|s| sigma & (1 << s) != 0).collect();
                let (config, decisions) = self.graph.configuration_with_outcomes(&state, &outcomes);
                // Canonical form: an unconsulted service must have
                // σ_s = false (see `symbolic`).
                if decisions
                    .iter()
                    .zip(&outcomes)
                    .any(|(d, &o)| d.is_none() && o)
                {
                    continue;
                }
                let mut g = MtRef::TRUE;
                for (s, decision) in decisions.iter().enumerate() {
                    let Some(d) = decision else { continue };
                    let guard = guards.decision_guard(mt, &mut cache, d);
                    let signed = if outcomes[s] { guard } else { mt.not(guard) };
                    g = mt.and(g, signed);
                    if g.is_false() {
                        break;
                    }
                }
                if g.is_false() {
                    continue;
                }
                // Conjoin the application-state cube; the region is then
                // disjoint from every other (app state, σ) region.
                let mut region = g;
                for &ix in &app_fallible {
                    let lit = if state[ix] { mt.var(ix) } else { mt.nvar(ix) };
                    region = mt.and(region, lit);
                }
                if region.is_false() {
                    continue;
                }
                let id = *ids.entry(config.clone()).or_insert_with(|| {
                    configs.push(config);
                    u32::try_from(configs.len() - 1).expect("configuration id overflow")
                });
                let leaf = mt.constant(u64::from(id));
                map = mt.ite(region, leaf, map);
            }
        }
        if let Some(g) = budget {
            // Catch a cap trip on the final cube before freezing a
            // truncated diagram.
            if mt.node_limit_hit() {
                return Err(AnalysisError::NodeCapExceeded {
                    max_nodes: g.budget().max_mtbdd_nodes,
                });
            }
        }
        Ok(map)
    }
}

impl CompiledMtbdd {
    /// Every configuration the compiled map can produce, indexed by the
    /// positions used in [`probabilities_for`](CompiledMtbdd::probabilities_for)
    /// and [`reward_sensitivity`](CompiledMtbdd::reward_sensitivity).
    pub fn configurations(&self) -> &[Configuration] {
        &self.configs
    }

    /// Total decision-node count across all frozen context diagrams —
    /// the per-evaluation cost.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The availability vector the analysis was compiled with.
    pub fn baseline_up(&self) -> &[f64] {
        &self.up_probs
    }

    /// Global indices of the fallible components.
    pub fn fallible_indices(&self) -> &[usize] {
        &self.fallible
    }

    /// Raw per-configuration probabilities (aligned with
    /// [`configurations`](CompiledMtbdd::configurations)) for one
    /// availability vector: one linear pass per context diagram.
    pub fn probabilities_for(&self, up: &[f64]) -> Vec<f64> {
        self.try_probabilities_for(up)
            .expect("invariant: availability vector length equals the component count")
    }

    /// [`probabilities_for`](CompiledMtbdd::probabilities_for) with the
    /// length check surfaced as a typed error instead of a panic.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::DimensionMismatch`] when `up.len()` is not the
    /// component count.
    pub fn try_probabilities_for(&self, up: &[f64]) -> Result<Vec<f64>, AnalysisError> {
        self.check_row(up)?;
        let mut sums = vec![0.0; self.configs.len()];
        let mut scratch = Vec::new();
        for ctx in &self.contexts {
            let mut out = vec![0.0; ctx.frozen.terminal_count()];
            ctx.frozen.distribution_into(up, &mut scratch, &mut out);
            for (slot, &p) in out.iter().enumerate() {
                sums[ctx.config_of[slot] as usize] += ctx.gprob * p;
            }
        }
        Ok(sums)
    }

    /// Errors unless `up` has exactly one entry per component.
    fn check_row(&self, up: &[f64]) -> Result<(), AnalysisError> {
        if up.len() != self.up_probs.len() {
            return Err(AnalysisError::DimensionMismatch {
                expected: self.up_probs.len(),
                got: up.len(),
            });
        }
        Ok(())
    }

    /// The configuration distribution for an arbitrary availability
    /// vector (length = component count, entries in `[0, 1]`).
    ///
    /// `states_explored` on the result reports the diagram nodes visited
    /// (the linear-pass cost), not a `2^N` state count.
    pub fn distribution_for(&self, up: &[f64]) -> ConfigDistribution {
        self.to_distribution(&self.probabilities_for(up))
    }

    /// [`distribution_for`](CompiledMtbdd::distribution_for) with the
    /// length check surfaced as a typed error instead of a panic.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::DimensionMismatch`] when `up.len()` is not the
    /// component count.
    pub fn try_distribution_for(&self, up: &[f64]) -> Result<ConfigDistribution, AnalysisError> {
        Ok(self.to_distribution(&self.try_probabilities_for(up)?))
    }

    /// The distribution at the compiled availability vector — matches
    /// [`Analysis::enumerate`] on the same analysis (identical
    /// configuration set, probabilities equal up to float associativity).
    pub fn distribution(&self) -> ConfigDistribution {
        self.distribution_for(&self.up_probs)
    }

    /// Per-configuration probabilities for a whole matrix of availability
    /// vectors, rows chunked over `threads` OS threads.
    pub fn batch_probabilities(&self, rows: &[Vec<f64>], threads: usize) -> Vec<Vec<f64>> {
        self.try_batch_probabilities(rows, threads)
            .expect("invariant: every availability row's length equals the component count")
    }

    /// [`batch_probabilities`](CompiledMtbdd::batch_probabilities) with
    /// the length checks surfaced as typed errors instead of panics.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::DimensionMismatch`] for the first row whose
    /// length is not the component count.
    pub fn try_batch_probabilities(
        &self,
        rows: &[Vec<f64>],
        threads: usize,
    ) -> Result<Vec<Vec<f64>>, AnalysisError> {
        for row in rows {
            self.check_row(row)?;
        }
        let mut sums = vec![vec![0.0; self.configs.len()]; rows.len()];
        for ctx in &self.contexts {
            let outs = ctx.frozen.batch_distributions(rows, threads);
            for (row_sums, out) in sums.iter_mut().zip(&outs) {
                for (slot, &p) in out.iter().enumerate() {
                    row_sums[ctx.config_of[slot] as usize] += ctx.gprob * p;
                }
            }
        }
        Ok(sums)
    }

    /// [`distribution_for`](CompiledMtbdd::distribution_for) over a
    /// matrix of availability vectors, evaluated in parallel.
    pub fn batch_distributions(
        &self,
        rows: &[Vec<f64>],
        threads: usize,
    ) -> Vec<ConfigDistribution> {
        self.batch_probabilities(rows, threads)
            .iter()
            .map(|sums| self.to_distribution(sums))
            .collect()
    }

    /// Expected reward at an arbitrary availability vector, given the
    /// per-configuration rewards (aligned with
    /// [`configurations`](CompiledMtbdd::configurations)).
    pub fn expected_reward_for(&self, up: &[f64], rewards: &[f64]) -> f64 {
        self.try_expected_reward_for(up, rewards)
            .expect("invariant: reward and availability vectors match the compiled dimensions")
    }

    /// [`expected_reward_for`](CompiledMtbdd::expected_reward_for) with
    /// the length checks surfaced as typed errors instead of panics.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::DimensionMismatch`] when `up` is not one entry
    /// per component or `rewards` is not one entry per configuration.
    pub fn try_expected_reward_for(
        &self,
        up: &[f64],
        rewards: &[f64],
    ) -> Result<f64, AnalysisError> {
        self.check_rewards(rewards)?;
        Ok(self
            .try_probabilities_for(up)?
            .iter()
            .zip(rewards)
            .map(|(p, r)| p * r)
            .sum())
    }

    /// Errors unless `rewards` has exactly one entry per configuration.
    fn check_rewards(&self, rewards: &[f64]) -> Result<(), AnalysisError> {
        if rewards.len() != self.configs.len() {
            return Err(AnalysisError::DimensionMismatch {
                expected: self.configs.len(),
                got: rewards.len(),
            });
        }
        Ok(())
    }

    /// Exact per-component reward sensitivities at the compiled
    /// availability vector, from the lo/hi co-factors of the frozen
    /// diagrams — no re-enumeration.
    ///
    /// `rewards[i]` is the reward of `configurations()[i]`.  The result
    /// matches [`crate::sensitivity::sensitivity`] (which enumerates the
    /// `2^N` states) up to float associativity.
    pub fn reward_sensitivity(&self, rewards: &[f64]) -> Sensitivity {
        self.try_reward_sensitivity(rewards)
            .expect("invariant: one reward per compiled configuration")
    }

    /// [`reward_sensitivity`](CompiledMtbdd::reward_sensitivity) with
    /// the length check surfaced as a typed error instead of a panic.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::DimensionMismatch`] when `rewards` is not one
    /// entry per configuration.
    pub fn try_reward_sensitivity(&self, rewards: &[f64]) -> Result<Sensitivity, AnalysisError> {
        self.check_rewards(rewards)?;
        let mut deriv = vec![0.0; self.up_probs.len()];
        let mut ctx_deriv = vec![0.0; self.up_probs.len()];
        let mut reach = Vec::new();
        let mut value = Vec::new();
        for ctx in &self.contexts {
            let term_rewards: Vec<f64> = ctx
                .config_of
                .iter()
                .map(|&id| rewards[id as usize])
                .collect();
            ctx.frozen.expected_and_derivatives_into(
                &self.up_probs,
                &term_rewards,
                &mut reach,
                &mut value,
                &mut ctx_deriv,
            );
            for (d, &cd) in deriv.iter_mut().zip(&ctx_deriv) {
                *d += ctx.gprob * cd;
            }
        }
        Ok(Sensitivity {
            derivatives: self.fallible.iter().map(|&ix| (ix, deriv[ix])).collect(),
        })
    }

    fn to_distribution(&self, sums: &[f64]) -> ConfigDistribution {
        let mut dist = ConfigDistribution::new();
        for (config, &s) in self.configs.iter().zip(sums) {
            if s != 0.0 {
                dist.add(config.clone(), s);
            }
        }
        dist.set_states_explored(self.node_count as u64);
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmperf_ftlqn::examples::das_woodside_system;
    use fmperf_mama::{arch, ComponentSpace, KnowTable};

    #[test]
    fn mtbdd_distribution_matches_enumeration_all_architectures() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        for kind in arch::ArchKind::ALL {
            let mama = arch::build(kind, &sys, 0.1);
            let space = ComponentSpace::build(&sys.model, &mama);
            let table = KnowTable::build(&graph, &mama, &space);
            let analysis = Analysis::new(&graph, &space).with_knowledge(&table);
            let exact = analysis.enumerate();
            let compiled = analysis.compile_mtbdd();
            let dist = compiled.distribution();
            assert!(
                exact.max_abs_diff(&dist) < 1e-12,
                "{}: MTBDD diverges from enumeration by {}",
                kind.name(),
                exact.max_abs_diff(&dist)
            );
            assert_eq!(exact.len(), dist.len(), "{}", kind.name());
            assert!((dist.total_probability() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mtbdd_perfect_knowledge_matches_enumeration() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let space = ComponentSpace::app_only(&sys.model);
        let analysis = Analysis::new(&graph, &space);
        let exact = analysis.enumerate();
        let dist = analysis.compile_mtbdd().distribution();
        assert!(exact.max_abs_diff(&dist) < 1e-12);
        assert_eq!(exact.len(), dist.len());
    }

    #[test]
    fn distribution_for_matches_a_reenumerated_twin_model() {
        // Evaluating the compiled diagram at a *different* availability
        // vector must equal enumerating a twin model rebuilt with those
        // availabilities.
        use fmperf_ftlqn::examples::{das_woodside_system_with, DasWoodsideParams};
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let mama = arch::hierarchical(&sys, 0.1);
        let space = ComponentSpace::build(&sys.model, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        let analysis = Analysis::new(&graph, &space).with_knowledge(&table);
        let compiled = analysis.compile_mtbdd();

        // Twin with every application failure probability at 0.25.
        let sys2 = das_woodside_system_with(DasWoodsideParams {
            fail_prob: 0.25,
            ..DasWoodsideParams::default()
        });
        let graph2 = sys2.fault_graph().unwrap();
        let mama2 = arch::hierarchical(&sys2, 0.1);
        let space2 = ComponentSpace::build(&sys2.model, &mama2);
        let table2 = KnowTable::build(&graph2, &mama2, &space2);
        let exact2 = Analysis::new(&graph2, &space2)
            .with_knowledge(&table2)
            .enumerate();
        let up2: Vec<f64> = (0..space2.len()).map(|ix| space2.up_prob(ix)).collect();
        let swept = compiled.distribution_for(&up2);
        // 1e-9 rather than 1e-12: at fail 0.25 the enumeration itself
        // accumulates ~2e-12 of associativity error (its total is
        // 0.9999999999980), which the single-pass evaluation does not.
        assert!(exact2.max_abs_diff(&swept) < 1e-9);
        assert_eq!(exact2.len(), swept.len());
    }

    #[test]
    fn common_cause_contexts_match_enumeration() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let mama = arch::centralized(&sys, 0.1);
        let space = ComponentSpace::build(&sys.model, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        let analysis = Analysis::new(&graph, &space).with_knowledge(&table);
        let mut deps = FailureDependencies::new();
        let p1 = sys
            .model
            .component_index(fmperf_ftlqn::Component::Processor(sys.proc2));
        let p2 = sys
            .model
            .component_index(fmperf_ftlqn::Component::Processor(sys.proc3));
        deps.add_group("shared-rack", 0.05, vec![p1, p2]);
        let exact = analysis.enumerate_with_dependencies(&deps);
        let dist = analysis
            .compile_mtbdd_with_dependencies(&deps)
            .distribution();
        assert!(exact.max_abs_diff(&dist) < 1e-12);
        assert_eq!(exact.len(), dist.len());
    }

    #[test]
    fn batch_matches_single_evaluations() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let mama = arch::network(&sys, 0.1);
        let space = ComponentSpace::build(&sys.model, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        let analysis = Analysis::new(&graph, &space).with_knowledge(&table);
        let compiled = analysis.compile_mtbdd();
        let target = compiled.fallible_indices()[0];
        let rows: Vec<Vec<f64>> = (0..9)
            .map(|i| {
                let mut up = compiled.baseline_up().to_vec();
                up[target] = i as f64 / 8.0;
                up
            })
            .collect();
        let batch = compiled.batch_distributions(&rows, 3);
        assert_eq!(batch.len(), rows.len());
        for (row, dist) in rows.iter().zip(&batch) {
            let single = compiled.distribution_for(row);
            assert!(single.max_abs_diff(dist) < 1e-15);
        }
    }
}
