//! The configured study and the exact state-enumeration engines.

use crate::budget::{AnalysisError, BudgetGuard, CHECK_INTERVAL};
use crate::ccf::FailureDependencies;
use crate::distribution::ConfigDistribution;
use fmperf_ftlqn::{FaultGraph, KnowPolicy, PerfectKnowledge};
use fmperf_mama::{ComponentSpace, KnowTable};
use fmperf_obs::{Counter, Phase, Recorder, Span};

/// Where `know` answers come from.
#[derive(Debug, Clone, Copy)]
pub enum Knowledge<'a> {
    /// Every task knows everything (the paper's earlier IPDS'98 model).
    Perfect,
    /// Knowledge limited by a MAMA architecture.
    Mama(&'a KnowTable),
}

/// One configured performability study: application fault graph,
/// component space, knowledge source and know policy.
#[derive(Debug, Clone, Copy)]
pub struct Analysis<'a> {
    pub(crate) graph: &'a FaultGraph<'a>,
    pub(crate) space: &'a ComponentSpace,
    pub(crate) knowledge: Knowledge<'a>,
    pub(crate) policy: KnowPolicy,
    pub(crate) unmonitored_known: bool,
    pub(crate) recorder: Option<&'a dyn Recorder>,
    pub(crate) threads: Option<usize>,
}

impl<'a> Analysis<'a> {
    /// Creates a perfect-knowledge study; attach a MAMA knowledge table
    /// with [`with_knowledge`](Analysis::with_knowledge).
    ///
    /// The default know policy is [`KnowPolicy::AnyFailedComponent`]:
    /// reproducing the paper's Table 1 pins down that reading (knowing
    /// any one failed component of a skipped alternative suffices); the
    /// stricter literal reading is available via
    /// [`with_policy`](Analysis::with_policy).
    pub fn new(graph: &'a FaultGraph<'a>, space: &'a ComponentSpace) -> Self {
        Analysis {
            graph,
            space,
            knowledge: Knowledge::Perfect,
            policy: KnowPolicy::AnyFailedComponent,
            unmonitored_known: false,
            recorder: None,
            threads: None,
        }
    }

    /// Uses a MAMA-derived knowledge table instead of perfect knowledge.
    pub fn with_knowledge(mut self, table: &'a KnowTable) -> Self {
        self.knowledge = Knowledge::Mama(table);
        self
    }

    /// Sets the skipped-alternative knowledge policy (default:
    /// [`KnowPolicy::AnyFailedComponent`], the reading that reproduces
    /// the paper's Table 1).
    pub fn with_policy(mut self, policy: KnowPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Treats components with **no** knowledge path to the decider as
    /// vacuously known (exempt from the know requirement) instead of
    /// never known.
    ///
    /// Default `false` — what was never monitored cannot be learned.
    /// The paper's Table 2 *distributed* column is only reproducible
    /// under `true` combined with
    /// [`fmperf_mama::arch::distributed_as_published`]: the published
    /// numbers imply cross-domain components were exempt from the
    /// knowledge test rather than blocked by it.
    pub fn with_unmonitored_known(mut self, known: bool) -> Self {
        self.unmonitored_known = known;
        self
    }

    /// Attaches an instrumentation recorder (see [`fmperf_obs`]): the
    /// engines report phase spans and counters to it at flush points.
    ///
    /// The default is no recorder, which costs one predictable branch
    /// per flush point — a disabled run is bit-identical to (and as
    /// fast as) an uninstrumented one.
    pub fn with_recorder(mut self, recorder: &'a dyn Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Pins the worker count used when this analysis picks a thread
    /// count itself (today:
    /// [`enumerate_parallel_auto`](Analysis::enumerate_parallel_auto)).
    ///
    /// The default consults [`std::thread::available_parallelism`],
    /// which varies across machines and shared CI runners; pinning the
    /// knob makes benchmark and CI runs reproducible.  A value of 0 is
    /// treated as 1.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// The effective auto-parallelism worker count: the
    /// [`with_threads`](Analysis::with_threads) knob if pinned, the
    /// machine's available parallelism otherwise.
    pub fn effective_threads(&self) -> usize {
        self.threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    }

    /// Number of states the exact enumeration will visit
    /// (`2^fallible-components`).
    pub fn state_space_size(&self) -> u64 {
        1u64 << self.space.fallible_indices().len()
    }

    pub(crate) fn configuration_of(&self, state: &[bool]) -> fmperf_ftlqn::Configuration {
        match self.knowledge {
            Knowledge::Perfect => self
                .graph
                .configuration(state, &PerfectKnowledge, self.policy),
            Knowledge::Mama(table) => {
                let oracle = table
                    .oracle(state)
                    .default_for_missing(self.unmonitored_known);
                self.graph.configuration(state, &oracle, self.policy)
            }
        }
    }

    /// The paper's §5 step 4: enumerate all `2^N` up/down combinations of
    /// the fallible components and accumulate configuration
    /// probabilities.
    ///
    /// Runs through the compiled bitmask kernel
    /// ([`Analysis::compile`]) when compilation can amortise (see
    /// [`prefers_compiled`](Analysis::prefers_compiled)), falling back
    /// to the naive reference scan otherwise.  Both paths return
    /// bit-identical distributions.
    ///
    /// # Panics
    ///
    /// Panics if more than 30 components are fallible (use
    /// [`monte_carlo`](Analysis::monte_carlo) or
    /// [`symbolic`](Analysis::symbolic) instead).
    pub fn enumerate(&self) -> ConfigDistribution {
        match self.compile() {
            Some(kernel) if self.prefers_compiled() => kernel.enumerate(),
            _ => self.enumerate_naive(),
        }
    }

    /// [`enumerate`](Analysis::enumerate) with the feasibility check
    /// surfaced as a typed error instead of a panic.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::TooManyComponents`] when more than 30 components
    /// are fallible.
    pub fn try_enumerate(&self) -> Result<ConfigDistribution, AnalysisError> {
        check_enumerable(self.space.fallible_indices().len(), None)?;
        Ok(self.enumerate())
    }

    /// [`enumerate_parallel`](Analysis::enumerate_parallel) with the
    /// feasibility check surfaced as a typed error instead of a panic.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::TooManyComponents`] when more than 30 components
    /// are fallible.
    pub fn try_enumerate_parallel(
        &self,
        threads: usize,
    ) -> Result<ConfigDistribution, AnalysisError> {
        check_enumerable(self.space.fallible_indices().len(), None)?;
        Ok(self.enumerate_parallel(threads))
    }

    /// Should [`enumerate`](Analysis::enumerate) run the compiled kernel
    /// rather than the naive scan?
    ///
    /// The kernel's win comes from compiling the know table to mask lists
    /// and memoising service decisions; under perfect knowledge there is
    /// no know table to compile away, and on tiny state spaces the
    /// compile/memoisation overhead exceeds the scan itself (the paper's
    /// perfect case, `2^8` states, ran at 0.84× of naive).  So: any MAMA
    /// knowledge table prefers the kernel, and perfect knowledge prefers
    /// it only past `2^10` states.
    pub fn prefers_compiled(&self) -> bool {
        match self.knowledge {
            Knowledge::Mama(_) => true,
            Knowledge::Perfect => self.space.fallible_indices().len() > 10,
        }
    }

    /// The naive reference enumerator: full per-state evaluation with
    /// the allocating fault-graph walk, no decision memoisation.
    ///
    /// This is the code path the compiled kernel is differentially
    /// tested against; it visits states in the same Gray-code order with
    /// the same incremental probability walker, so
    /// [`enumerate`](Analysis::enumerate) must match it bit for bit.
    pub fn enumerate_naive(&self) -> ConfigDistribution {
        self.enumerate_naive_masked(None)
    }

    /// [`enumerate`](Analysis::enumerate) with common-cause failure
    /// dependencies: each group is an extra Bernoulli event that forces
    /// all members down (see [`crate::ccf`]).
    pub fn enumerate_with_dependencies(&self, deps: &FailureDependencies) -> ConfigDistribution {
        match self.compile() {
            Some(kernel) if self.prefers_compiled() => kernel.enumerate_with_dependencies(deps),
            _ => self.enumerate_naive_with_dependencies(deps),
        }
    }

    /// [`enumerate_naive`](Analysis::enumerate_naive) with common-cause
    /// failure dependencies — the reference implementation for
    /// [`enumerate_with_dependencies`](Analysis::enumerate_with_dependencies).
    pub fn enumerate_naive_with_dependencies(
        &self,
        deps: &FailureDependencies,
    ) -> ConfigDistribution {
        self.enumerate_naive_masked(Some(deps))
    }

    fn enumerate_naive_masked(&self, deps: Option<&FailureDependencies>) -> ConfigDistribution {
        assert_enumerable(self.space.fallible_indices().len(), deps);
        self.enumerate_naive_guarded(deps, None)
            .expect("invariant: an unguarded scan has no budget to exhaust")
    }

    /// Budget-guarded naive reference scan; a within-budget run is
    /// bit-identical to [`enumerate_naive`](Analysis::enumerate_naive).
    ///
    /// # Errors
    ///
    /// [`AnalysisError::DeadlineExpired`] when the guard's deadline
    /// passes mid-scan.
    pub(crate) fn try_enumerate_naive_guarded(
        &self,
        guard: &BudgetGuard,
    ) -> Result<ConfigDistribution, AnalysisError> {
        check_enumerable(self.space.fallible_indices().len(), None)?;
        self.enumerate_naive_guarded(None, Some(guard))
    }

    fn enumerate_naive_guarded(
        &self,
        deps: Option<&FailureDependencies>,
        guard: Option<&BudgetGuard>,
    ) -> Result<ConfigDistribution, AnalysisError> {
        let _span = Span::enter(self.recorder, Phase::StateScan);
        let fallible = self.space.fallible_indices();
        let n_states: u64 = 1 << fallible.len();
        let n_group_states: u64 = 1 << deps.map_or(0, |d| d.group_count());
        let up: Vec<f64> = fallible.iter().map(|&ix| self.space.up_prob(ix)).collect();

        let mut dist = ConfigDistribution::new();
        let mut state = self.space.all_up();
        let mut visited_groups = 0u64;
        let mut until_check = 0u64;
        let mut steps = 0u64;
        let mut visited = 0u64;
        let mut polls = 0u64;
        for gmask in 0..n_group_states {
            let gprob = deps.map_or(1.0, |d| d.mask_probability(gmask));
            if gprob == 0.0 {
                continue; // zero-probability group masks are never visited
            }
            visited_groups += 1;
            let forced: Vec<usize> = deps.map_or(Vec::new(), |d| d.forced_down(gmask));
            for (word, wprob) in crate::compiled::GrayWalk::new(&up, 0, n_states) {
                if let Some(g) = guard {
                    if until_check == 0 {
                        g.check()?;
                        polls += 1;
                        until_check = CHECK_INTERVAL;
                    }
                    until_check -= 1;
                }
                steps += 1;
                let prob = gprob * wprob;
                if prob == 0.0 {
                    continue;
                }
                visited += 1;
                for (bit, &ix) in fallible.iter().enumerate() {
                    state[ix] = word & (1 << bit) != 0;
                }
                // Common-cause events override the independent state.
                for &ix in &forced {
                    state[ix] = false;
                }
                let config = self.configuration_of(&state);
                dist.add(config, prob);
                for &ix in &forced {
                    state[ix] = true; // restore for next iteration
                }
            }
        }
        dist.set_states_explored(n_states * visited_groups);
        if let Some(r) = self.recorder {
            r.add(Counter::GrayCodeSteps, steps);
            r.add(Counter::StatesVisited, visited);
            r.add(Counter::BudgetPolls, polls);
            if deps.is_some() {
                r.add(Counter::CcfContexts, visited_groups);
            }
        }
        Ok(dist)
    }

    /// Multi-threaded exact enumeration: identical result to
    /// [`enumerate`](Analysis::enumerate) up to merge rounding, mask
    /// range split across `threads` workers (each with its own decision
    /// memo).
    pub fn enumerate_parallel(&self, threads: usize) -> ConfigDistribution {
        match self.compile() {
            Some(kernel) => kernel.enumerate_parallel(threads, None),
            None => self.enumerate_naive(),
        }
    }

    /// [`enumerate_parallel`](Analysis::enumerate_parallel) with the
    /// worker count taken from the
    /// [`with_threads`](Analysis::with_threads) knob, falling back to
    /// [`std::thread::available_parallelism`] when unpinned.
    pub fn enumerate_parallel_auto(&self) -> ConfigDistribution {
        self.enumerate_parallel(self.effective_threads())
    }

    /// Multi-threaded
    /// [`enumerate_with_dependencies`](Analysis::enumerate_with_dependencies):
    /// the same group-mask semantics as the sequential path, with the
    /// state range split across `threads` workers.
    pub fn enumerate_parallel_with_dependencies(
        &self,
        threads: usize,
        deps: &FailureDependencies,
    ) -> ConfigDistribution {
        match self.compile() {
            Some(kernel) => kernel.enumerate_parallel(threads, Some(deps)),
            None => self.enumerate_naive_with_dependencies(deps),
        }
    }
}

/// Guards every exact engine: the `2^N` scan must stay feasible.
///
/// # Panics
///
/// Panics if more than 30 components are fallible, or components plus
/// dependency groups exceed 30 joint bits.
pub(crate) fn assert_enumerable(fallible: usize, deps: Option<&FailureDependencies>) {
    if let Err(e) = check_enumerable(fallible, deps) {
        panic!("invariant: exact enumeration fits in 30 joint bits — {e}");
    }
}

/// The fallible form of [`assert_enumerable`]: the `try_*` engines and
/// the guarded ladder route through this instead of panicking.
pub(crate) fn check_enumerable(
    fallible: usize,
    deps: Option<&FailureDependencies>,
) -> Result<(), AnalysisError> {
    let groups = deps.map_or(0, |d| d.group_count());
    if fallible > 30 || fallible + groups > 30 {
        return Err(AnalysisError::TooManyComponents { fallible, groups });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmperf_ftlqn::examples::das_woodside_system;
    use fmperf_ftlqn::Configuration;
    use fmperf_mama::arch;

    /// The perfect-knowledge column of Table 1/2: probabilities the paper
    /// reports to three decimals.
    #[test]
    fn perfect_knowledge_matches_paper_table() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let space = ComponentSpace::app_only(&sys.model);
        let analysis = Analysis::new(&graph, &space);
        assert_eq!(analysis.state_space_size(), 256);
        let dist = analysis.enumerate();
        assert!((dist.total_probability() - 1.0).abs() < 1e-9);

        // C5: both chains on Server1 = 0.81^3 = 0.531441.
        let state = space.all_up();
        let c5 = graph.configuration(&state, &PerfectKnowledge, KnowPolicy::AllFailedComponents);
        assert!((dist.probability(&c5) - 0.531441).abs() < 1e-6);
        // Failed probability ≈ 0.071.
        assert!((dist.failed_probability() - 0.0708).abs() < 5e-4);
        // Six distinct operational configurations + failed.
        assert_eq!(dist.len(), 7);
    }

    #[test]
    fn centralized_matches_paper_table1() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let mama = arch::centralized(&sys, 0.1);
        let space = ComponentSpace::build(&sys.model, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        let analysis = Analysis::new(&graph, &space).with_knowledge(&table);
        assert_eq!(analysis.state_space_size(), 16384);
        let dist = analysis.enumerate();
        assert!((dist.total_probability() - 1.0).abs() < 1e-9);

        // Paper Table 1 (centralized), all seven rows: C1..C6 + failed.
        // Ranked by probability: C5 (0.314), C1 = C3 (0.117),
        // C6 (0.057), C2 = C4 (0.021), failed (0.353).
        let ranked = dist.ranked();
        assert_eq!(ranked.len(), 6);
        let expect = [0.314, 0.117, 0.117, 0.057, 0.021, 0.021];
        for ((_, p), e) in ranked.iter().zip(expect) {
            assert!((p - e).abs() < 0.002, "probability {p} should be ~{e}");
        }
        let pf = dist.failed_probability();
        assert!(
            (pf - 0.353).abs() < 0.002,
            "failed probability {pf} should be ~0.353 (paper Table 1)"
        );
    }

    /// The paper's Table 2 distributed column, reproduced bit-for-bit by
    /// the as-published topology plus unmonitored-exempt semantics (see
    /// `fmperf_mama::arch::distributed_as_published`).
    #[test]
    fn distributed_as_published_matches_paper_table2() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let mama = arch::distributed_as_published(&sys, 0.1);
        let space = ComponentSpace::build(&sys.model, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        let analysis = Analysis::new(&graph, &space)
            .with_knowledge(&table)
            .with_unmonitored_known(true);
        assert_eq!(analysis.state_space_size(), 65536);
        let dist = analysis.enumerate();
        // Ranked: C5 0.349, C3 0.307, C1 0.082, C6 0.046, C2 0.041,
        // C4 0.036; failed 0.139 (the paper rounds row-wise).
        let ranked = dist.ranked();
        let expect = [0.349, 0.307, 0.082, 0.046, 0.041, 0.036];
        assert_eq!(ranked.len(), expect.len());
        for ((_, p), e) in ranked.iter().zip(expect) {
            assert!((p - e).abs() < 0.001, "probability {p} should be ~{e}");
        }
        assert!((dist.failed_probability() - 0.139).abs() < 0.002);
    }

    #[test]
    fn parallel_enumeration_is_identical() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let mama = arch::centralized(&sys, 0.1);
        let space = ComponentSpace::build(&sys.model, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        let analysis = Analysis::new(&graph, &space).with_knowledge(&table);
        let seq = analysis.enumerate();
        let par = analysis.enumerate_parallel(4);
        assert!(seq.max_abs_diff(&par) < 1e-12);
        assert_eq!(seq.len(), par.len());
    }

    #[test]
    fn know_policy_changes_coverage() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let mama = arch::centralized(&sys, 0.1);
        let space = ComponentSpace::build(&sys.model, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        let strict = Analysis::new(&graph, &space)
            .with_knowledge(&table)
            .with_policy(KnowPolicy::AllFailedComponents)
            .enumerate();
        let lax = Analysis::new(&graph, &space)
            .with_knowledge(&table)
            .with_policy(KnowPolicy::AnyFailedComponent)
            .enumerate();
        // The lax policy can only help coverage: failure probability must
        // not increase.
        assert!(lax.failed_probability() <= strict.failed_probability() + 1e-12);
    }

    #[test]
    fn engine_crossover_heuristic() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        // Perfect knowledge over the 2^8 application space: no know table
        // to compile away, the kernel cannot amortise — naive is chosen.
        let app_space = ComponentSpace::app_only(&sys.model);
        let small = Analysis::new(&graph, &app_space);
        assert!(!small.prefers_compiled());
        // The same perfect knowledge over the full centralized component
        // space (2^14 states) crosses over to the kernel.
        let mama = arch::centralized(&sys, 0.1);
        let space = ComponentSpace::build(&sys.model, &mama);
        let large = Analysis::new(&graph, &space);
        assert!(large.state_space_size() > (1 << 10));
        assert!(large.prefers_compiled());
        // Any MAMA knowledge table always prefers the kernel.
        let table = KnowTable::build(&graph, &mama, &space);
        assert!(Analysis::new(&graph, &space)
            .with_knowledge(&table)
            .prefers_compiled());
        // Whichever engine is picked, the result is bit-identical to the
        // other one.
        let via_enumerate = small.enumerate();
        let via_kernel = small.compile().expect("compilable").enumerate();
        assert_eq!(via_enumerate.ranked(), via_kernel.ranked());
        assert_eq!(
            via_enumerate.failed_probability(),
            via_kernel.failed_probability()
        );
    }

    #[test]
    fn failed_state_always_has_failed_config_mass() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let space = ComponentSpace::app_only(&sys.model);
        let dist = Analysis::new(&graph, &space).enumerate();
        assert!(dist.probability(&Configuration::default()) > 0.0);
    }
}
