//! The symbolic (BDD) engine — the "non-state-space-based approach" the
//! paper's conclusion anticipates.
//!
//! Exact enumeration scans `2^(A + M)` states, `A` application and `M`
//! management components.  But the configuration reached in a state
//! factors: the *application* part determines which alternatives are
//! physically available, and the *management* part only decides whether
//! each service's know-guard passes.  So:
//!
//! 1. enumerate only the `2^A` application states;
//! 2. for each, run the configuration evaluator once per *service outcome
//!    vector* `σ ∈ {pass, fail}^S` (canonicalised so unconsulted services
//!    contribute no duplicates), obtaining the resulting configuration
//!    and the [`ServiceDecision`]s actually taken;
//! 3. express each decision's know-guard as a BDD over the management
//!    components (the paper's `know` minpath formulas), conjoin
//!    `σ_s ? G_s : ¬G_s`, restrict by the fixed application state, and
//!    evaluate the exact probability in one linear pass.
//!
//! The result is bit-identical (up to float associativity) with
//! [`Analysis::enumerate`], at `2^A · 2^S` evaluator calls instead of
//! `2^(A+M)` — for the paper's hierarchical architecture that is 1,024
//! versus 262,144.
//!
//! [`ServiceDecision`]: fmperf_ftlqn::faultgraph::ServiceDecision

use crate::analysis::Analysis;
use crate::distribution::ConfigDistribution;
use crate::know_guards::{GuardBuilder, KnowCache};
use fmperf_bdd::{Bdd, NodeRef};

impl Analysis<'_> {
    /// Computes the exact configuration distribution symbolically (see
    /// the [module docs](self)).
    ///
    /// # Panics
    ///
    /// Panics if more than 30 *application* components are fallible.
    pub fn symbolic(&self) -> ConfigDistribution {
        let space = self.space;
        let ft = self.graph.model();
        let n_services = ft.service_count();

        // Application-side fallible variables.
        let app_fallible: Vec<usize> = space
            .fallible_indices()
            .into_iter()
            .filter(|&ix| ix < space.app_count())
            .collect();
        assert!(
            app_fallible.len() <= 30,
            "{} fallible application components: enumeration infeasible",
            app_fallible.len()
        );

        let mut bdd = Bdd::new(space.len());
        let guards = GuardBuilder::new(self);
        let mut know_cache: KnowCache<NodeRef> = KnowCache::new();
        let up_probs: Vec<f64> = (0..space.len()).map(|ix| space.up_prob(ix)).collect();

        let mut dist = ConfigDistribution::new();
        let mut state = space.all_up();
        let n_app_states: u64 = 1 << app_fallible.len();
        let n_sigma: u64 = 1 << n_services;

        for mask in 0..n_app_states {
            let mut p_app = 1.0;
            for (bit, &ix) in app_fallible.iter().enumerate() {
                let up = mask & (1 << bit) != 0;
                state[ix] = up;
                p_app *= if up {
                    space.up_prob(ix)
                } else {
                    1.0 - space.up_prob(ix)
                };
            }
            if p_app == 0.0 {
                continue;
            }
            for sigma in 0..n_sigma {
                let outcomes: Vec<bool> = (0..n_services).map(|s| sigma & (1 << s) != 0).collect();
                let (config, decisions) = self.graph.configuration_with_outcomes(&state, &outcomes);
                // Canonical form: a service that was never consulted must
                // have σ_s = false, otherwise this vector duplicates the
                // σ_s = false one.
                if decisions
                    .iter()
                    .zip(&outcomes)
                    .any(|(d, &o)| d.is_none() && o)
                {
                    continue;
                }
                // Conjoin the guards.
                let mut g = NodeRef::TRUE;
                for (s, decision) in decisions.iter().enumerate() {
                    let Some(d) = decision else { continue };
                    let guard = guards.decision_guard(&mut bdd, &mut know_cache, d);
                    let signed = if outcomes[s] { guard } else { bdd.not(guard) };
                    g = bdd.and(g, signed);
                    if g.is_false() {
                        break;
                    }
                }
                if g.is_false() {
                    continue;
                }
                // Fix the application variables to this state.
                let mut restricted = g;
                for &ix in &app_fallible {
                    restricted = bdd.restrict(restricted, ix, state[ix]);
                }
                let p_mgmt = bdd.probability(restricted, &up_probs);
                if p_mgmt > 0.0 {
                    dist.add(config, p_app * p_mgmt);
                }
            }
        }
        dist.set_states_explored(n_app_states);
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmperf_ftlqn::examples::das_woodside_system;
    use fmperf_ftlqn::KnowPolicy;
    use fmperf_mama::{arch, ComponentSpace, KnowTable};

    #[test]
    fn symbolic_matches_enumeration_perfect_knowledge() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let space = ComponentSpace::app_only(&sys.model);
        let analysis = Analysis::new(&graph, &space);
        let exact = analysis.enumerate();
        let sym = analysis.symbolic();
        assert!(exact.max_abs_diff(&sym) < 1e-12);
        assert_eq!(exact.len(), sym.len());
    }

    #[test]
    fn symbolic_matches_enumeration_all_architectures() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        for kind in arch::ArchKind::ALL {
            let mama = arch::build(kind, &sys, 0.1);
            let space = ComponentSpace::build(&sys.model, &mama);
            let table = KnowTable::build(&graph, &mama, &space);
            let analysis = Analysis::new(&graph, &space).with_knowledge(&table);
            let exact = analysis.enumerate();
            let sym = analysis.symbolic();
            assert!(
                exact.max_abs_diff(&sym) < 1e-9,
                "{}: symbolic diverges from enumeration by {}",
                kind.name(),
                exact.max_abs_diff(&sym)
            );
            assert!(
                (sym.total_probability() - 1.0).abs() < 1e-9,
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    fn symbolic_matches_under_any_failed_policy() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let mama = arch::centralized(&sys, 0.1);
        let space = ComponentSpace::build(&sys.model, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        let analysis = Analysis::new(&graph, &space)
            .with_knowledge(&table)
            .with_policy(KnowPolicy::AnyFailedComponent);
        let exact = analysis.enumerate();
        let sym = analysis.symbolic();
        assert!(exact.max_abs_diff(&sym) < 1e-9);
    }

    #[test]
    fn symbolic_explores_exponentially_fewer_states() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let mama = arch::hierarchical(&sys, 0.1);
        let space = ComponentSpace::build(&sys.model, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        let analysis = Analysis::new(&graph, &space).with_knowledge(&table);
        let exact = analysis.enumerate();
        let sym = analysis.symbolic();
        assert_eq!(exact.states_explored(), 1 << 18);
        assert_eq!(sym.states_explored(), 1 << 8);
    }
}
