//! First-order detection/reconfiguration delay penalty — the extension
//! the paper's conclusion sketches via its reference \[29\].
//!
//! The steady-state analysis treats detection and reconfiguration as
//! instantaneous (given coverage).  In reality every covered failure
//! opens a window — heartbeat interval + decision + retargeting — during
//! which the affected chains earn the *pre-reconfiguration* (degraded or
//! zero) reward instead of the post-reconfiguration one.  A full model
//! multiplies the state space (the paper notes this "leads to a serious
//! increase in the number of states"); we implement the standard
//! first-order correction instead:
//!
//! ```text
//! R_adj = R_ss − Σ_c  rate_c · delay · [R(all-up) − R(all-up, c down)]⁺
//! ```
//!
//! i.e. each component's failure rate times the expected reward deficit
//! during one detection window, evaluated from the all-up configuration.
//! This is accurate when failures are rare relative to repair and the
//! delay is short relative to MTTF — exactly the regime where the
//! steady-state probabilities of the paper are meaningful.

use crate::analysis::{Analysis, Knowledge};
use crate::reward::{solve_configurations, ConfigSolveError, RewardSpec};
use fmperf_ftlqn::PerfectKnowledge;

/// Failure-event rates and the detection/reconfiguration delay.
#[derive(Debug, Clone)]
pub struct DelayModel {
    /// Mean detection + reconfiguration delay, in seconds.
    pub delay: f64,
    /// Failure events per second per global component index (length =
    /// component-space size; entries for perfect components are ignored).
    pub event_rate: Vec<f64>,
}

impl DelayModel {
    /// A uniform model: every fallible component fails at `rate`
    /// events/second and detection takes `delay` seconds.
    pub fn uniform(space_len: usize, rate: f64, delay: f64) -> Self {
        DelayModel {
            delay,
            event_rate: vec![rate; space_len],
        }
    }

    /// The first-order reward penalty (see the [module docs](self)).
    ///
    /// # Errors
    ///
    /// Propagates LQN solve failures.
    pub fn penalty(
        &self,
        analysis: &Analysis<'_>,
        spec: &RewardSpec,
    ) -> Result<f64, ConfigSolveError> {
        let space = analysis.space;
        let ft = analysis.graph.model();
        let reward_of_state = |state: &[bool]| -> Result<f64, ConfigSolveError> {
            let config = match analysis.knowledge {
                Knowledge::Perfect => {
                    analysis
                        .graph
                        .configuration(state, &PerfectKnowledge, analysis.policy)
                }
                Knowledge::Mama(table) => {
                    let oracle = table
                        .oracle(state)
                        .default_for_missing(analysis.unmonitored_known);
                    analysis
                        .graph
                        .configuration(state, &oracle, analysis.policy)
                }
            };
            let perfs = solve_configurations(ft, &[config])?;
            Ok(spec.reward(&perfs[0]))
        };
        let all_up = space.all_up();
        let r_up = reward_of_state(&all_up)?;
        let mut penalty = 0.0;
        for ix in space.fallible_indices() {
            let rate = self.event_rate.get(ix).copied().unwrap_or(0.0);
            if rate <= 0.0 {
                continue;
            }
            let mut state = all_up.clone();
            state[ix] = false;
            let r_down = reward_of_state(&state)?;
            penalty += rate * self.delay * (r_up - r_down).max(0.0);
        }
        Ok(penalty)
    }
}

/// A per-component failure / detection / repair cycle, solved exactly as
/// a three-state CTMC (the refined version of the first-order
/// [`DelayModel`]):
///
/// ```text
///   Up ──λ──> Down-undetected ──1/delay──> Down-covered ──μ──> Up
/// ```
///
/// * **Up** earns the all-up reward.
/// * **Down-undetected** earns the *frozen-routing* reward: requests keep
///   flowing along the pre-failure paths, so every chain whose path
///   touches the component fails (no reconfiguration has happened yet).
/// * **Down-covered** earns the reward of the configuration the
///   management architecture actually reaches for that failure (possibly
///   still degraded, or failed when the failure is uncovered).
#[derive(Debug, Clone, Copy)]
pub struct ComponentDelayCycle {
    /// Failure rate λ (events/second).
    pub failure_rate: f64,
    /// Repair rate μ (repairs/second).
    pub repair_rate: f64,
    /// Mean detection + reconfiguration delay (seconds).
    pub delay: f64,
}

/// Result of [`ComponentDelayCycle::analyse`].
#[derive(Debug, Clone)]
pub struct ComponentDelayReport {
    /// Global index of the component analysed.
    pub component: usize,
    /// Stationary probabilities of (up, down-undetected, down-covered).
    pub stationary: [f64; 3],
    /// Rewards of the three phases.
    pub rewards: [f64; 3],
    /// Expected reward of the cycle.
    pub expected: f64,
}

impl ComponentDelayCycle {
    /// Analyses the cycle of one component (all other components held
    /// up), returning the exact CTMC-weighted reward.
    ///
    /// # Errors
    ///
    /// Propagates LQN solve failures (as [`ConfigSolveError`]) — CTMC
    /// construction itself cannot fail for positive rates.
    ///
    /// # Panics
    ///
    /// Panics if any rate or the delay is non-positive.
    pub fn analyse(
        &self,
        analysis: &Analysis<'_>,
        spec: &RewardSpec,
        component: usize,
    ) -> Result<ComponentDelayReport, ConfigSolveError> {
        assert!(
            self.failure_rate > 0.0 && self.repair_rate > 0.0 && self.delay > 0.0,
            "rates and delay must be positive"
        );
        let space = analysis.space;
        let ft = analysis.graph.model();
        let all_up = space.all_up();
        let mut down = all_up.clone();
        down[component] = false;

        let config_of = |state: &[bool]| match analysis.knowledge {
            Knowledge::Perfect => {
                analysis
                    .graph
                    .configuration(state, &PerfectKnowledge, analysis.policy)
            }
            Knowledge::Mama(table) => {
                let oracle = table
                    .oracle(state)
                    .default_for_missing(analysis.unmonitored_known);
                analysis
                    .graph
                    .configuration(state, &oracle, analysis.policy)
            }
        };
        let reward_of = |config: &fmperf_ftlqn::Configuration| -> Result<f64, ConfigSolveError> {
            if config.is_failed() {
                return Ok(0.0);
            }
            let perfs = solve_configurations(ft, std::slice::from_ref(config))?;
            Ok(spec.reward(&perfs[0]))
        };

        let c_up = config_of(&all_up);
        let r_up = reward_of(&c_up)?;
        let r_frozen = reward_of(&c_up.frozen_under(ft, &down))?;
        let r_covered = reward_of(&config_of(&down))?;

        let mut ctmc = crate::ctmc::Ctmc::new(3);
        ctmc.add_transition(0, 1, self.failure_rate)
            .add_transition(1, 2, 1.0 / self.delay)
            .add_transition(2, 0, self.repair_rate);
        let pi = ctmc.stationary().expect("three-state cycle is irreducible");
        let rewards = [r_up, r_frozen, r_covered];
        let expected = pi.iter().zip(rewards).map(|(p, r)| p * r).sum();
        Ok(ComponentDelayReport {
            component,
            stationary: [pi[0], pi[1], pi[2]],
            rewards,
            expected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analysis;
    use crate::reward::expected_reward;
    use fmperf_ftlqn::examples::das_woodside_system;
    use fmperf_mama::ComponentSpace;

    #[test]
    fn zero_delay_means_zero_penalty() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let space = ComponentSpace::app_only(&sys.model);
        let analysis = Analysis::new(&graph, &space);
        let spec = RewardSpec::new()
            .weight(sys.user_a, 1.0)
            .weight(sys.user_b, 1.0);
        let model = DelayModel::uniform(space.len(), 1e-4, 0.0);
        assert_eq!(model.penalty(&analysis, &spec).unwrap(), 0.0);
    }

    #[test]
    fn penalty_scales_linearly_with_delay_and_rate() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let space = ComponentSpace::app_only(&sys.model);
        let analysis = Analysis::new(&graph, &space);
        let spec = RewardSpec::new()
            .weight(sys.user_a, 1.0)
            .weight(sys.user_b, 1.0);
        let p1 = DelayModel::uniform(space.len(), 1e-4, 5.0)
            .penalty(&analysis, &spec)
            .unwrap();
        let p2 = DelayModel::uniform(space.len(), 1e-4, 10.0)
            .penalty(&analysis, &spec)
            .unwrap();
        let p3 = DelayModel::uniform(space.len(), 2e-4, 5.0)
            .penalty(&analysis, &spec)
            .unwrap();
        assert!(p1 > 0.0, "single failures do cost reward here");
        assert!((p2 - 2.0 * p1).abs() < 1e-9);
        assert!((p3 - 2.0 * p1).abs() < 1e-9);
    }

    #[test]
    fn ctmc_cycle_orders_phase_rewards_sensibly() {
        use fmperf_ftlqn::Component;
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let space = ComponentSpace::app_only(&sys.model);
        let analysis = Analysis::new(&graph, &space);
        let spec = RewardSpec::new()
            .weight(sys.user_a, 1.0)
            .weight(sys.user_b, 1.0);
        let cycle = ComponentDelayCycle {
            failure_rate: 1.0 / 86_400.0,
            repair_rate: 1.0 / 3_600.0,
            delay: 30.0,
        };
        // proc3 (the primary server's node): frozen routing loses both
        // chains; covered reconfiguration recovers them on the backup.
        let ix = sys.model.component_index(Component::Processor(sys.proc3));
        let report = cycle.analyse(&analysis, &spec, ix).unwrap();
        // The backup has the same demands as the primary, so the covered
        // reward equals the all-up reward here.
        assert!(report.rewards[0] >= report.rewards[2] - 1e-9);
        assert!(
            report.rewards[2] > report.rewards[1],
            "covered beats frozen"
        );
        assert_eq!(
            report.rewards[1], 0.0,
            "frozen routing through proc3 fails all"
        );
        // Stationary mass ordering: up >> covered >> undetected window.
        assert!(report.stationary[0] > 0.95);
        assert!(report.stationary[1] < report.stationary[2]);
        // Expected reward sits between the frozen and up rewards.
        assert!(report.expected < report.rewards[0]);
        assert!(report.expected > report.rewards[1]);
    }

    #[test]
    fn ctmc_cycle_of_irrelevant_component_changes_little() {
        use fmperf_ftlqn::Component;
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let space = ComponentSpace::app_only(&sys.model);
        let analysis = Analysis::new(&graph, &space);
        let spec = RewardSpec::new()
            .weight(sys.user_a, 1.0)
            .weight(sys.user_b, 1.0);
        let cycle = ComponentDelayCycle {
            failure_rate: 1.0 / 86_400.0,
            repair_rate: 1.0 / 3_600.0,
            delay: 30.0,
        };
        // Server2 (the idle backup): frozen and covered rewards both stay
        // at the all-up level because nothing routed through it.
        let ix = sys.model.component_index(Component::Task(sys.server2));
        let report = cycle.analyse(&analysis, &spec, ix).unwrap();
        assert!((report.rewards[0] - report.rewards[1]).abs() < 1e-9);
        assert!((report.expected - report.rewards[0]).abs() < 1e-9);
    }

    #[test]
    fn penalty_stays_below_steady_state_reward_in_sane_regimes() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let space = ComponentSpace::app_only(&sys.model);
        let analysis = Analysis::new(&graph, &space);
        let spec = RewardSpec::new()
            .weight(sys.user_a, 1.0)
            .weight(sys.user_b, 1.0);
        let dist = analysis.enumerate();
        let configs = dist.configurations();
        let perfs = solve_configurations(&sys.model, &configs).unwrap();
        let r_ss = expected_reward(&dist, &perfs, &spec);
        // One failure a day, 10-second detection windows.
        let penalty = DelayModel::uniform(space.len(), 1.0 / 86_400.0, 10.0)
            .penalty(&analysis, &spec)
            .unwrap();
        assert!(penalty < 0.01 * r_ss, "penalty {penalty} vs reward {r_ss}");
    }
}
