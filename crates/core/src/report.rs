//! Consolidated study reports: one printable artifact combining the
//! configuration distribution, per-configuration rewards and the
//! expected steady-state reward rate — the shape of the paper's result
//! tables.

use crate::distribution::ConfigDistribution;
use crate::reward::{ConfigPerformance, RewardSpec};
use fmperf_ftlqn::{Configuration, FtlqnModel};
use std::fmt;

/// One row of a [`StudyReport`].
#[derive(Debug, Clone)]
pub struct ReportRow {
    /// Paper-style label of the configuration.
    pub label: String,
    /// Steady-state probability of the configuration.
    pub probability: f64,
    /// Reward rate the configuration earns.
    pub reward: f64,
    /// Probability × reward contribution to the expectation.
    pub contribution: f64,
}

/// A printable summary of one performability study.
#[derive(Debug, Clone)]
pub struct StudyReport {
    rows: Vec<ReportRow>,
    failed_probability: f64,
    expected_reward: f64,
    states_explored: u64,
}

impl StudyReport {
    /// Assembles a report from a solved study.
    ///
    /// `perfs` must align with `dist.configurations()` (the order
    /// [`crate::solve_configurations`] consumes).
    ///
    /// # Panics
    ///
    /// Panics if the slices are misaligned.
    pub fn new(
        model: &FtlqnModel,
        dist: &ConfigDistribution,
        perfs: &[ConfigPerformance],
        spec: &RewardSpec,
    ) -> Self {
        let configs: Vec<Configuration> = dist.configurations();
        assert_eq!(configs.len(), perfs.len(), "performance results misaligned");
        let mut rows: Vec<ReportRow> = configs
            .iter()
            .zip(perfs)
            .filter(|(c, _)| !c.is_failed())
            .map(|(c, p)| {
                let probability = dist.probability(c);
                let reward = spec.reward(p);
                ReportRow {
                    label: c.label(model),
                    probability,
                    reward,
                    contribution: probability * reward,
                }
            })
            .collect();
        rows.sort_by(|a, b| b.probability.total_cmp(&a.probability));
        let expected_reward = rows.iter().map(|r| r.contribution).sum();
        StudyReport {
            rows,
            failed_probability: dist.failed_probability(),
            expected_reward,
            states_explored: dist.states_explored(),
        }
    }

    /// The operational rows, most probable first.
    pub fn rows(&self) -> &[ReportRow] {
        &self.rows
    }

    /// Probability of total system failure.
    pub fn failed_probability(&self) -> f64 {
        self.failed_probability
    }

    /// The expected steady-state reward rate `R = Σ R_i · Prob(C_i)`.
    pub fn expected_reward(&self) -> f64 {
        self.expected_reward
    }

    /// Raw states examined by the engine that produced the distribution.
    pub fn states_explored(&self) -> u64 {
        self.states_explored
    }
}

impl fmt::Display for StudyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<58} {:>8} {:>9} {:>9}",
            "configuration", "prob", "reward", "contrib"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<58} {:>8.4} {:>9.4} {:>9.4}",
                row.label, row.probability, row.reward, row.contribution
            )?;
        }
        writeln!(
            f,
            "{:<58} {:>8.4} {:>9.4} {:>9.4}",
            "{system failed}", self.failed_probability, 0.0, 0.0
        )?;
        writeln!(f)?;
        writeln!(
            f,
            "expected steady-state reward rate: {:.4}/s",
            self.expected_reward
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analysis;
    use crate::reward::{expected_reward, solve_configurations};
    use fmperf_ftlqn::examples::das_woodside_system;
    use fmperf_mama::ComponentSpace;

    #[test]
    fn report_totals_match_direct_computation() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let space = ComponentSpace::app_only(&sys.model);
        let dist = Analysis::new(&graph, &space).enumerate();
        let perfs = solve_configurations(&sys.model, &dist.configurations()).unwrap();
        let spec = RewardSpec::new()
            .weight(sys.user_a, 1.0)
            .weight(sys.user_b, 1.0);
        let report = StudyReport::new(&sys.model, &dist, &perfs, &spec);
        let direct = expected_reward(&dist, &perfs, &spec);
        assert!((report.expected_reward() - direct).abs() < 1e-12);
        assert_eq!(report.rows().len(), 6);
        assert!((report.failed_probability() - dist.failed_probability()).abs() < 1e-12);
    }

    #[test]
    fn report_rows_sorted_and_labelled() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let space = ComponentSpace::app_only(&sys.model);
        let dist = Analysis::new(&graph, &space).enumerate();
        let perfs = solve_configurations(&sys.model, &dist.configurations()).unwrap();
        let spec = RewardSpec::new().weight(sys.user_a, 1.0);
        let report = StudyReport::new(&sys.model, &dist, &perfs, &spec);
        let probs: Vec<f64> = report.rows().iter().map(|r| r.probability).collect();
        for w in probs.windows(2) {
            assert!(w[0] >= w[1], "rows must be sorted by probability");
        }
        assert!(report.rows()[0].label.contains("serviceA"));
        let text = format!("{report}");
        assert!(text.contains("expected steady-state reward rate"));
        assert!(text.contains("{system failed}"));
    }
}
