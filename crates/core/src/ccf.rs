//! Common-cause failure groups — the failure-dependency extension.
//!
//! The paper's earlier work (its reference \[10\]) generalises independent
//! failures with "failure dependency factors".  We model the most common
//! practical dependency: a *common-cause event* (power feed, rack switch,
//! shared hypervisor) that takes down a whole group of components at
//! once.  Each group `g` is an independent Bernoulli event with
//! probability `π_g`; when it fires, every member is down regardless of
//! its own state.  Between events, components fail independently as
//! before.

/// A set of common-cause failure groups over global component indices.
#[derive(Debug, Clone, Default)]
pub struct FailureDependencies {
    groups: Vec<Group>,
}

#[derive(Debug, Clone)]
struct Group {
    name: String,
    probability: f64,
    members: Vec<usize>,
}

impl FailureDependencies {
    /// Creates an empty dependency set (equivalent to independence).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a group: with probability `probability` the common cause
    /// fires and every member component is forced down.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is outside `[0, 1]`.
    pub fn add_group(
        &mut self,
        name: impl Into<String>,
        probability: f64,
        members: Vec<usize>,
    ) -> &mut Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "group probability must lie in [0, 1]"
        );
        self.groups.push(Group {
            name: name.into(),
            probability,
            members,
        });
        self
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Name of group `g`.
    pub fn group_name(&self, g: usize) -> &str {
        &self.groups[g].name
    }

    /// Probability of a particular fire/no-fire mask over the groups
    /// (bit `g` set = group `g` fired).
    pub fn mask_probability(&self, mask: u64) -> f64 {
        self.groups
            .iter()
            .enumerate()
            .map(|(g, grp)| {
                if mask & (1 << g) != 0 {
                    grp.probability
                } else {
                    1.0 - grp.probability
                }
            })
            .product()
    }

    /// The union of members of all fired groups in `mask`.
    pub fn forced_down(&self, mask: u64) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .groups
            .iter()
            .enumerate()
            .filter(|(g, _)| mask & (1 << g) != 0)
            .flat_map(|(_, grp)| grp.members.iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analysis;
    use fmperf_ftlqn::examples::das_woodside_system;
    use fmperf_ftlqn::Component;
    use fmperf_mama::ComponentSpace;

    #[test]
    fn mask_probability_is_product() {
        let mut deps = FailureDependencies::new();
        deps.add_group("rack1", 0.2, vec![0, 1]);
        deps.add_group("rack2", 0.5, vec![2]);
        assert!((deps.mask_probability(0b00) - 0.8 * 0.5).abs() < 1e-12);
        assert!((deps.mask_probability(0b01) - 0.2 * 0.5).abs() < 1e-12);
        assert!((deps.mask_probability(0b11) - 0.2 * 0.5).abs() < 1e-12);
        let total: f64 = (0..4).map(|m| deps.mask_probability(m)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn forced_down_unions_members() {
        let mut deps = FailureDependencies::new();
        deps.add_group("a", 0.1, vec![3, 1]);
        deps.add_group("b", 0.1, vec![1, 7]);
        assert_eq!(deps.forced_down(0b11), vec![1, 3, 7]);
        assert_eq!(deps.forced_down(0), Vec::<usize>::new());
    }

    #[test]
    fn common_cause_raises_failure_probability() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let space = ComponentSpace::app_only(&sys.model);
        let analysis = Analysis::new(&graph, &space);
        let independent = analysis.enumerate();

        // Both servers share a rack that dies with probability 0.2.
        let mut deps = FailureDependencies::new();
        deps.add_group(
            "shared-rack",
            0.2,
            vec![
                sys.model.component_index(Component::Processor(sys.proc3)),
                sys.model.component_index(Component::Processor(sys.proc4)),
            ],
        );
        let dependent = analysis.enumerate_with_dependencies(&deps);
        assert!((dependent.total_probability() - 1.0).abs() < 1e-9);
        assert!(
            dependent.failed_probability() > independent.failed_probability() + 0.1,
            "losing both servers at once must hurt: {} vs {}",
            dependent.failed_probability(),
            independent.failed_probability()
        );
    }

    #[test]
    fn zero_probability_group_changes_nothing() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let space = ComponentSpace::app_only(&sys.model);
        let analysis = Analysis::new(&graph, &space);
        let independent = analysis.enumerate();
        let mut deps = FailureDependencies::new();
        deps.add_group("never", 0.0, vec![0, 1, 2]);
        let dependent = analysis.enumerate_with_dependencies(&deps);
        assert!(independent.max_abs_diff(&dependent) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must lie in")]
    fn bad_group_probability_panics() {
        FailureDependencies::new().add_group("bad", 1.5, vec![0]);
    }

    #[test]
    fn states_explored_counts_only_visited_group_masks() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let space = ComponentSpace::app_only(&sys.model);
        let analysis = Analysis::new(&graph, &space);
        let n_states = 1u64 << space.fallible_indices().len();

        // A certain group (p = 1) and an impossible one (p = 0): of the
        // four group masks only fired-certain/unfired-impossible has
        // non-zero probability, so exactly one pass over the state space
        // is made — and reported.
        let mut deps = FailureDependencies::new();
        deps.add_group("always", 1.0, vec![0]);
        deps.add_group("never", 0.0, vec![1, 2]);
        let dist = analysis.enumerate_with_dependencies(&deps);
        assert_eq!(dist.states_explored(), n_states);
        let naive = analysis.enumerate_naive_with_dependencies(&deps);
        assert_eq!(naive.states_explored(), n_states);

        // A genuinely random group doubles the visited masks.
        let mut deps = FailureDependencies::new();
        deps.add_group("coin", 0.5, vec![0]);
        deps.add_group("never", 0.0, vec![1]);
        let dist = analysis.enumerate_with_dependencies(&deps);
        assert_eq!(dist.states_explored(), 2 * n_states);
    }

    #[test]
    fn parallel_enumeration_with_dependencies_matches_sequential() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let mama = fmperf_mama::arch::centralized(&sys, 0.1);
        let space = ComponentSpace::build(&sys.model, &mama);
        let table = fmperf_mama::KnowTable::build(&graph, &mama, &space);
        let analysis = Analysis::new(&graph, &space).with_knowledge(&table);
        let mut deps = FailureDependencies::new();
        deps.add_group(
            "shared-rack",
            0.2,
            vec![
                sys.model.component_index(Component::Processor(sys.proc3)),
                sys.model.component_index(Component::Processor(sys.proc4)),
            ],
        );
        let sequential = analysis.enumerate_with_dependencies(&deps);
        for threads in [1, 3, 8] {
            let parallel = analysis.enumerate_parallel_with_dependencies(threads, &deps);
            assert!(
                sequential.max_abs_diff(&parallel) < 1e-12,
                "{threads} threads diverge"
            );
            assert_eq!(parallel.states_explored(), sequential.states_explored());
            assert_eq!(parallel.configurations(), sequential.configurations());
        }
    }
}
