//! Repair models: translating MTTF/MTTR figures into the steady-state
//! failure probabilities the paper's analysis consumes.
//!
//! The paper works directly with steady-state failure probabilities
//! (e.g. 0.1 per component).  Operational data usually arrives as mean
//! time to failure and mean time to repair; for an alternating renewal
//! process the long-run unavailability is `MTTR / (MTTF + MTTR)`,
//! independently of the distributions' shapes.

use std::fmt;

/// An alternating failure/repair process for one component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairModel {
    /// Mean time to failure, in seconds.
    pub mttf: f64,
    /// Mean time to repair, in seconds.
    pub mttr: f64,
}

/// Errors constructing a [`RepairModel`].
#[derive(Debug, Clone, PartialEq)]
pub struct RepairModelError(String);

impl fmt::Display for RepairModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid repair model: {}", self.0)
    }
}

impl std::error::Error for RepairModelError {}

impl RepairModel {
    /// Creates a model from MTTF and MTTR (both in seconds).
    ///
    /// # Errors
    ///
    /// Rejects non-positive or non-finite times.
    pub fn new(mttf: f64, mttr: f64) -> Result<Self, RepairModelError> {
        if !(mttf.is_finite() && mttf > 0.0) {
            return Err(RepairModelError(format!(
                "MTTF must be positive, got {mttf}"
            )));
        }
        if !(mttr.is_finite() && mttr > 0.0) {
            return Err(RepairModelError(format!(
                "MTTR must be positive, got {mttr}"
            )));
        }
        Ok(RepairModel { mttf, mttr })
    }

    /// Steady-state failure probability `MTTR / (MTTF + MTTR)` — what
    /// [`fmperf_ftlqn::FtlqnModel`] and MAMA builders take as `fail_prob`.
    pub fn fail_prob(&self) -> f64 {
        self.mttr / (self.mttf + self.mttr)
    }

    /// Steady-state availability (1 − failure probability).
    pub fn availability(&self) -> f64 {
        self.mttf / (self.mttf + self.mttr)
    }

    /// Failure rate λ = 1/MTTF (events per second), as consumed by the
    /// delay models.
    pub fn failure_rate(&self) -> f64 {
        1.0 / self.mttf
    }

    /// Repair rate μ = 1/MTTR (repairs per second).
    pub fn repair_rate(&self) -> f64 {
        1.0 / self.mttr
    }

    /// Reconstructs a model from a target steady-state failure
    /// probability and a known MTTR.
    ///
    /// # Errors
    ///
    /// Rejects probabilities outside `(0, 1)` and non-positive MTTR.
    pub fn from_fail_prob(fail_prob: f64, mttr: f64) -> Result<Self, RepairModelError> {
        if !(0.0..1.0).contains(&fail_prob) || fail_prob == 0.0 {
            return Err(RepairModelError(format!(
                "failure probability must lie in (0, 1), got {fail_prob}"
            )));
        }
        let mttf = mttr * (1.0 - fail_prob) / fail_prob;
        RepairModel::new(mttf, mttr)
    }

    /// The matching [`crate::delay::ComponentDelayCycle`] for a given
    /// detection+reconfiguration window.
    pub fn delay_cycle(&self, delay: f64) -> crate::delay::ComponentDelayCycle {
        crate::delay::ComponentDelayCycle {
            failure_rate: self.failure_rate(),
            repair_rate: self.repair_rate(),
            delay,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unavailability_formula() {
        // Fails monthly, repaired in ~3.3 days: p = 0.1 (the paper's
        // number corresponds to quite slow repairs).
        let m = RepairModel::new(30.0 * 86400.0, 80_000.0).unwrap();
        assert!((m.fail_prob() - 80_000.0 / (30.0 * 86400.0 + 80_000.0)).abs() < 1e-12);
        assert!((m.fail_prob() + m.availability() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn from_fail_prob_roundtrips() {
        let m = RepairModel::from_fail_prob(0.1, 3_600.0).unwrap();
        assert!((m.fail_prob() - 0.1).abs() < 1e-12);
        assert!((m.mttr - 3_600.0).abs() < 1e-9);
        assert!((m.mttf - 32_400.0).abs() < 1e-9);
    }

    #[test]
    fn rates_are_reciprocals() {
        let m = RepairModel::new(100.0, 4.0).unwrap();
        assert!((m.failure_rate() - 0.01).abs() < 1e-15);
        assert!((m.repair_rate() - 0.25).abs() < 1e-15);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(RepairModel::new(0.0, 1.0).is_err());
        assert!(RepairModel::new(1.0, -1.0).is_err());
        assert!(RepairModel::new(f64::NAN, 1.0).is_err());
        assert!(RepairModel::from_fail_prob(0.0, 1.0).is_err());
        assert!(RepairModel::from_fail_prob(1.0, 1.0).is_err());
    }

    #[test]
    fn delay_cycle_wiring() {
        let m = RepairModel::new(1000.0, 10.0).unwrap();
        let c = m.delay_cycle(5.0);
        assert!((c.failure_rate - 1e-3).abs() < 1e-15);
        assert!((c.repair_rate - 0.1).abs() < 1e-15);
        assert_eq!(c.delay, 5.0);
    }
}
