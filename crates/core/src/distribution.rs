//! The probability distribution over operational configurations — the
//! paper's set `Z` with `Prob(C_i)` (§5, step 4).

use fmperf_ftlqn::{Configuration, FtlqnModel};
use std::collections::BTreeMap;

/// A probability distribution over distinct operational configurations.
///
/// The *failed* configuration (no operational user chain) is stored like
/// any other, under [`Configuration::default`]; use
/// [`failed_probability`](ConfigDistribution::failed_probability) for
/// direct access.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConfigDistribution {
    map: BTreeMap<Configuration, f64>,
    states_explored: u64,
}

impl ConfigDistribution {
    /// Creates an empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds probability mass to a configuration.
    pub fn add(&mut self, config: Configuration, probability: f64) {
        *self.map.entry(config).or_insert(0.0) += probability;
    }

    /// Merges another distribution into this one.
    pub fn merge(&mut self, other: ConfigDistribution) {
        for (c, p) in other.map {
            self.add(c, p);
        }
        self.states_explored += other.states_explored;
    }

    /// Records how many raw states were examined (enumeration) or sampled
    /// (Monte Carlo).
    pub fn set_states_explored(&mut self, n: u64) {
        self.states_explored = n;
    }

    /// Raw states examined or sampled.
    pub fn states_explored(&self) -> u64 {
        self.states_explored
    }

    /// Number of distinct configurations (including failed, if present).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no mass has been added.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Probability of a specific configuration (0 if absent).
    pub fn probability(&self, config: &Configuration) -> f64 {
        self.map.get(config).copied().unwrap_or(0.0)
    }

    /// Probability that the system is failed.
    pub fn failed_probability(&self) -> f64 {
        self.map
            .iter()
            .filter(|(c, _)| c.is_failed())
            .map(|(_, p)| *p)
            .sum()
    }

    /// Total mass (≈ 1 for exact engines; Monte Carlo normalises).
    pub fn total_probability(&self) -> f64 {
        self.map.values().sum()
    }

    /// Iterates over `(configuration, probability)` in a deterministic
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (&Configuration, f64)> + '_ {
        self.map.iter().map(|(c, &p)| (c, p))
    }

    /// The distinct configurations, in deterministic order.
    pub fn configurations(&self) -> Vec<Configuration> {
        self.map.keys().cloned().collect()
    }

    /// The operational (non-failed) configurations sorted by decreasing
    /// probability — handy for reporting tables like the paper's.
    pub fn ranked(&self) -> Vec<(&Configuration, f64)> {
        let mut v: Vec<(&Configuration, f64)> = self
            .map
            .iter()
            .filter(|(c, _)| !c.is_failed())
            .map(|(c, &p)| (c, p))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        v
    }

    /// Renders a small table of configurations and probabilities.
    pub fn table(&self, model: &FtlqnModel) -> String {
        let mut out = String::new();
        for (c, p) in self.ranked() {
            out.push_str(&format!("{:<60} {:.3}\n", c.label(model), p));
        }
        out.push_str(&format!(
            "{:<60} {:.3}\n",
            "{system failed}",
            self.failed_probability()
        ));
        out
    }

    /// Largest absolute probability difference against another
    /// distribution over the union of configurations.
    pub fn max_abs_diff(&self, other: &ConfigDistribution) -> f64 {
        let mut keys: Vec<&Configuration> = self.map.keys().collect();
        keys.extend(other.map.keys());
        keys.sort();
        keys.dedup();
        keys.into_iter()
            .map(|k| (self.probability(k) - other.probability(k)).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmperf_ftlqn::FtTaskId;

    fn cfg(chains: &[u32]) -> Configuration {
        let mut c = Configuration::default();
        for &t in chains {
            // Construct FtTaskId through its public-ish surface: the
            // crate exposes only index(); build via transparent helper.
            c.user_chains.insert(task(t));
        }
        c
    }

    fn task(ix: u32) -> FtTaskId {
        // FtTaskId is opaque; round-trip through a model would be heavy.
        // Configuration ordering only needs distinct ids, which we can
        // get from a tiny model.
        use fmperf_ftlqn::FtlqnModel;
        use fmperf_lqn::Multiplicity;
        let mut m = FtlqnModel::new();
        let p = m.add_processor("p", 0.0, Multiplicity::Infinite);
        let mut last = None;
        for i in 0..=ix {
            let t = m.add_reference_task(format!("u{i}"), p, 0.0, 1, 0.0);
            last = Some(t);
        }
        last.unwrap()
    }

    #[test]
    fn add_and_merge_accumulate() {
        let mut d1 = ConfigDistribution::new();
        d1.add(cfg(&[0]), 0.25);
        d1.add(cfg(&[0]), 0.25);
        let mut d2 = ConfigDistribution::new();
        d2.add(cfg(&[0]), 0.1);
        d2.add(cfg(&[1]), 0.4);
        d1.merge(d2);
        assert!((d1.probability(&cfg(&[0])) - 0.6).abs() < 1e-12);
        assert!((d1.probability(&cfg(&[1])) - 0.4).abs() < 1e-12);
        assert_eq!(d1.len(), 2);
        assert!((d1.total_probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn failed_probability_separated() {
        let mut d = ConfigDistribution::new();
        d.add(Configuration::default(), 0.3);
        d.add(cfg(&[0]), 0.7);
        assert!((d.failed_probability() - 0.3).abs() < 1e-12);
        assert_eq!(d.ranked().len(), 1, "failed config excluded from ranking");
    }

    #[test]
    fn ranked_sorts_by_probability() {
        let mut d = ConfigDistribution::new();
        d.add(cfg(&[0]), 0.2);
        d.add(cfg(&[1]), 0.5);
        d.add(cfg(&[0, 1]), 0.3);
        let ranked = d.ranked();
        assert!((ranked[0].1 - 0.5).abs() < 1e-12);
        assert!((ranked[2].1 - 0.2).abs() < 1e-12);
    }

    #[test]
    fn max_abs_diff_over_union() {
        let mut d1 = ConfigDistribution::new();
        d1.add(cfg(&[0]), 0.5);
        let mut d2 = ConfigDistribution::new();
        d2.add(cfg(&[1]), 0.2);
        assert!((d1.max_abs_diff(&d2) - 0.5).abs() < 1e-12);
        assert_eq!(d1.max_abs_diff(&d1), 0.0);
    }
}
