//! Shared construction of `know` coverage guards over a Boolean algebra.
//!
//! Both symbolic engines — the ROBDD engine of [`crate::symbolic`] and the
//! MTBDD engine of [`crate::mtbdd_engine`] — need the same formulas: for a
//! [`ServiceDecision`], the conjunction of `know(c, decider)` over the
//! candidate's up-support and, per skipped higher-priority alternative,
//! the policy-dependent knowledge clause about its failed components.
//! Each `know(c, t)` is the OR over the MAMA augmented minpaths of the AND
//! of the path's component variables.
//!
//! The construction is written once against the [`GuardAlgebra`] trait and
//! instantiated for both diagram managers; BDD canonicity guarantees the
//! factoring changes nothing.
//!
//! Two knobs the MTBDD engine needs and the ROBDD engine does not:
//!
//! * `forced`: components forced down by an active common-cause group.
//!   Mirroring [`fmperf_mama::KnowFunction::compile`], a minpath through a
//!   forced element is dropped (that path cannot carry the knowledge), but
//!   a pair whose function was never/missing *originally* still takes the
//!   unmonitored default — "monitored but blocked" answers false, it does
//!   not become exempt.
//! * `skip_reliable`: elide variables of infallible components (their
//!   probability is exactly 1) so the diagram only tests fallible state.
//!
//! [`ServiceDecision`]: fmperf_ftlqn::faultgraph::ServiceDecision

use crate::analysis::{Analysis, Knowledge};
use fmperf_bdd::{Bdd, MtRef, Mtbdd, NodeRef};
use fmperf_ftlqn::faultgraph::ServiceDecision;
use fmperf_ftlqn::{Component, FtTaskId, KnowPolicy};
use std::collections::{BTreeMap, BTreeSet};

/// The Boolean operations guard construction needs, abstracted over the
/// diagram manager.
pub(crate) trait GuardAlgebra {
    /// Diagram reference type (canonical: equal refs ⇔ equal functions).
    type Ref: Copy + Eq;
    /// The constant true function.
    fn top(&mut self) -> Self::Ref;
    /// The constant false function.
    fn bot(&mut self) -> Self::Ref;
    /// The single-variable function for global component index `ix`.
    fn var_ix(&mut self, ix: usize) -> Self::Ref;
    /// Conjunction.
    fn and(&mut self, a: Self::Ref, b: Self::Ref) -> Self::Ref;
    /// Disjunction.
    fn or(&mut self, a: Self::Ref, b: Self::Ref) -> Self::Ref;
    /// Is this the constant false function?
    fn is_bot(&self, a: Self::Ref) -> bool;
}

impl GuardAlgebra for Bdd {
    type Ref = NodeRef;
    fn top(&mut self) -> NodeRef {
        NodeRef::TRUE
    }
    fn bot(&mut self) -> NodeRef {
        NodeRef::FALSE
    }
    fn var_ix(&mut self, ix: usize) -> NodeRef {
        self.var(ix)
    }
    fn and(&mut self, a: NodeRef, b: NodeRef) -> NodeRef {
        Bdd::and(self, a, b)
    }
    fn or(&mut self, a: NodeRef, b: NodeRef) -> NodeRef {
        Bdd::or(self, a, b)
    }
    fn is_bot(&self, a: NodeRef) -> bool {
        a.is_false()
    }
}

impl GuardAlgebra for Mtbdd {
    type Ref = MtRef;
    fn top(&mut self) -> MtRef {
        MtRef::TRUE
    }
    fn bot(&mut self) -> MtRef {
        MtRef::FALSE
    }
    fn var_ix(&mut self, ix: usize) -> MtRef {
        self.var(ix)
    }
    fn and(&mut self, a: MtRef, b: MtRef) -> MtRef {
        Mtbdd::and(self, a, b)
    }
    fn or(&mut self, a: MtRef, b: MtRef) -> MtRef {
        Mtbdd::or(self, a, b)
    }
    fn is_bot(&self, a: MtRef) -> bool {
        a.is_false()
    }
}

/// Per-`(component, decider)` memo for [`GuardBuilder::know`].
pub(crate) type KnowCache<R> = BTreeMap<(Component, FtTaskId), R>;

/// Builds know guards for one analysis, against any [`GuardAlgebra`].
pub(crate) struct GuardBuilder<'a> {
    analysis: &'a Analysis<'a>,
    forced: Option<&'a BTreeSet<usize>>,
    skip_reliable: bool,
}

impl<'a> GuardBuilder<'a> {
    /// A builder reproducing the plain symbolic-engine semantics: no
    /// forced components, every path variable materialised.
    pub(crate) fn new(analysis: &'a Analysis<'a>) -> Self {
        GuardBuilder {
            analysis,
            forced: None,
            skip_reliable: false,
        }
    }

    /// A builder for a common-cause context: minpaths through `forced`
    /// components are dropped, and (with `skip_reliable`) variables of
    /// infallible components are elided.
    pub(crate) fn for_context(
        analysis: &'a Analysis<'a>,
        forced: &'a BTreeSet<usize>,
        skip_reliable: bool,
    ) -> Self {
        GuardBuilder {
            analysis,
            forced: Some(forced),
            skip_reliable,
        }
    }

    /// The `know(component, decider)` guard (memoised in `cache`).
    pub(crate) fn know<A: GuardAlgebra>(
        &self,
        alg: &mut A,
        cache: &mut KnowCache<A::Ref>,
        component: Component,
        decider: FtTaskId,
    ) -> A::Ref {
        if let Some(&k) = cache.get(&(component, decider)) {
            return k;
        }
        let unreachable_value = if self.analysis.unmonitored_known {
            alg.top()
        } else {
            alg.bot()
        };
        let k = match self.analysis.knowledge {
            Knowledge::Perfect => alg.top(),
            Knowledge::Mama(table) => match table.get(component, decider) {
                None => unreachable_value,
                Some(f) if f.is_never() => unreachable_value,
                Some(f) => {
                    let mut or = alg.bot();
                    for path in &f.paths {
                        if self
                            .forced
                            .is_some_and(|forced| path.iter().any(|ix| forced.contains(ix)))
                        {
                            continue; // a forced-down element blocks this path
                        }
                        let mut and = alg.top();
                        for &ix in path {
                            if self.skip_reliable && self.analysis.space.up_prob(ix) == 1.0 {
                                continue; // infallible: the literal is vacuous
                            }
                            let v = alg.var_ix(ix);
                            and = alg.and(and, v);
                        }
                        or = alg.or(or, and);
                    }
                    or
                }
            },
        };
        cache.insert((component, decider), k);
        k
    }

    /// AND of `know(c, decider)` over a component set (short-circuits on
    /// the constant false).
    pub(crate) fn know_conjunction<'c, A: GuardAlgebra>(
        &self,
        alg: &mut A,
        cache: &mut KnowCache<A::Ref>,
        components: impl Iterator<Item = &'c Component>,
        decider: FtTaskId,
    ) -> A::Ref {
        let mut acc = alg.top();
        for &c in components {
            let k = self.know(alg, cache, c, decider);
            acc = alg.and(acc, k);
            if alg.is_bot(acc) {
                break;
            }
        }
        acc
    }

    /// The full (unsigned) guard of one [`ServiceDecision`]: knowledge of
    /// the candidate's up-support, conjoined with the policy clause for
    /// every skipped higher-priority alternative.
    pub(crate) fn decision_guard<A: GuardAlgebra>(
        &self,
        alg: &mut A,
        cache: &mut KnowCache<A::Ref>,
        d: &ServiceDecision,
    ) -> A::Ref {
        let mut guard = self.know_conjunction(alg, cache, d.up_support.iter(), d.decider);
        for (_, failed) in &d.skipped {
            let clause = if failed.is_empty() {
                // Unattributable failure: unknowable.
                alg.bot()
            } else {
                match self.analysis.policy {
                    KnowPolicy::AllFailedComponents => {
                        self.know_conjunction(alg, cache, failed.iter(), d.decider)
                    }
                    KnowPolicy::AnyFailedComponent => {
                        let mut any = alg.bot();
                        for &c in failed {
                            let k = self.know(alg, cache, c, d.decider);
                            any = alg.or(any, k);
                        }
                        any
                    }
                }
            };
            guard = alg.and(guard, clause);
        }
        guard
    }
}
