//! Management-plane fault-injection campaigns.
//!
//! A campaign asks the coverage question operationally: for every
//! single (and optionally pairwise) management-plane fault — kill a
//! manager, kill an agent, sever a connector, fail a management
//! processor — what happens to the architecture's coverage and to the
//! expected reward?
//!
//! Each scenario clones the MAMA model with the injected elements
//! pinned down (see [`fmperf_mama::inject`]), rebuilds the component
//! space and know table, and runs the budget-guarded degradation
//! ladder ([`Analysis::analyze_guarded`]), so a campaign over a large
//! model degrades per scenario instead of wedging.  Scenario analyses
//! are isolated with [`std::panic::catch_unwind`]: one pathological
//! what-if model reports its panic message instead of killing the
//! whole campaign.
//!
//! **Coverage** here is the static question: with the injected
//! elements down and everything else up, how many application
//! components can still be *known* by some deciding task?  The
//! difference against the baseline is each scenario's coverage loss,
//! and the components that slipped out are reported by name.

use crate::analysis::Analysis;
use crate::budget::{Descent, EngineKind, EstimateInfo, GuardedOptions};
use crate::reward::RewardSpec;
use fmperf_ftlqn::{Configuration, FaultGraph, KnowPolicy};
use fmperf_mama::inject::{pairwise_scenarios, single_scenarios};
use fmperf_mama::{ComponentSpace, KnowTable, MamaModel};
use fmperf_obs::Recorder;
use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Options for [`run_campaign`].
#[derive(Debug, Clone, Copy)]
pub struct CampaignOptions {
    /// Budget, sampling and threading for each scenario's guarded
    /// analysis.
    pub guarded: GuardedOptions,
    /// Also run every unordered pair of injections.
    pub pairwise: bool,
    /// Skipped-alternative knowledge policy (see
    /// [`Analysis::with_policy`]).
    pub policy: KnowPolicy,
    /// Treat unmonitored components as vacuously known (see
    /// [`Analysis::with_unmonitored_known`]); must match how the
    /// baseline model is normally analysed for deltas to be meaningful.
    pub unmonitored_known: bool,
}

impl Default for CampaignOptions {
    fn default() -> CampaignOptions {
        CampaignOptions {
            guarded: GuardedOptions::default(),
            pairwise: false,
            policy: KnowPolicy::AnyFailedComponent,
            unmonitored_known: false,
        }
    }
}

/// The analysed outcome of one scenario (or of the baseline).
#[derive(Debug, Clone)]
pub struct ScenarioAnalysis {
    /// Human-readable injection label (`baseline` for the baseline).
    pub label: String,
    /// The ladder rung that produced the distribution.
    pub engine: EngineKind,
    /// Ladder descents, in order, with their typed reasons.
    pub descents: Vec<Descent>,
    /// Monte Carlo provenance iff `engine` is the sampling rung.
    pub estimate: Option<EstimateInfo>,
    /// Probability that the system is failed under this scenario.
    pub failed_probability: f64,
    /// Application components still coverable with the injected
    /// elements down.
    pub covered: BTreeSet<String>,
    /// Baseline-covered components this scenario can no longer cover.
    pub newly_uncovered: Vec<String>,
    /// Expected reward rate, when a [`RewardSpec`] was supplied and
    /// every configuration's LQN solved.
    pub reward: Option<f64>,
    /// `reward - baseline reward`, under the same condition.
    pub reward_delta: Option<f64>,
}

impl ScenarioAnalysis {
    /// Number of baseline-covered components lost in this scenario.
    pub fn coverage_loss(&self) -> usize {
        self.newly_uncovered.len()
    }
}

/// One campaign scenario: its label and either its analysis or the
/// panic message of an analysis that blew up (isolation via
/// [`catch_unwind`]).
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Human-readable injection label.
    pub label: String,
    /// The analysis, or the panic/solver failure that prevented it.
    pub result: Result<ScenarioAnalysis, String>,
}

/// A complete campaign: the baseline plus every scenario outcome, in
/// the deterministic order of
/// [`fmperf_mama::inject::injection_points`].
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The uninjected model's analysis (reference point for deltas).
    pub baseline: ScenarioAnalysis,
    /// Every injection scenario, singles first, then pairs.
    pub scenarios: Vec<ScenarioOutcome>,
}

impl CampaignReport {
    /// Scenarios whose analysis completed, with the failures filtered
    /// out.
    pub fn analysed(&self) -> impl Iterator<Item = &ScenarioAnalysis> + '_ {
        self.scenarios.iter().filter_map(|s| s.result.as_ref().ok())
    }

    /// Scenario labels whose analysis panicked or failed, with the
    /// message.
    pub fn failures(&self) -> impl Iterator<Item = (&str, &str)> + '_ {
        self.scenarios.iter().filter_map(|s| match &s.result {
            Err(e) => Some((s.label.as_str(), e.as_str())),
            Ok(_) => None,
        })
    }
}

/// Runs a fault-injection campaign over `mama`: the baseline, every
/// single-injection scenario, and (with
/// [`pairwise`](CampaignOptions::pairwise)) every unordered pair.
///
/// Never fails as a whole: each scenario runs the guarded degradation
/// ladder under [`catch_unwind`], so the worst a scenario can do is
/// report an error string.  Reward deltas are computed when `reward`
/// is given, against an LQN-solution cache shared across scenarios
/// (distinct configurations recur heavily between scenarios).
pub fn run_campaign(
    graph: &FaultGraph<'_>,
    mama: &MamaModel,
    reward: Option<&RewardSpec>,
    opts: &CampaignOptions,
) -> CampaignReport {
    run_campaign_observed(graph, mama, reward, opts, None, None)
}

/// Progress report handed to [`run_campaign_observed`]'s callback after
/// each scenario (and the baseline) finishes.
#[derive(Debug)]
pub struct ScenarioProgress<'a> {
    /// Position in the campaign: `0` for the baseline, then `1..=total`.
    pub index: usize,
    /// Number of injection scenarios (the baseline is not counted).
    pub total: usize,
    /// The scenario's injection label (`baseline` for the baseline).
    pub label: &'a str,
    /// The ladder rung that produced the result, or `None` when the
    /// scenario's analysis panicked or failed.
    pub engine: Option<EngineKind>,
    /// Wall-clock time the scenario's analysis took.
    pub elapsed: Duration,
}

/// [`run_campaign`] with observability hooks: an optional [`Recorder`]
/// threaded into every scenario's analysis, and an optional progress
/// callback invoked after each scenario completes (the baseline first,
/// with index 0).
pub fn run_campaign_observed(
    graph: &FaultGraph<'_>,
    mama: &MamaModel,
    reward: Option<&RewardSpec>,
    opts: &CampaignOptions,
    recorder: Option<&dyn Recorder>,
    progress: Option<&dyn Fn(&ScenarioProgress<'_>)>,
) -> CampaignReport {
    let mut reward_cache: BTreeMap<Configuration, f64> = BTreeMap::new();
    let mut scenarios = single_scenarios(mama);
    if opts.pairwise {
        scenarios.extend(pairwise_scenarios(mama));
    }
    let total = scenarios.len();

    let start = Instant::now();
    let baseline = analyze_model(
        graph,
        mama,
        "baseline",
        None,
        reward,
        opts,
        recorder,
        &mut reward_cache,
    )
    .unwrap_or_else(|e| panic!("invariant: the uninjected baseline model analyses cleanly — {e}"));
    if let Some(report) = progress {
        report(&ScenarioProgress {
            index: 0,
            total,
            label: "baseline",
            engine: Some(baseline.engine),
            elapsed: start.elapsed(),
        });
    }

    let outcomes = scenarios
        .into_iter()
        .enumerate()
        .map(|(i, scenario)| {
            let label = scenario.label(mama);
            let start = Instant::now();
            let result = catch_unwind(AssertUnwindSafe(|| {
                let injected = scenario.apply(mama);
                analyze_model(
                    graph,
                    &injected,
                    &label,
                    Some(&baseline),
                    reward,
                    opts,
                    recorder,
                    &mut reward_cache,
                )
            }));
            let result = match result {
                Ok(r) => r,
                Err(panic) => Err(panic_message(panic)),
            };
            if let Some(report) = progress {
                report(&ScenarioProgress {
                    index: i + 1,
                    total,
                    label: &label,
                    engine: result.as_ref().ok().map(|s| s.engine),
                    elapsed: start.elapsed(),
                });
            }
            ScenarioOutcome {
                label: label.clone(),
                result,
            }
        })
        .collect();

    CampaignReport {
        baseline,
        scenarios: outcomes,
    }
}

/// Analyses one (possibly injected) model: guarded ladder, static
/// coverage probe, optional reward fold.
#[allow(clippy::too_many_arguments)]
fn analyze_model(
    graph: &FaultGraph<'_>,
    mama: &MamaModel,
    label: &str,
    baseline: Option<&ScenarioAnalysis>,
    reward: Option<&RewardSpec>,
    opts: &CampaignOptions,
    recorder: Option<&dyn Recorder>,
    reward_cache: &mut BTreeMap<Configuration, f64>,
) -> Result<ScenarioAnalysis, String> {
    let space = ComponentSpace::build(graph.model(), mama);
    let table = KnowTable::build(graph, mama, &space);
    let mut analysis = Analysis::new(graph, &space)
        .with_knowledge(&table)
        .with_policy(opts.policy)
        .with_unmonitored_known(opts.unmonitored_known);
    if let Some(r) = recorder {
        analysis = analysis.with_recorder(r);
    }
    let report = analysis.analyze_guarded(&opts.guarded);

    let covered = covered_components(graph, &space, &table);
    let newly_uncovered: Vec<String> = match baseline {
        Some(base) => base.covered.difference(&covered).cloned().collect(),
        None => Vec::new(),
    };

    let reward_value = match reward {
        Some(spec) => Some(expected_reward_cached(
            graph,
            &report.distribution,
            spec,
            reward_cache,
        )?),
        None => None,
    };
    let reward_delta = match (reward_value, baseline.and_then(|b| b.reward)) {
        (Some(r), Some(b)) => Some(r - b),
        _ => None,
    };

    Ok(ScenarioAnalysis {
        label: label.to_string(),
        engine: report.engine,
        descents: report.descents,
        estimate: report.estimate,
        failed_probability: report.distribution.failed_probability(),
        covered,
        newly_uncovered,
        reward: reward_value,
        reward_delta,
    })
}

/// The static coverage probe: with every deterministically-down
/// element (up-probability 0 — exactly the injected ones) down and
/// everything else up, which application components can some deciding
/// task still learn about?
///
/// Shared by the campaign (per-scenario coverage loss) and by the
/// structural audit's differential replay (see [`crate::audit`]).
pub fn covered_components(
    graph: &FaultGraph<'_>,
    space: &ComponentSpace,
    table: &KnowTable,
) -> BTreeSet<String> {
    let mut probe = space.all_up();
    for (ix, up) in probe.iter_mut().enumerate() {
        if space.up_prob(ix) == 0.0 {
            *up = false;
        }
    }
    let mut covered = BTreeSet::new();
    for (&(component, _decider), know) in table.iter() {
        if know.holds(&probe) {
            covered.insert(graph.model().component_name(component).to_string());
        }
    }
    covered
}

/// `Σ p(C) · R(C)` over the distribution, solving each distinct
/// configuration's LQN at most once across the whole campaign.
fn expected_reward_cached(
    graph: &FaultGraph<'_>,
    dist: &crate::distribution::ConfigDistribution,
    spec: &RewardSpec,
    cache: &mut BTreeMap<Configuration, f64>,
) -> Result<f64, String> {
    let missing: Vec<Configuration> = dist
        .configurations()
        .into_iter()
        .filter(|c| !cache.contains_key(c))
        .collect();
    if !missing.is_empty() {
        let perfs = crate::reward::solve_configurations(graph.model(), &missing)
            .map_err(|e| format!("LQN solve failed: {e}"))?;
        for (config, perf) in missing.into_iter().zip(perfs) {
            cache.insert(config, spec.reward(&perf));
        }
    }
    Ok(dist
        .iter()
        .map(|(c, p)| {
            p * cache
                .get(c)
                .copied()
                .expect("invariant: every configuration was just solved into the cache")
        })
        .sum())
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("analysis panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("analysis panicked: {s}")
    } else {
        "analysis panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmperf_ftlqn::examples::das_woodside_system;
    use fmperf_mama::arch;

    #[test]
    fn centralized_campaign_covers_all_scenarios_exactly() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let mama = arch::centralized(&sys, 0.1);
        let report = run_campaign(&graph, &mama, None, &CampaignOptions::default());
        // 6 component injections + every connector.
        let expected = 6 + mama.connector_count();
        assert_eq!(report.scenarios.len(), expected);
        assert_eq!(report.failures().count(), 0);
        // 2^14 (and the +1-bit injected variants) fit the default
        // budget: every scenario stays exact.
        assert_eq!(report.baseline.engine, EngineKind::Exact);
        for s in report.analysed() {
            assert!(s.engine.is_exact(), "{} degraded unexpectedly", s.label);
            assert!(s.failed_probability >= report.baseline.failed_probability - 1e-12);
        }
    }

    #[test]
    fn killing_the_central_manager_uncovers_everything() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let mama = arch::centralized(&sys, 0.1);
        let report = run_campaign(&graph, &mama, None, &CampaignOptions::default());
        let kill_m1 = report
            .analysed()
            .find(|s| s.label == "kill-manager(m1)")
            .expect("the campaign includes the manager kill");
        // The centralized architecture funnels all knowledge through
        // m1: with it down, nothing is covered any more.
        assert_eq!(kill_m1.covered.len(), 0);
        assert_eq!(kill_m1.coverage_loss(), report.baseline.covered.len());
        assert!(kill_m1.failed_probability > report.baseline.failed_probability);
    }

    #[test]
    fn pairwise_adds_all_unordered_pairs() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let mama = arch::centralized(&sys, 0.1);
        let opts = CampaignOptions {
            pairwise: true,
            ..CampaignOptions::default()
        };
        let report = run_campaign(&graph, &mama, None, &opts);
        let n = 6 + mama.connector_count();
        assert_eq!(report.scenarios.len(), n + n * (n - 1) / 2);
        assert_eq!(report.failures().count(), 0);
    }

    #[test]
    fn reward_deltas_are_nonpositive_for_exact_scenarios() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let mama = arch::centralized(&sys, 0.1);
        let spec = RewardSpec::new()
            .weight(sys.user_a, 1.0)
            .weight(sys.user_b, 1.0);
        let report = run_campaign(&graph, &mama, Some(&spec), &CampaignOptions::default());
        let base = report.baseline.reward.expect("baseline reward solves");
        assert!(base > 0.0);
        for s in report.analysed() {
            let delta = s.reward_delta.expect("exact scenario reward solves");
            // Injections only remove knowledge: reward cannot improve.
            assert!(delta <= 1e-9, "{} improved the reward by {delta}", s.label);
        }
    }
}
