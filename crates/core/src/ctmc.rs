//! A small continuous-time Markov chain substrate.
//!
//! The paper's conclusion points to its reference \[29\] for extending the
//! analysis with detection and reconfiguration *delays*, noting that the
//! extension "leads to a serious increase in the number of states".  The
//! delay extension in [`crate::delay`] uses this module: per-component
//! failure/detection/repair cycles are small CTMCs whose stationary
//! distributions weight the rewards of the intermediate (failed but not
//! yet reconfigured) phases.
//!
//! The stationary distribution is computed with the
//! Grassmann–Taksar–Heyman (GTH) elimination, which avoids subtraction
//! entirely and is numerically stable even for stiff chains (failure
//! rates of 1e-6/s against detection rates of 1/s are routine here).

#![allow(clippy::needless_range_loop)] // index-parallel arrays: indices are the clearer idiom

use std::fmt;

/// A finite CTMC described by its off-diagonal transition rates.
#[derive(Debug, Clone)]
pub struct Ctmc {
    n: usize,
    /// Dense rate matrix; `rates[i][j]` = rate from `i` to `j`, diagonal
    /// unused.
    rates: Vec<Vec<f64>>,
}

/// Errors from CTMC analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum CtmcError {
    /// The chain is reducible (some state unreachable or absorbing
    /// subclass): no unique stationary distribution exists.
    Reducible {
        /// A state involved in the reducibility.
        state: usize,
    },
    /// A rate was negative or non-finite.
    InvalidRate {
        /// Source state.
        from: usize,
        /// Target state.
        to: usize,
    },
}

impl fmt::Display for CtmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtmcError::Reducible { state } => {
                write!(f, "chain is reducible around state {state}")
            }
            CtmcError::InvalidRate { from, to } => {
                write!(f, "invalid rate on transition {from} -> {to}")
            }
        }
    }
}

impl std::error::Error for CtmcError {}

impl Ctmc {
    /// Creates a chain with `n` states and no transitions.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "a chain needs at least one state");
        Ctmc {
            n,
            rates: vec![vec![0.0; n]; n],
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for the trivial one-state chain... never: `n >= 1` and the
    /// chain always has at least one state.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Adds (accumulates) a transition rate from `i` to `j`.
    ///
    /// # Panics
    ///
    /// Panics if `i == j` or either index is out of bounds.
    pub fn add_transition(&mut self, i: usize, j: usize, rate: f64) -> &mut Self {
        assert!(i != j, "self transitions are meaningless in a CTMC");
        assert!(i < self.n && j < self.n, "state out of bounds");
        self.rates[i][j] += rate;
        self
    }

    /// The current rate from `i` to `j`.
    pub fn rate(&self, i: usize, j: usize) -> f64 {
        self.rates[i][j]
    }

    /// Stationary distribution by GTH elimination.
    ///
    /// # Errors
    ///
    /// [`CtmcError::InvalidRate`] for negative or non-finite rates;
    /// [`CtmcError::Reducible`] when no unique stationary distribution
    /// exists.
    pub fn stationary(&self) -> Result<Vec<f64>, CtmcError> {
        for (i, row) in self.rates.iter().enumerate() {
            for (j, &r) in row.iter().enumerate() {
                if i != j && (r < 0.0 || !r.is_finite()) {
                    return Err(CtmcError::InvalidRate { from: i, to: j });
                }
            }
        }
        let n = self.n;
        if n == 1 {
            return Ok(vec![1.0]);
        }
        // GTH works on the embedded structure directly; copy the rates.
        let mut q = self.rates.clone();
        // Forward elimination: fold states n-1 .. 1 into the rest.
        for k in (1..n).rev() {
            let s: f64 = q[k][..k].iter().sum();
            if s <= 0.0 {
                // State k cannot reach the remaining block: reducible.
                return Err(CtmcError::Reducible { state: k });
            }
            for i in 0..k {
                let factor = q[i][k] / s;
                if factor == 0.0 {
                    continue;
                }
                for j in 0..k {
                    if i != j {
                        q[i][j] += factor * q[k][j];
                    }
                }
            }
        }
        // Back substitution.
        let mut pi = vec![0.0f64; n];
        pi[0] = 1.0;
        for k in 1..n {
            let s: f64 = q[k][..k].iter().sum();
            let mut val = 0.0;
            for i in 0..k {
                val += pi[i] * q[i][k];
            }
            pi[k] = val / s;
        }
        let total: f64 = pi.iter().sum();
        if !(total.is_finite() && total > 0.0) {
            return Err(CtmcError::Reducible { state: 0 });
        }
        for p in &mut pi {
            *p /= total;
        }
        // Reducibility the elimination cannot see: states never entered.
        for (k, &p) in pi.iter().enumerate() {
            if p == 0.0 && self.rates[k].iter().any(|&r| r > 0.0) {
                // An unreachable transient state is tolerable only if it
                // also receives nothing; then it deserves probability 0
                // but the chain is still reducible by definition.
                let receives = (0..n).any(|i| self.rates[i][k] > 0.0);
                if !receives {
                    return Err(CtmcError::Reducible { state: k });
                }
            }
        }
        Ok(pi)
    }

    /// Expected steady-state reward: `Σ π_i · reward[i]`.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::stationary`] failures.
    ///
    /// # Panics
    ///
    /// Panics if `rewards.len() != len()`.
    pub fn expected_reward(&self, rewards: &[f64]) -> Result<f64, CtmcError> {
        assert_eq!(rewards.len(), self.n, "one reward per state");
        let pi = self.stationary()?;
        Ok(pi.iter().zip(rewards).map(|(p, r)| p * r).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_state_up_down() {
        // Up -λ-> Down -μ-> Up: availability μ/(λ+μ).
        let mut c = Ctmc::new(2);
        c.add_transition(0, 1, 0.1).add_transition(1, 0, 0.9);
        let pi = c.stationary().unwrap();
        assert!((pi[0] - 0.9).abs() < 1e-12);
        assert!((pi[1] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn birth_death_matches_closed_form() {
        // M/M/1/K with arrival λ, service μ: π_k ∝ (λ/μ)^k.
        let (lambda, mu, k) = (2.0, 3.0, 5usize);
        let mut c = Ctmc::new(k + 1);
        for i in 0..k {
            c.add_transition(i, i + 1, lambda);
            c.add_transition(i + 1, i, mu);
        }
        let pi = c.stationary().unwrap();
        let rho: f64 = lambda / mu;
        let norm: f64 = (0..=k).map(|i| rho.powi(i as i32)).sum();
        for (i, &p) in pi.iter().enumerate() {
            let expect = rho.powi(i as i32) / norm;
            assert!((p - expect).abs() < 1e-12, "state {i}: {p} vs {expect}");
        }
    }

    #[test]
    fn stiff_rates_remain_stable() {
        // Failure once a month vs detection in a second: 7 orders of
        // magnitude apart.  GTH must not lose the small mass.
        let mut c = Ctmc::new(3);
        let lambda = 1.0 / (30.0 * 86400.0);
        c.add_transition(0, 1, lambda); // fail
        c.add_transition(1, 2, 1.0); // detect
        c.add_transition(2, 0, 1.0 / 3600.0); // repair in an hour
        let pi = c.stationary().unwrap();
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // π1/π0 = λ/δ exactly.
        assert!((pi[1] / pi[0] - lambda).abs() / lambda < 1e-9);
        assert!(pi[0] > 0.998);
    }

    #[test]
    fn cyclic_three_state() {
        // 0 -> 1 -> 2 -> 0 with unit rates: uniform.
        let mut c = Ctmc::new(3);
        c.add_transition(0, 1, 1.0)
            .add_transition(1, 2, 1.0)
            .add_transition(2, 0, 1.0);
        let pi = c.stationary().unwrap();
        for &p in &pi {
            assert!((p - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn reducible_chain_rejected() {
        // Two disconnected states.
        let c = Ctmc::new(2);
        assert!(matches!(c.stationary(), Err(CtmcError::Reducible { .. })));
        // One-way street into an absorbing state is fine for GTH
        // (absorbing state has all the mass)... but state 0 then gets 0
        // and the chain is technically absorbing; our detector flags the
        // never-receiving source.
        let mut c = Ctmc::new(2);
        c.add_transition(0, 1, 1.0);
        assert!(matches!(c.stationary(), Err(CtmcError::Reducible { .. })));
    }

    #[test]
    fn invalid_rate_rejected() {
        let mut c = Ctmc::new(2);
        c.add_transition(0, 1, f64::NAN);
        c.add_transition(1, 0, 1.0);
        assert!(matches!(c.stationary(), Err(CtmcError::InvalidRate { .. })));
    }

    #[test]
    fn expected_reward_weights_by_stationary() {
        let mut c = Ctmc::new(2);
        c.add_transition(0, 1, 1.0).add_transition(1, 0, 3.0);
        // π = (0.75, 0.25)
        let r = c.expected_reward(&[4.0, 0.0]).unwrap();
        assert!((r - 3.0).abs() < 1e-12);
    }

    #[test]
    fn single_state_chain() {
        let c = Ctmc::new(1);
        assert_eq!(c.stationary().unwrap(), vec![1.0]);
        assert_eq!(c.expected_reward(&[7.0]).unwrap(), 7.0);
    }

    #[test]
    #[should_panic(expected = "self transitions")]
    fn self_transition_panics() {
        Ctmc::new(2).add_transition(1, 1, 1.0);
    }
}
