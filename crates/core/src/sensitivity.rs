//! Sensitivity of the expected reward to component availabilities.
//!
//! For each fallible component `i`, computes `∂R/∂a_i` where `a_i` is the
//! component's up-probability — the reward-weighted generalisation of
//! Birnbaum importance.  Because the expected reward is multilinear in
//! the availabilities,
//!
//! ```text
//! ∂R/∂a_i = E[reward | i up] − E[reward | i down]
//! ```
//!
//! which the implementation computes in a single enumeration pass by
//! accumulating each state's reward into the up- or down-conditional of
//! every component.

use crate::analysis::{Analysis, Knowledge};
use crate::reward::{solve_configurations, ConfigSolveError, RewardSpec};
use fmperf_ftlqn::{Configuration, PerfectKnowledge};
use std::collections::BTreeMap;

/// Per-component sensitivity of the expected reward.
#[derive(Debug, Clone)]
pub struct Sensitivity {
    /// `(global component index, ∂R/∂availability)` for every fallible
    /// component, in index order.
    pub derivatives: Vec<(usize, f64)>,
}

impl Sensitivity {
    /// The components ranked by decreasing importance.
    pub fn ranked(&self) -> Vec<(usize, f64)> {
        let mut v = self.derivatives.clone();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Derivative for one component index (0 when not fallible).
    pub fn derivative(&self, ix: usize) -> f64 {
        self.derivatives
            .iter()
            .find(|&&(i, _)| i == ix)
            .map_or(0.0, |&(_, d)| d)
    }
}

/// Computes `∂R/∂availability` for every fallible component.
///
/// Solves one LQN per distinct configuration (cached), then enumerates
/// the state space once.
///
/// # Errors
///
/// Propagates LQN solve failures.
///
/// # Panics
///
/// Panics if more than 30 components are fallible.
pub fn sensitivity(
    analysis: &Analysis<'_>,
    spec: &RewardSpec,
) -> Result<Sensitivity, ConfigSolveError> {
    let space = analysis.space;
    let ft = analysis.graph.model();
    let fallible = space.fallible_indices();
    assert!(fallible.len() <= 30, "sensitivity enumeration infeasible");

    // Reward per distinct configuration.
    let dist = analysis.enumerate();
    let configs = dist.configurations();
    let perfs = solve_configurations(ft, &configs)?;
    let reward_of: BTreeMap<&Configuration, f64> = configs
        .iter()
        .zip(&perfs)
        .map(|(c, p)| (c, spec.reward(p)))
        .collect();

    // Single pass accumulating conditionals.
    let n_states: u64 = 1 << fallible.len();
    let mut up_sum = vec![0.0f64; fallible.len()];
    let mut down_sum = vec![0.0f64; fallible.len()];
    let mut state = space.all_up();
    for mask in 0..n_states {
        let mut prob = 1.0;
        for (bit, &ix) in fallible.iter().enumerate() {
            let up = mask & (1 << bit) != 0;
            state[ix] = up;
            prob *= if up {
                space.up_prob(ix)
            } else {
                1.0 - space.up_prob(ix)
            };
        }
        if prob == 0.0 {
            continue;
        }
        let config = match analysis.knowledge {
            Knowledge::Perfect => {
                analysis
                    .graph
                    .configuration(&state, &PerfectKnowledge, analysis.policy)
            }
            Knowledge::Mama(table) => {
                let oracle = table
                    .oracle(&state)
                    .default_for_missing(analysis.unmonitored_known);
                analysis
                    .graph
                    .configuration(&state, &oracle, analysis.policy)
            }
        };
        let r = reward_of.get(&config).copied().unwrap_or(0.0);
        for (bit, &ix) in fallible.iter().enumerate() {
            let up = mask & (1 << bit) != 0;
            // Conditional weight: divide out this component's own factor.
            let a = space.up_prob(ix);
            if up {
                if a > 0.0 {
                    up_sum[bit] += prob / a * r;
                }
            } else if a < 1.0 {
                down_sum[bit] += prob / (1.0 - a) * r;
            }
        }
    }
    let derivatives = fallible
        .iter()
        .enumerate()
        .map(|(bit, &ix)| (ix, up_sum[bit] - down_sum[bit]))
        .collect();
    Ok(Sensitivity { derivatives })
}

/// [`sensitivity`] computed through the compiled MTBDD instead of the
/// `2^N` enumeration: compile the state→configuration map once, then
/// read every `∂R/∂a_i` off the lo/hi co-factors in one linear pass.
///
/// Matches [`sensitivity`] up to float associativity; the LQN solves per
/// distinct configuration are shared between both paths and dominate the
/// cost for small models, so this variant pays off when the state space
/// is large or several reward specs are evaluated against one compile.
///
/// # Errors
///
/// Propagates LQN solve failures.
///
/// # Panics
///
/// Panics if more than 30 application components are fallible.
pub fn sensitivity_mtbdd(
    analysis: &Analysis<'_>,
    spec: &RewardSpec,
) -> Result<Sensitivity, ConfigSolveError> {
    let compiled = analysis.compile_mtbdd();
    let configs = compiled.configurations().to_vec();
    let perfs = solve_configurations(analysis.graph.model(), &configs)?;
    let rewards: Vec<f64> = perfs.iter().map(|p| spec.reward(p)).collect();
    Ok(compiled.reward_sensitivity(&rewards))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analysis;
    use fmperf_ftlqn::examples::das_woodside_system;
    use fmperf_ftlqn::Component;
    use fmperf_mama::{arch, ComponentSpace, KnowTable};

    #[test]
    fn derivatives_match_finite_differences() {
        // Multilinearity means the derivative equals the slope between
        // any two availability points; check against rebuilt models.
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let space = ComponentSpace::app_only(&sys.model);
        let analysis = Analysis::new(&graph, &space);
        // Weight only the A group: cross-group queueing effects (losing
        // AppA *helps* UserB by freeing Server1) would otherwise muddy
        // the comparison below.
        let spec = RewardSpec::new().weight(sys.user_a, 1.0);
        let sens = sensitivity(&analysis, &spec).unwrap();

        // AppA matters more than Server2 (the backup): losing the app
        // kills the whole A chain, losing the backup only hurts when the
        // primary is already down.
        let ix_app_a = sys.model.component_index(Component::Task(sys.app_a));
        let ix_s2 = sys.model.component_index(Component::Task(sys.server2));
        assert!(sens.derivative(ix_app_a) > sens.derivative(ix_s2));
        assert!(sens.derivative(ix_app_a) > 0.0);
        assert!(
            sens.derivative(ix_s2) > 0.0,
            "the backup still has positive value"
        );
        // AppB does not support the A chain at all; if anything, its
        // *absence* relieves Server1 queueing for A.  Its importance for
        // the A-only reward is therefore non-positive — a genuinely
        // performability-flavoured effect a pure availability model
        // cannot express.
        let ix_app_b = sys.model.component_index(Component::Task(sys.app_b));
        assert!(sens.derivative(ix_app_b) <= 1e-9);
        assert!(sens.derivative(ix_app_a) > sens.derivative(ix_app_b).abs());
    }

    #[test]
    fn manager_importance_visible_under_mama() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let mama = arch::centralized(&sys, 0.1);
        let space = ComponentSpace::build(&sys.model, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        let analysis = Analysis::new(&graph, &space).with_knowledge(&table);
        let spec = RewardSpec::new()
            .weight(sys.user_a, 1.0)
            .weight(sys.user_b, 1.0);
        let sens = sensitivity(&analysis, &spec).unwrap();
        let m1 = mama.component_by_name("m1").unwrap();
        let d_m1 = sens.derivative(space.mama_index(m1));
        assert!(
            d_m1 > 0.0,
            "the central manager must carry positive reward importance"
        );
        // The ranking helper puts the most important first.
        let ranked = sens.ranked();
        assert!(ranked[0].1 >= ranked[ranked.len() - 1].1);
    }
}
