//! The compiled bitmask evaluation kernel.
//!
//! The paper's §5 algorithm enumerates all `2^N` up/down states; its
//! conclusion calls for "much more efficient" evaluation.  The naive
//! enumerator re-derives every state's configuration from scratch —
//! per-state oracle binding, `BTreeSet` allocations and a recursive walk
//! of the fault graph — even though a `2^18` hierarchical run collapses
//! to a handful of distinct configurations.  This kernel makes the hot
//! path allocation-free:
//!
//! * **State word.**  The fallible elements of the [`ComponentSpace`]
//!   are packed into a single `u64`: bit `b` is
//!   `fallible_indices()[b]`, set = up (see
//!   [`ComponentSpace::fallible_bits`]).  Perfectly reliable elements
//!   have no bit — they are up in every state.
//! * **Compiled `know`.**  Every `know(c, t)` function's augmented
//!   minpaths become bitmask lists: `known ⇔ ∃ path: word & mask ==
//!   mask` ([`fmperf_mama::CompiledKnowTable`]).  Evaluating the whole
//!   table is a few dozen AND-compares instead of set walks.
//! * **Gray-code enumeration.**  States are visited in reflected
//!   Gray-code order, so each step flips exactly one bit.  The walker
//!   splits the state probability into a *high* product over bits `>=
//!   LO_BITS` — updated with one divide and one multiply, but only once
//!   per [`LANE_WIDTH`]-state block — and a low-bit factor table
//!   ([`GrayWalk`]): the serial floating-point dependency chain runs at
//!   block granularity, not per state.
//! * **Lane-parallel scan.**  The default scan pulls whole
//!   [`LANE_WIDTH`]-state blocks off the walker and evaluates the
//!   lanes' probabilities, effective words and packed `know` answers as
//!   fixed-width array batches ([`LaneKnow`] lays the OR-of-AND masks
//!   out structure-of-arrays) that the autovectorizer turns into SIMD;
//!   only the memo/accumulate resolve pass stays sequential, which is
//!   what keeps the result bit-identical to the scalar reference scan.
//! * **Decision memoisation.**  The configuration is a pure function of
//!   the *decision word*: the application-component bits of the state
//!   word plus the packed `know` answer word.  A table `decision word →
//!   interned configuration id` means the full allocating evaluator runs
//!   only once per distinct decision-relevant bit pattern; every other
//!   state is a mask-and-probe.
//!
//! **Soundness of the memo key.**  The recursive evaluator reads only
//! (a) the up/down state of application components — all of which have
//! global index `< app_count()`, hence live in the application bit mask
//! — and (b) `know` oracle answers, each of which is either a compiled
//! pair (captured in the answer word) or a constant
//! (`unmonitored_known`, fixed per analysis).  Two states with equal
//! decision words therefore produce identical configurations.
//!
//! **Exactness.**  The kernel and the naive reference enumerator
//! ([`Analysis::enumerate_naive`]) share the same [`GrayWalk`] and visit
//! states in the same order, so each state's probability is the *same
//! float* and per-configuration sums accumulate in the *same order*:
//! the two distributions are bit-identical, not merely within epsilon.
//! The lane scan preserves this: [`GrayWalk::next_block`] emits the
//! same words and the same floats as the iterator, the batched know
//! answers equal the incremental [`KnowEval`] word on every effective
//! state, and lanes are resolved and accumulated sequentially in visit
//! order — so scalar, lane and naive paths all agree bit for bit.
//!
//! Common-cause failure dependencies are supported by building one
//! evaluation context per group mask: forced-down fallible elements are
//! cleared from the word, and `know` tables are recompiled with
//! forced-down reliable elements removed
//! ([`fmperf_mama::KnowTable::compile_with_forced`]).

#![forbid(unsafe_code)]

use crate::analysis::{Analysis, Knowledge};
use crate::budget::{AnalysisError, BudgetGuard, CHECK_INTERVAL};
use crate::ccf::FailureDependencies;
use crate::distribution::ConfigDistribution;
use fmperf_ftlqn::Configuration;
use fmperf_mama::{CompiledKnowTable, ComponentSpace};
use fmperf_obs::{Counter, Phase, Recorder, Span};
use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

/// A multiplicative hasher for the decision-word memo.  The keys are
/// two already-well-mixed bit words; SipHash's DoS resistance buys
/// nothing here and its per-probe cost dominates the hot loop.
#[derive(Default)]
struct WordHasher(u64);

impl Hasher for WordHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(23);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Widest direct-indexed memo the kernel will allocate: `2^20` slots
/// (4 MiB of `u32`).  Past that the flat table stops being
/// cache-resident and the hash map wins back.
const FLAT_MEMO_MAX_BITS: u32 = 20;

/// Decision-word → interned configuration id.
///
/// Two layouts behind one probe interface.  The decision key is
/// `(application bits, packed know answers)`; when the application bits
/// are a contiguous low mask and the combined key width fits
/// [`FLAT_MEMO_MAX_BITS`], the memo is a flat direct-indexed table
/// (`u32::MAX` marking empty slots) — on the Gray scan the low
/// application bits change at almost every step, so the probe sits on
/// the per-state hot path and a single indexed load beats a hash-map
/// probe several times over.  Otherwise it falls back to the hash map.
/// Both layouts populate in the same first-sighting order, so the
/// interned configuration ids — and the accumulated sums — are
/// identical.
enum Memo {
    /// Direct-indexed table: `table[app_bits | answers << shift]`.
    Flat {
        table: Vec<u32>,
        /// Number of application bits (the answers' shift distance).
        shift: u32,
        /// Populated slots, for the budget guard's memo cap.
        used: usize,
    },
    Map(HashMap<(u64, u64), u32, BuildHasherDefault<WordHasher>>),
}

impl Memo {
    fn len(&self) -> usize {
        match self {
            Memo::Flat { used, .. } => *used,
            Memo::Map(m) => m.len(),
        }
    }

    fn clear(&mut self) {
        match self {
            Memo::Flat { table, used, .. } => {
                table.fill(u32::MAX);
                *used = 0;
            }
            Memo::Map(m) => m.clear(),
        }
    }

    #[inline]
    fn get(&self, key: (u64, u64)) -> Option<u32> {
        match self {
            Memo::Flat { table, shift, .. } => {
                let id = table[(key.0 | (key.1 << shift)) as usize];
                (id != u32::MAX).then_some(id)
            }
            Memo::Map(m) => m.get(&key).copied(),
        }
    }

    fn insert(&mut self, key: (u64, u64), id: u32) {
        debug_assert_ne!(id, u32::MAX, "id u32::MAX is the empty-slot sentinel");
        match self {
            Memo::Flat { table, shift, used } => {
                table[(key.0 | (key.1 << *shift)) as usize] = id;
                *used += 1;
            }
            Memo::Map(m) => {
                m.insert(key, id);
            }
        }
    }
}

/// Incrementally maintained packed `know` answer word.
///
/// Along a Gray-code walk almost every step flips a single bit, so only
/// the pairs whose masks involve that bit can change their answer; the
/// rest of the word carries over.  Produces exactly
/// [`CompiledKnowTable::answers`] at every state.
struct KnowEval {
    /// Per pair: the surviving path masks (empty for constant pairs).
    masks: Vec<Vec<u64>>,
    /// Constant part of the answer word (always-pairs, and never-pairs
    /// under a `true` unmonitored default).
    constant: u64,
    /// For each word bit, the dynamic pairs whose masks involve it.
    affected: Vec<Vec<u32>>,
    /// The current answer word.
    answers: u64,
}

impl KnowEval {
    fn new(table: &CompiledKnowTable, n_bits: usize, default_for_missing: bool) -> KnowEval {
        let mut masks = Vec::with_capacity(table.len());
        let mut constant = 0u64;
        let mut affected = vec![Vec::new(); n_bits];
        for (j, (_, _, know)) in table.pairs().enumerate() {
            if know.is_always() || (know.is_never() && default_for_missing) {
                constant |= 1u64 << j;
            }
            let dynamic = if know.is_always() || know.is_never() {
                Vec::new()
            } else {
                know.masks().to_vec()
            };
            let mut union = 0u64;
            for &m in &dynamic {
                union |= m;
            }
            for (b, lst) in affected.iter_mut().enumerate() {
                if union & (1u64 << b) != 0 {
                    lst.push(j as u32);
                }
            }
            masks.push(dynamic);
        }
        KnowEval {
            masks,
            constant,
            affected,
            answers: 0,
        }
    }

    /// Evaluates pair `j`'s dynamic predicate.
    // Not `contains`: `word & m == m` is a subset test, the lint misfires.
    #[allow(clippy::manual_contains)]
    #[inline]
    fn holds(&self, j: u32, word: u64) -> bool {
        self.masks[j as usize].iter().any(|&m| word & m == m)
    }

    /// Full evaluation (walk entry or after a context switch).
    fn reset(&mut self, word: u64) {
        self.answers = self.constant;
        for j in 0..self.masks.len() as u32 {
            if self.holds(j, word) {
                self.answers |= 1u64 << j;
            }
        }
    }

    /// Re-evaluates only the pairs affected by the bits in `flipped`.
    fn update(&mut self, word: u64, mut flipped: u64) {
        while flipped != 0 {
            let b = flipped.trailing_zeros() as usize;
            flipped &= flipped - 1;
            for &j in &self.affected[b] {
                if self.holds(j, word) {
                    self.answers |= 1u64 << j;
                } else {
                    self.answers &= !(1u64 << j);
                }
            }
        }
    }
}

/// Structure-of-arrays layout of a compiled know table for the lane
/// scan.
///
/// Within a [`LANE_WIDTH`]-state block the lanes' effective words
/// differ only in the low [`LO_BITS`] Gray bits, so the `(component,
/// task)` pairs split two ways:
///
/// * **Volatile pairs** have at least one surviving path mask touching
///   the low bits: their answers can differ between lanes, so all of
///   the pair's masks become flat `(mask, pair-bit)` rows whose inner
///   loop over the lanes is branch-free `[u64; W]` bit ops the
///   autovectorizer can turn into SIMD.
/// * **Stable pairs** involve only high bits: their answers form one
///   word shared by every lane of a block, updated incrementally —
///   entering a block flips exactly one high bit, so only the pairs on
///   that bit's affected list are re-tested.
///
/// Path masks intersecting the context's forced-down bits are dropped
/// up front: effective words have those bits cleared, so such a mask
/// can never hold.  The produced answers equal
/// [`CompiledKnowTable::answers`] (and the incremental [`KnowEval`])
/// on every effective word, which keeps the lane scan's memo keys —
/// and hence its result — bit-identical to the scalar scan's.
struct LaneKnow {
    /// Constant part of the answer word (always-pairs, and never-pairs
    /// under a `true` unmonitored default).
    constant: u64,
    /// Flat volatile rows: a pair's bit is OR-ed in when any of its
    /// rows' masks holds.
    vol_masks: Vec<u64>,
    vol_bits: Vec<u64>,
    /// Per stable pair: surviving masks and the pair's answer bit.
    stable_masks: Vec<Vec<u64>>,
    stable_bits: Vec<u64>,
    /// For each word bit, the stable pairs whose masks involve it.
    stable_affected: Vec<Vec<u32>>,
    /// Stable + constant-free part of the current block's answer word.
    stable_word: u64,
}

impl LaneKnow {
    fn new(
        table: &CompiledKnowTable,
        n_bits: usize,
        default_for_missing: bool,
        forced_mask: u64,
    ) -> LaneKnow {
        let lo_mask = (1u64 << LO_BITS.min(n_bits as u32)) - 1;
        let mut lk = LaneKnow {
            constant: 0,
            vol_masks: Vec::new(),
            vol_bits: Vec::new(),
            stable_masks: Vec::new(),
            stable_bits: Vec::new(),
            stable_affected: vec![Vec::new(); n_bits],
            stable_word: 0,
        };
        for (j, (_, _, know)) in table.pairs().enumerate() {
            let bit = 1u64 << j;
            if know.is_always() || (know.is_never() && default_for_missing) {
                lk.constant |= bit;
            }
            if know.is_always() || know.is_never() {
                continue;
            }
            let masks: Vec<u64> = know
                .masks()
                .iter()
                .copied()
                .filter(|m| m & forced_mask == 0)
                .collect();
            if masks.is_empty() {
                continue; // no surviving path: constant-false
            }
            if masks.iter().any(|&m| m & lo_mask != 0) {
                for &m in &masks {
                    lk.vol_masks.push(m);
                    lk.vol_bits.push(bit);
                }
            } else {
                let id = lk.stable_masks.len() as u32;
                let mut union = 0u64;
                for &m in &masks {
                    union |= m;
                }
                for (b, lst) in lk.stable_affected.iter_mut().enumerate() {
                    if union & (1u64 << b) != 0 {
                        lst.push(id);
                    }
                }
                lk.stable_masks.push(masks);
                lk.stable_bits.push(bit);
            }
        }
        lk
    }

    /// Evaluates pair `i`'s surviving stable masks.
    // Not `contains`: `word & m == m` is a subset test, the lint misfires.
    #[allow(clippy::manual_contains)]
    #[inline]
    fn stable_holds(&self, i: usize, word: u64) -> bool {
        self.stable_masks[i].iter().any(|&m| word & m == m)
    }

    /// Evaluates every stable pair against a block's base effective
    /// word (walk entry).
    fn reset_stable(&mut self, base_eff: u64) {
        self.stable_word = 0;
        for i in 0..self.stable_masks.len() {
            if self.stable_holds(i, base_eff) {
                self.stable_word |= self.stable_bits[i];
            }
        }
    }

    /// Re-tests only the stable pairs whose masks involve the high bit
    /// `b` flipped at a block boundary.
    fn update_stable(&mut self, base_eff: u64, b: usize) {
        for k in 0..self.stable_affected[b].len() {
            let i = self.stable_affected[b][k] as usize;
            if self.stable_holds(i, base_eff) {
                self.stable_word |= self.stable_bits[i];
            } else {
                self.stable_word &= !self.stable_bits[i];
            }
        }
    }

    /// Answer words for a chunk of `W` effective lanes: the constant
    /// and block-stable bits OR-ed with each lane's volatile answers.
    #[inline]
    fn answers_chunk<const W: usize>(&self, eff: &[u64; W], out: &mut [u64; W]) {
        let base = self.constant | self.stable_word;
        *out = [base; W];
        for (&m, &bit) in self.vol_masks.iter().zip(&self.vol_bits) {
            for l in 0..W {
                let holds = u64::from(eff[l] & m == m);
                out[l] |= holds.wrapping_neg() & bit;
            }
        }
    }
}

/// Number of low state-index bits whose factor products are
/// table-driven.  The walker's running product covers only the bits `>=
/// LO_BITS`, and along the Gray walk a high bit flips exactly once per
/// [`LANE_WIDTH`] states (at block-aligned indices) — so the serial
/// divide/multiply dependency chain runs per block, and the per-state
/// probability is one independent table-lookup multiply.
const LO_BITS: u32 = 3;

/// States per Gray-scan lane block (`2^LO_BITS`).
pub const LANE_WIDTH: usize = 1 << LO_BITS;

/// Gray codes of the block-local indices `0..LANE_WIDTH` in visit
/// order: `gray(s0 + j) == gray(s0) ^ GRAY8[j]` for any block-aligned
/// `s0` and `j < LANE_WIDTH`, because `gray(s0)` has zero low bits
/// except possibly bit `LO_BITS - 1` (inherited from bit `LO_BITS` of
/// `s0`) and `gray(j)` has no high bits.
const GRAY8: [u64; LANE_WIDTH] = [0, 1, 3, 2, 6, 7, 5, 4];

/// Iterator over `(state word, state probability)` in reflected
/// Gray-code order.
///
/// The probability is maintained as `hi_prob * lo_table[low bits]`: the
/// high product changes by one divide and one multiply only at block
/// boundaries (where a bit `>= LO_BITS` flips), and the low-bit factors
/// come from an 8-entry table of precomputed ordered products.
///
/// Zero factors (elements with up-probability 0 or 1 contributing a zero
/// term) are tracked by count in the high product rather than multiplied
/// in, so it never degenerates to `0/0`; the low table stores its zeros
/// directly because it is never divided.
///
/// The compiled kernel (scalar and lane scans alike) and the naive
/// reference enumerator all draw states from this walker — that shared
/// float trajectory is what makes their results bit-identical.
pub(crate) struct GrayWalk {
    /// Up-probability per bit.
    up: Vec<f64>,
    /// Down-probability per bit (`1 - up`).
    down: Vec<f64>,
    word: u64,
    /// Product of the non-zero factors of bits `>= lo_bits`.
    hi_prob: f64,
    /// Zero factors among bits `>= lo_bits` (probability is 0 while > 0).
    hi_zeros: u32,
    /// `lo_table[m]`: ordered product of the low-bit factors for low
    /// word `m`.
    lo_table: [f64; LANE_WIDTH],
    /// `min(LO_BITS, up.len())` — sub-block state spaces keep every bit
    /// in the table.
    lo_bits: u32,
    lo_mask: u64,
    /// Next state index to emit (the walk covers `[lo, hi)`).
    next: u64,
    end: u64,
    /// `false` until the first state is emitted (the first emission does
    /// not flip a bit).
    started: bool,
}

impl GrayWalk {
    /// A walk over state indices `[lo, hi)` of an `up.len()`-bit space;
    /// state index `s` maps to word `s ^ (s >> 1)`.
    pub(crate) fn new(up: &[f64], lo: u64, hi: u64) -> GrayWalk {
        assert!(up.len() <= 64, "state word overflow");
        let down: Vec<f64> = up.iter().map(|p| 1.0 - p).collect();
        let lo_bits = LO_BITS.min(up.len() as u32);
        let lo_mask = (1u64 << lo_bits) - 1;
        let mut lo_table = [1.0f64; LANE_WIDTH];
        for (m, slot) in lo_table.iter_mut().enumerate() {
            let mut f = 1.0;
            for b in 0..lo_bits as usize {
                f *= if m & (1 << b) != 0 { up[b] } else { down[b] };
            }
            *slot = f;
        }
        let word = lo ^ (lo >> 1);
        let mut hi_prob = 1.0;
        let mut hi_zeros = 0u32;
        for b in lo_bits as usize..up.len() {
            let f = if word & (1u64 << b) != 0 {
                up[b]
            } else {
                down[b]
            };
            if f == 0.0 {
                hi_zeros += 1;
            } else {
                hi_prob *= f;
            }
        }
        GrayWalk {
            up: up.to_vec(),
            down,
            word,
            hi_prob,
            hi_zeros,
            lo_table,
            lo_bits,
            lo_mask,
            next: lo,
            end: hi,
            started: false,
        }
    }

    /// Applies the high-product update for flipping bit `b >= lo_bits`.
    #[inline]
    fn flip_hi(&mut self, b: usize) {
        let bit = 1u64 << b;
        let now_up = self.word & bit == 0; // about to flip
        let (old, new) = if now_up {
            (self.down[b], self.up[b])
        } else {
            (self.up[b], self.down[b])
        };
        self.word ^= bit;
        if old == 0.0 {
            self.hi_zeros -= 1;
        } else {
            self.hi_prob /= old;
        }
        if new == 0.0 {
            self.hi_zeros += 1;
        } else {
            self.hi_prob *= new;
        }
    }

    /// Emits the next block of up to [`LANE_WIDTH`] states into `words`
    /// and `probs`, returning the number of lanes filled (0 once the
    /// walk is exhausted).
    ///
    /// Equivalent to pulling the same states off the iterator one at a
    /// time — identical words and identical floats, since both paths
    /// compute `hi_prob * lo_table[low bits]` from the same operands —
    /// but a full aligned block performs the single high-bit update and
    /// then eight independent lookup-multiplies with no per-state
    /// branching, which the autovectorizer can SIMD.  Unaligned
    /// prologue/epilogue states (and sub-block state spaces) fall back
    /// to single-state emission off the shared iterator path.
    pub(crate) fn next_block(
        &mut self,
        words: &mut [u64; LANE_WIDTH],
        probs: &mut [f64; LANE_WIDTH],
    ) -> usize {
        let s0 = self.next;
        if s0 >= self.end {
            return 0;
        }
        if self.lo_bits < LO_BITS
            || s0 & (LANE_WIDTH as u64 - 1) != 0
            || self.end - s0 < LANE_WIDTH as u64
        {
            let (w, p) = self.next().expect("s0 < end: the walk is not done");
            words[0] = w;
            probs[0] = p;
            return 1;
        }
        if self.started {
            // Entering an aligned block flips exactly one high bit:
            // trailing_zeros(s0) >= LO_BITS because s0 is block-aligned.
            self.flip_hi(s0.trailing_zeros() as usize);
        }
        self.started = true;
        self.next = s0 + LANE_WIDTH as u64;
        let base = self.word;
        let lo_base = (base & self.lo_mask) as usize;
        let hi = if self.hi_zeros > 0 { 0.0 } else { self.hi_prob };
        for j in 0..LANE_WIDTH {
            words[j] = base ^ GRAY8[j];
            probs[j] = hi * self.lo_table[lo_base ^ GRAY8[j] as usize];
        }
        self.word = words[LANE_WIDTH - 1];
        LANE_WIDTH
    }
}

impl Iterator for GrayWalk {
    type Item = (u64, f64);

    fn next(&mut self) -> Option<(u64, f64)> {
        let s = self.next;
        if s >= self.end {
            return None;
        }
        if self.started {
            // State index s differs from s-1 in Gray code by exactly
            // bit trailing_zeros(s); only flips of high bits touch the
            // running product.
            let b = s.trailing_zeros();
            if b >= self.lo_bits {
                self.flip_hi(b as usize);
            } else {
                self.word ^= 1u64 << b;
            }
        }
        self.started = true;
        self.next = s + 1;
        let p = if self.hi_zeros > 0 {
            0.0
        } else {
            self.hi_prob * self.lo_table[(self.word & self.lo_mask) as usize]
        };
        Some((self.word, p))
    }
}

/// One evaluation context: a common-cause group mask with its
/// probability, forced-down overrides and (for MAMA knowledge) the
/// recompiled know table.
struct EvalContext {
    /// Probability of this group fire/no-fire mask.
    gprob: f64,
    /// Global indices forced down (fallible and reliable alike).
    forced: Vec<usize>,
    /// Word bits of the fallible forced-down elements.
    forced_mask: u64,
    /// Know table recompiled for this context; `None` = use the
    /// kernel's base table (no forced elements, or perfect knowledge).
    know: Option<CompiledKnowTable>,
}

/// Shared accumulation state of one kernel run: interned configurations,
/// their probability sums, and the scratch state vector for memo misses.
struct Accumulator {
    ids: BTreeMap<Configuration, u32>,
    configs: Vec<Configuration>,
    sums: Vec<f64>,
    state: Vec<bool>,
}

impl Accumulator {
    fn new(space: &ComponentSpace) -> Accumulator {
        Accumulator {
            ids: BTreeMap::new(),
            configs: Vec::new(),
            sums: Vec::new(),
            state: space.all_up(),
        }
    }

    fn into_distribution(self, states_explored: u64) -> ConfigDistribution {
        let mut dist = ConfigDistribution::new();
        for (config, sum) in self.configs.into_iter().zip(self.sums) {
            dist.add(config, sum);
        }
        dist.set_states_explored(states_explored);
        dist
    }
}

/// Sentinel in [`MissFast::pair_bit`]: no know pair for this
/// (component, task) — the oracle answer is `default_for_missing`.
const NO_PAIR: u8 = u8::MAX;

/// Precomputed machinery for the memo-miss fast path: drives the
/// allocation-light [`FaultGraph::configuration_masked`] evaluator with
/// a bit-test gate over the packed know-answer word, instead of
/// rebuilding a state vector and re-running the minpath oracle.
///
/// Only available when the application model has at most 64 components
/// (the packed state must fit one word); misses fall back to the
/// canonical evaluator otherwise, and always under forced-down contexts
/// (where the answer word's `is_never` handling can diverge from the
/// state-bound oracle).
#[derive(Debug)]
struct MissFast {
    /// `(word-bit, component-bit)` per fallible application component:
    /// translates the app bits of an effective word into the packed
    /// component state mask.
    app_bits: Vec<(u64, u64)>,
    /// All `component_count` bits set: the all-up packed state.
    all_up: u64,
    /// `pair_bit[task * component_count + component]` = answer-bit index
    /// of the know pair, [`NO_PAIR`] when the pair was never compiled.
    pair_bit: Vec<u8>,
    component_count: usize,
}

/// [`MaskServiceGate`] answering from a packed know-answer word: pair
/// `j`'s answer is bit `j`, exactly as the kernel's scan computed it.
struct AnswerGate<'k> {
    fast: &'k MissFast,
    answers: u64,
    default_for_missing: bool,
    policy: fmperf_ftlqn::KnowPolicy,
}

impl AnswerGate<'_> {
    #[inline]
    fn knows(&self, component: u32, task: fmperf_ftlqn::FtTaskId) -> bool {
        let b = self.fast.pair_bit[task.index() * self.fast.component_count + component as usize];
        if b == NO_PAIR {
            self.default_for_missing
        } else {
            self.answers >> b & 1 == 1
        }
    }
}

impl fmperf_ftlqn::MaskServiceGate for AnswerGate<'_> {
    fn pass(
        &mut self,
        decider: fmperf_ftlqn::FtTaskId,
        support_mask: u64,
        skipped: &[(fmperf_ftlqn::FtEntryId, u64)],
    ) -> bool {
        let mut support = support_mask;
        while support != 0 {
            let ix = support.trailing_zeros();
            support &= support - 1;
            if !self.knows(ix, decider) {
                return false;
            }
        }
        for &(_, failed_mask) in skipped {
            let mut failed = failed_mask;
            let ok = failed != 0
                && match self.policy {
                    fmperf_ftlqn::KnowPolicy::AllFailedComponents => loop {
                        if failed == 0 {
                            break true;
                        }
                        let ix = failed.trailing_zeros();
                        failed &= failed - 1;
                        if !self.knows(ix, decider) {
                            break false;
                        }
                    },
                    fmperf_ftlqn::KnowPolicy::AnyFailedComponent => loop {
                        if failed == 0 {
                            break false;
                        }
                        let ix = failed.trailing_zeros();
                        failed &= failed - 1;
                        if self.knows(ix, decider) {
                            break true;
                        }
                    },
                };
            if !ok {
                return false;
            }
        }
        true
    }
}

/// An [`Analysis`] compiled to bitmask form: packed state word layout,
/// compiled `know` table and the decision-memo machinery.
///
/// Build one with [`Analysis::compile`]; the engines
/// ([`Analysis::enumerate`], [`Analysis::enumerate_parallel`],
/// [`Analysis::monte_carlo`]) construct and use it automatically and
/// fall back to the naive path when compilation is not possible.
#[derive(Debug)]
pub struct CompiledKernel<'a> {
    analysis: Analysis<'a>,
    /// Global index per word bit (the space's fallible indices).
    fallible: Vec<usize>,
    /// Up-probability per word bit.
    up: Vec<f64>,
    /// Word bits whose global index is an application component — the
    /// part of the state the fault-graph evaluator can observe directly.
    app_mask: u64,
    /// Compiled know table (`None` under perfect knowledge).
    know: Option<CompiledKnowTable>,
    /// Memo-miss fast path (`None` when the model exceeds 64
    /// components).
    miss_fast: Option<MissFast>,
}

impl<'a> Analysis<'a> {
    /// Compiles this analysis to a bitmask evaluation kernel.
    ///
    /// Returns `None` when compilation is impossible: more than 64
    /// fallible elements, or a MAMA know table with more than 64
    /// `(component, task)` pairs (the packed answer word would
    /// overflow).  Callers fall back to the naive enumerator.
    pub fn compile(&self) -> Option<CompiledKernel<'a>> {
        let _span = Span::enter(self.recorder, Phase::GuardBuild);
        let space = self.space;
        let fallible = space.fallible_indices();
        if fallible.len() > 64 {
            return None;
        }
        let know = match self.knowledge {
            Knowledge::Perfect => None,
            Knowledge::Mama(table) => Some(table.compile(space)?),
        };
        let app_count = space.app_count();
        let mut app_mask = 0u64;
        let mut up = Vec::with_capacity(fallible.len());
        for (b, &ix) in fallible.iter().enumerate() {
            if ix < app_count {
                app_mask |= 1u64 << b;
            }
            up.push(space.up_prob(ix));
        }
        let model = self.graph.model();
        let cc = model.component_count();
        // Application-component global indices equal the model's
        // component indices (the space lays application components out
        // first, in `component_index` order) — the precondition for
        // translating word bits straight into packed component bits.
        let miss_fast = (cc <= 64 && app_count == cc).then(|| {
            let mut pair_bit = vec![NO_PAIR; model.task_count() * cc];
            if let Some(k) = &know {
                for (j, (c, t, _)) in k.pairs().enumerate() {
                    pair_bit[t.index() * cc + model.component_index(c)] = j as u8;
                }
            }
            MissFast {
                app_bits: fallible
                    .iter()
                    .enumerate()
                    .filter(|&(_, &ix)| ix < app_count)
                    .map(|(b, &ix)| (1u64 << b, 1u64 << ix))
                    .collect(),
                all_up: if cc == 64 { u64::MAX } else { (1u64 << cc) - 1 },
                pair_bit,
                component_count: cc,
            }
        });
        Some(CompiledKernel {
            analysis: *self,
            fallible,
            up,
            app_mask,
            know,
            miss_fast,
        })
    }
}

/// Local per-scan counter accumulators: the hot loop bumps plain
/// integers and the totals reach the recorder once, when the scan ends
/// (including early exits on a tripped guard — hence the [`Drop`]).
#[derive(Debug, Default)]
struct ScanCounters {
    steps: u64,
    visited: u64,
    memo_hits: u64,
    memo_misses: u64,
    know_evals: u64,
    polls: u64,
}

/// Flushes [`ScanCounters`] to the recorder on scope exit.
#[derive(Debug)]
struct ScanFlush<'a> {
    rec: Option<&'a dyn Recorder>,
    c: ScanCounters,
}

impl Drop for ScanFlush<'_> {
    fn drop(&mut self) {
        if let Some(r) = self.rec {
            r.add(Counter::GrayCodeSteps, self.c.steps);
            r.add(Counter::StatesVisited, self.c.visited);
            r.add(Counter::MemoHits, self.c.memo_hits);
            r.add(Counter::MemoMisses, self.c.memo_misses);
            r.add(Counter::KnowGuardEvals, self.c.know_evals);
            r.add(Counter::BudgetPolls, self.c.polls);
        }
    }
}

/// How a kernel scan walks the state space.
#[derive(Clone, Copy, Debug)]
enum ScanMode {
    /// One state at a time off the shared Gray iterator — the
    /// reference path the lane scan is differenced against.
    Scalar,
    /// Block scan with `W`-lane batched probability and know-answer
    /// evaluation (`W` in `{1, 2, 4, 8}`).
    Lanes(usize),
}

impl CompiledKernel<'_> {
    /// Number of word bits (fallible elements).
    pub fn bit_count(&self) -> usize {
        self.fallible.len()
    }

    /// A fresh decision memo in the best layout this kernel supports:
    /// direct-indexed when the application bits are a contiguous low
    /// mask (the [`ComponentSpace`] orders application components
    /// first, so this is the common case) and the key fits
    /// [`FLAT_MEMO_MAX_BITS`], hash map otherwise.
    fn new_memo(&self) -> Memo {
        let app_bits = self.app_mask.count_ones();
        let pairs = self.know.as_ref().map_or(0, |t| t.len() as u32);
        let contiguous = self.app_mask & self.app_mask.wrapping_add(1) == 0;
        if contiguous && app_bits + pairs <= FLAT_MEMO_MAX_BITS {
            Memo::Flat {
                table: vec![u32::MAX; 1usize << (app_bits + pairs)],
                shift: app_bits,
                used: 0,
            }
        } else {
            Memo::Map(HashMap::default())
        }
    }

    /// The compiled know table, if the analysis uses MAMA knowledge.
    pub fn know_table(&self) -> Option<&CompiledKnowTable> {
        self.know.as_ref()
    }

    /// Exact enumeration of all `2^N` states through the kernel using
    /// the [`LANE_WIDTH`]-lane scan; bit-identical to both
    /// [`enumerate_scalar`](CompiledKernel::enumerate_scalar) and
    /// [`Analysis::enumerate_naive`].
    ///
    /// # Panics
    ///
    /// Panics if more than 30 elements are fallible (use
    /// [`Analysis::monte_carlo`] or [`Analysis::symbolic`]).
    pub fn enumerate(&self) -> ConfigDistribution {
        self.enumerate_masked(None, ScanMode::Lanes(LANE_WIDTH))
    }

    /// Exact enumeration through the scalar (one state per step)
    /// reference scan.  Kept as the differential baseline for the lane
    /// scan: results are bit-identical, the lane path is just faster.
    pub fn enumerate_scalar(&self) -> ConfigDistribution {
        self.enumerate_masked(None, ScanMode::Scalar)
    }

    /// [`enumerate`](CompiledKernel::enumerate) with an explicit lane
    /// width (1, 2, 4 or 8); every width produces the same bits.
    ///
    /// # Panics
    ///
    /// Panics on an unsupported width.
    pub fn enumerate_with_lane_width(&self, width: usize) -> ConfigDistribution {
        assert!(
            matches!(width, 1 | 2 | 4 | 8),
            "lane width must be 1, 2, 4 or 8, got {width}"
        );
        self.enumerate_masked(None, ScanMode::Lanes(width))
    }

    /// [`enumerate`](CompiledKernel::enumerate) with common-cause
    /// failure dependencies; bit-identical to
    /// [`Analysis::enumerate_naive_with_dependencies`].
    pub fn enumerate_with_dependencies(&self, deps: &FailureDependencies) -> ConfigDistribution {
        self.enumerate_masked(Some(deps), ScanMode::Lanes(LANE_WIDTH))
    }

    /// [`enumerate_scalar`](CompiledKernel::enumerate_scalar) with
    /// common-cause failure dependencies.
    pub fn enumerate_scalar_with_dependencies(
        &self,
        deps: &FailureDependencies,
    ) -> ConfigDistribution {
        self.enumerate_masked(Some(deps), ScanMode::Scalar)
    }

    fn enumerate_masked(
        &self,
        deps: Option<&FailureDependencies>,
        mode: ScanMode,
    ) -> ConfigDistribution {
        crate::analysis::assert_enumerable(self.fallible.len(), deps);
        let _span = Span::enter(self.analysis.recorder, Phase::StateScan);
        let n_states = 1u64 << self.fallible.len();
        let contexts = self.contexts(deps);
        let mut acc = Accumulator::new(self.analysis.space);
        let mut memo = self.new_memo();
        for ctx in &contexts {
            memo.clear(); // forced overrides differ per context
            self.scan_dispatch(mode, ctx, 0, n_states, &mut memo, &mut acc, None)
                .expect("invariant: an unguarded scan has no budget to exhaust");
        }
        acc.into_distribution(n_states * contexts.len() as u64)
    }

    /// Monomorphization shim: routes a scan to the scalar loop or to
    /// the lane loop instantiated at the requested width.
    #[allow(clippy::too_many_arguments)]
    fn scan_dispatch(
        &self,
        mode: ScanMode,
        ctx: &EvalContext,
        lo: u64,
        hi: u64,
        memo: &mut Memo,
        acc: &mut Accumulator,
        guard: Option<&BudgetGuard>,
    ) -> Result<(), AnalysisError> {
        match mode {
            ScanMode::Scalar => self.scan_range(ctx, lo, hi, memo, acc, guard),
            ScanMode::Lanes(1) => self.scan_range_lanes::<1>(ctx, lo, hi, memo, acc, guard),
            ScanMode::Lanes(2) => self.scan_range_lanes::<2>(ctx, lo, hi, memo, acc, guard),
            ScanMode::Lanes(4) => self.scan_range_lanes::<4>(ctx, lo, hi, memo, acc, guard),
            ScanMode::Lanes(8) => self.scan_range_lanes::<8>(ctx, lo, hi, memo, acc, guard),
            ScanMode::Lanes(w) => unreachable!("lane width {w} rejected at the API boundary"),
        }
    }

    /// Budget-guarded exact enumeration; a within-budget run is
    /// bit-identical to [`enumerate`](CompiledKernel::enumerate).
    ///
    /// # Errors
    ///
    /// [`AnalysisError::DeadlineExpired`] or
    /// [`AnalysisError::MemoCapExceeded`] when the guard trips mid-scan.
    pub fn try_enumerate_guarded(
        &self,
        guard: &BudgetGuard,
    ) -> Result<ConfigDistribution, AnalysisError> {
        crate::analysis::check_enumerable(self.fallible.len(), None)?;
        let _span = Span::enter(self.analysis.recorder, Phase::StateScan);
        let n_states = 1u64 << self.fallible.len();
        let contexts = self.contexts(None);
        let mut acc = Accumulator::new(self.analysis.space);
        let mut memo = self.new_memo();
        for ctx in &contexts {
            memo.clear();
            self.scan_dispatch(
                ScanMode::Lanes(LANE_WIDTH),
                ctx,
                0,
                n_states,
                &mut memo,
                &mut acc,
                Some(guard),
            )?;
        }
        Ok(acc.into_distribution(n_states * contexts.len() as u64))
    }

    /// Budget-guarded multi-threaded enumeration; a within-budget run is
    /// bit-identical to
    /// [`enumerate_parallel`](CompiledKernel::enumerate_parallel) without
    /// dependencies.  The first worker to exhaust the budget cancels its
    /// siblings through the shared guard.
    ///
    /// # Errors
    ///
    /// The tripping worker's [`AnalysisError`].
    pub fn try_enumerate_parallel_guarded(
        &self,
        threads: usize,
        guard: &BudgetGuard,
    ) -> Result<ConfigDistribution, AnalysisError> {
        crate::analysis::check_enumerable(self.fallible.len(), None)?;
        let _span = Span::enter(self.analysis.recorder, Phase::StateScan);
        let threads = threads.max(1);
        let n_states = 1u64 << self.fallible.len();
        let chunk = n_states.div_ceil(threads as u64);
        let contexts = self.contexts(None);
        let mut dist = ConfigDistribution::new();
        let mut first_err: Option<AnalysisError> = None;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let lo = chunk * t as u64;
                let hi = (lo + chunk).min(n_states);
                if lo >= hi {
                    continue;
                }
                let contexts = &contexts;
                handles.push(scope.spawn(move || {
                    let mut acc = Accumulator::new(self.analysis.space);
                    let mut memo = self.new_memo();
                    for ctx in contexts {
                        memo.clear();
                        if let Err(e) = self.scan_dispatch(
                            ScanMode::Lanes(LANE_WIDTH),
                            ctx,
                            lo,
                            hi,
                            &mut memo,
                            &mut acc,
                            Some(guard),
                        ) {
                            guard.trip(e.clone());
                            return Err(e);
                        }
                    }
                    Ok(acc.into_distribution(0))
                }));
            }
            for h in handles {
                match h
                    .join()
                    .expect("invariant: enumeration worker never panics")
                {
                    Ok(part) => dist.merge(part),
                    Err(e) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                }
            }
        });
        if let Some(e) = first_err {
            return Err(e);
        }
        dist.set_states_explored(n_states * contexts.len() as u64);
        Ok(dist)
    }

    /// The hot loop: walks state indices `[lo, hi)` of one context in
    /// Gray-code order, maintaining the state probability and the `know`
    /// answer word incrementally, and accumulates probabilities per
    /// interned configuration.
    ///
    /// With a guard, the deadline and memo cap are polled at
    /// [`CHECK_INTERVAL`]-state block boundaries: the Gray walk is a
    /// single iterator whose blocks are pulled off with `take`, so the
    /// per-state body is guard-free and emits the exact same `(word,
    /// probability)` sequence either way — a within-budget guarded scan
    /// is bit-identical to an unguarded one and pays only one guard poll
    /// per block on the hot path.
    fn scan_range(
        &self,
        ctx: &EvalContext,
        lo: u64,
        hi: u64,
        memo: &mut Memo,
        acc: &mut Accumulator,
        guard: Option<&BudgetGuard>,
    ) -> Result<(), AnalysisError> {
        let mut fc = ScanFlush {
            rec: self.analysis.recorder,
            c: ScanCounters::default(),
        };
        let know = ctx.know.as_ref().or(self.know.as_ref());
        let mut ke =
            know.map(|k| KnowEval::new(k, self.fallible.len(), self.analysis.unmonitored_known));
        // `prev_eff` is the effective word of the last state whose
        // answers were computed; zero-probability states are skipped
        // without touching the answer word, so a later update may flip
        // several bits at once.
        let mut prev_eff: Option<u64> = None;
        let mut last: Option<((u64, u64), u32)> = None;
        let mut walk = GrayWalk::new(&self.up, lo, hi);
        let mut remaining = hi - lo;
        while remaining > 0 {
            let block = match guard {
                Some(g) => {
                    g.check()?;
                    fc.c.polls += 1;
                    let cap = g.budget().max_memo_entries;
                    if memo.len() > cap {
                        return Err(AnalysisError::MemoCapExceeded {
                            entries: memo.len(),
                            max_entries: cap,
                        });
                    }
                    CHECK_INTERVAL.min(remaining)
                }
                None => remaining,
            };
            for (word, wprob) in walk.by_ref().take(block as usize) {
                fc.c.steps += 1;
                let p = ctx.gprob * wprob;
                if p == 0.0 {
                    continue;
                }
                fc.c.visited += 1;
                let eff = word & !ctx.forced_mask;
                let answers = match &mut ke {
                    Some(ke) => {
                        match prev_eff {
                            Some(pe) if pe == eff => {}
                            Some(pe) => {
                                ke.update(eff, pe ^ eff);
                                fc.c.know_evals += 1;
                            }
                            None => {
                                ke.reset(eff);
                                fc.c.know_evals += 1;
                            }
                        }
                        ke.answers
                    }
                    None => 0,
                };
                prev_eff = Some(eff);
                let key = (eff & self.app_mask, answers);
                let id = match last {
                    // Consecutive states usually differ only in bits the
                    // decision cannot see: reuse the previous id without
                    // a table probe.
                    Some((k, id)) if k == key => {
                        fc.c.memo_hits += 1;
                        id
                    }
                    _ => {
                        let id = self.config_id(eff, key, &ctx.forced, memo, acc, &mut fc.c);
                        last = Some((key, id));
                        id
                    }
                };
                acc.sums[id as usize] += p;
            }
            remaining -= block;
        }
        Ok(())
    }

    /// The lane-parallel hot loop: same visit order, memo keys and
    /// accumulation order as [`scan_range`](CompiledKernel::scan_range)
    /// — and therefore the same bits — but states come off the walk in
    /// [`LANE_WIDTH`]-state blocks whose probabilities, effective words
    /// and know answers are computed as `W`-lane array batches the
    /// autovectorizer can SIMD.  Only the resolve pass (memo probe +
    /// accumulate) stays sequential; every float it touches was
    /// computed from the same operands as the scalar scan's.
    ///
    /// The subrange Gray-walk machinery doubles as the lane splitter:
    /// unaligned thread-chunk bounds produce single-state
    /// prologue/epilogue emissions off the shared iterator path.
    fn scan_range_lanes<const W: usize>(
        &self,
        ctx: &EvalContext,
        lo: u64,
        hi: u64,
        memo: &mut Memo,
        acc: &mut Accumulator,
        guard: Option<&BudgetGuard>,
    ) -> Result<(), AnalysisError> {
        debug_assert!(
            W > 0 && LANE_WIDTH.is_multiple_of(W),
            "lane width must divide 8"
        );
        let mut fc = ScanFlush {
            rec: self.analysis.recorder,
            c: ScanCounters::default(),
        };
        let know = ctx.know.as_ref().or(self.know.as_ref());
        let mut lk = know.map(|k| {
            LaneKnow::new(
                k,
                self.fallible.len(),
                self.analysis.unmonitored_known,
                ctx.forced_mask,
            )
        });
        // `prev_eff` mirrors the scalar scan's lazy-update bookkeeping:
        // a know evaluation is charged per visited state whose effective
        // word differs from the previous visited state's, keeping the
        // counter partition-invariant and equal across scan modes.
        let mut prev_eff: Option<u64> = None;
        let mut last: Option<((u64, u64), u32)> = None;
        let mut walk = GrayWalk::new(&self.up, lo, hi);
        let mut words = [0u64; LANE_WIDTH];
        let mut wprobs = [0.0f64; LANE_WIDTH];
        let mut eff = [0u64; LANE_WIDTH];
        let mut pp = [0.0f64; LANE_WIDTH];
        let mut ans = [0u64; LANE_WIDTH];
        let mut stable_ready = false;
        let mut pos = lo;
        let mut until_check = 0u64;
        while pos < hi {
            if let Some(g) = guard {
                if until_check == 0 {
                    g.check()?;
                    fc.c.polls += 1;
                    let cap = g.budget().max_memo_entries;
                    if memo.len() > cap {
                        return Err(AnalysisError::MemoCapExceeded {
                            entries: memo.len(),
                            max_entries: cap,
                        });
                    }
                    until_check = CHECK_INTERVAL;
                }
            }
            let n = walk.next_block(&mut words, &mut wprobs);
            debug_assert!(n > 0, "pos < hi: the walk is not done");
            if let Some(lk) = &mut lk {
                // High bits only change entering a block-aligned index
                // (trailing_zeros >= LO_BITS there), so the stable part
                // of the answer word is maintained per block, not per
                // state.  Stable masks ignore the low bits: any lane
                // serves as the block's base word.
                let base_eff = words[0] & !ctx.forced_mask;
                if !stable_ready {
                    lk.reset_stable(base_eff);
                    stable_ready = true;
                } else if pos & (LANE_WIDTH as u64 - 1) == 0 {
                    lk.update_stable(base_eff, pos.trailing_zeros() as usize);
                }
            }
            if n == LANE_WIDTH {
                let nf = !ctx.forced_mask;
                for (e, &w) in eff.iter_mut().zip(&words) {
                    *e = w & nf;
                }
                for (p, &q) in pp.iter_mut().zip(&wprobs) {
                    *p = ctx.gprob * q;
                }
                if let Some(lk) = &lk {
                    let mut c = 0;
                    while c < LANE_WIDTH {
                        let mut e = [0u64; W];
                        e.copy_from_slice(&eff[c..c + W]);
                        let mut a = [0u64; W];
                        lk.answers_chunk(&e, &mut a);
                        ans[c..c + W].copy_from_slice(&a);
                        c += W;
                    }
                }
            } else {
                eff[0] = words[0] & !ctx.forced_mask;
                pp[0] = ctx.gprob * wprobs[0];
                if let Some(lk) = &lk {
                    let e = [eff[0]];
                    let mut a = [0u64; 1];
                    lk.answers_chunk(&e, &mut a);
                    ans[0] = a[0];
                }
            }
            // Resolve pass.  A flat memo probe is one indexed load, so
            // it is specialised inline and skips the `last`-key fast
            // path (a compare would cost as much as the probe; both
            // count as memo hits, keeping the counters scan-invariant).
            // The hash-map arm keeps the `last` shortcut — there the
            // probe is the expensive part.
            match memo {
                Memo::Flat { table, shift, used } => {
                    for j in 0..n {
                        fc.c.steps += 1;
                        let p = pp[j];
                        if p == 0.0 {
                            continue;
                        }
                        fc.c.visited += 1;
                        let e = eff[j];
                        let answers = if lk.is_some() {
                            if prev_eff != Some(e) {
                                fc.c.know_evals += 1;
                            }
                            ans[j]
                        } else {
                            0
                        };
                        prev_eff = Some(e);
                        let idx = ((e & self.app_mask) | (answers << *shift)) as usize;
                        let mut id = table[idx];
                        if id != u32::MAX {
                            fc.c.memo_hits += 1;
                        } else {
                            id = self.config_miss(e, answers, &ctx.forced, acc, &mut fc.c);
                            debug_assert_ne!(
                                id,
                                u32::MAX,
                                "id u32::MAX is the empty-slot sentinel"
                            );
                            table[idx] = id;
                            *used += 1;
                        }
                        acc.sums[id as usize] += p;
                    }
                }
                Memo::Map(_) => {
                    for j in 0..n {
                        fc.c.steps += 1;
                        let p = pp[j];
                        if p == 0.0 {
                            continue;
                        }
                        fc.c.visited += 1;
                        let e = eff[j];
                        let answers = if lk.is_some() {
                            if prev_eff != Some(e) {
                                fc.c.know_evals += 1;
                            }
                            ans[j]
                        } else {
                            0
                        };
                        prev_eff = Some(e);
                        let key = (e & self.app_mask, answers);
                        let id = match last {
                            Some((k, id)) if k == key => {
                                fc.c.memo_hits += 1;
                                id
                            }
                            _ => {
                                let id = self.config_id(e, key, &ctx.forced, memo, acc, &mut fc.c);
                                last = Some((key, id));
                                id
                            }
                        };
                        acc.sums[id as usize] += p;
                    }
                }
            }
            pos += n as u64;
            until_check = until_check.saturating_sub(n as u64);
        }
        Ok(())
    }

    /// Multi-threaded exact enumeration through the kernel: the state
    /// range is split across `threads` workers, each with its own memo.
    pub fn enumerate_parallel(
        &self,
        threads: usize,
        deps: Option<&FailureDependencies>,
    ) -> ConfigDistribution {
        crate::analysis::assert_enumerable(self.fallible.len(), deps);
        let _span = Span::enter(self.analysis.recorder, Phase::StateScan);
        let threads = threads.max(1);
        let n_states = 1u64 << self.fallible.len();
        let chunk = n_states.div_ceil(threads as u64);
        let contexts = self.contexts(deps);
        let mut dist = ConfigDistribution::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let lo = chunk * t as u64;
                let hi = (lo + chunk).min(n_states);
                if lo >= hi {
                    continue;
                }
                let contexts = &contexts;
                handles.push(scope.spawn(move || {
                    let mut acc = Accumulator::new(self.analysis.space);
                    let mut memo = self.new_memo();
                    for ctx in contexts {
                        memo.clear();
                        self.scan_dispatch(
                            ScanMode::Lanes(LANE_WIDTH),
                            ctx,
                            lo,
                            hi,
                            &mut memo,
                            &mut acc,
                            None,
                        )
                        .expect("invariant: an unguarded scan has no budget to exhaust");
                    }
                    acc.into_distribution(0)
                }));
            }
            for h in handles {
                dist.merge(
                    h.join()
                        .expect("invariant: enumeration worker never panics"),
                );
            }
        });
        dist.set_states_explored(n_states * contexts.len() as u64);
        dist
    }

    /// Builds one evaluation context per group mask with non-zero
    /// probability (a single unforced context without dependencies).
    fn contexts(&self, deps: Option<&FailureDependencies>) -> Vec<EvalContext> {
        let Some(deps) = deps else {
            return vec![EvalContext {
                gprob: 1.0,
                forced: Vec::new(),
                forced_mask: 0,
                know: None,
            }];
        };
        let n_group_states = 1u64 << deps.group_count();
        let mut out = Vec::new();
        for gmask in 0..n_group_states {
            let gprob = deps.mask_probability(gmask);
            if gprob == 0.0 {
                continue;
            }
            let forced = deps.forced_down(gmask);
            let mut forced_mask = 0u64;
            for &ix in &forced {
                if let Some(b) = self.fallible.iter().position(|&f| f == ix) {
                    forced_mask |= 1u64 << b;
                }
            }
            let know = if forced.is_empty() {
                None
            } else {
                match self.analysis.knowledge {
                    Knowledge::Perfect => None,
                    Knowledge::Mama(table) => Some(
                        table
                            .compile_with_forced(self.analysis.space, &forced)
                            .expect("base table compiled, forced subset must too"),
                    ),
                }
            };
            out.push(EvalContext {
                gprob,
                forced,
                forced_mask,
                know,
            });
        }
        fmperf_obs::add(
            self.analysis.recorder,
            Counter::CcfContexts,
            out.len() as u64,
        );
        out
    }

    /// The interned configuration id for an effective state word: a
    /// memo probe on the decision word (application bits + packed `know`
    /// answers), falling back to the full allocating evaluator on the
    /// first sighting of a pattern.
    fn config_id(
        &self,
        word: u64,
        key: (u64, u64),
        forced: &[usize],
        memo: &mut Memo,
        acc: &mut Accumulator,
        counters: &mut ScanCounters,
    ) -> u32 {
        if let Some(id) = memo.get(key) {
            counters.memo_hits += 1;
            return id;
        }
        let id = self.config_miss(word, key.1, forced, acc, counters);
        memo.insert(key, id);
        id
    }

    /// The memo-miss cold path: solve the configuration behind `word`
    /// and intern it.
    ///
    /// Without forced-down components the masked evaluator
    /// ([`FaultGraph::configuration_masked`]) does the solve
    /// allocation-light, answering every `know` query with a bit test
    /// on the packed answer word the scan already computed.  Forced
    /// contexts keep the canonical state-vector path: their know tables
    /// are recompiled with forced elements removed, which can change
    /// which pairs answer at all.
    #[inline(never)]
    fn config_miss(
        &self,
        word: u64,
        answers: u64,
        forced: &[usize],
        acc: &mut Accumulator,
        counters: &mut ScanCounters,
    ) -> u32 {
        counters.memo_misses += 1;
        let config = match &self.miss_fast {
            Some(fast) if forced.is_empty() => {
                let mut mask = fast.all_up;
                for &(wbit, cbit) in &fast.app_bits {
                    if word & wbit == 0 {
                        mask &= !cbit;
                    }
                }
                let mut gate = AnswerGate {
                    fast,
                    answers,
                    // Perfect knowledge is the empty pair table with
                    // every query defaulting to "knows".
                    default_for_missing: match self.analysis.knowledge {
                        Knowledge::Perfect => true,
                        Knowledge::Mama(_) => self.analysis.unmonitored_known,
                    },
                    policy: self.analysis.policy,
                };
                self.analysis
                    .graph
                    .configuration_masked(mask, &mut gate)
                    .expect("invariant: miss_fast is built only when the model fits 64 components")
            }
            _ => {
                // Reconstruct the state vector and run the reference
                // evaluator (identical code path to the naive
                // enumerator).
                for (b, &ix) in self.fallible.iter().enumerate() {
                    acc.state[ix] = word & (1u64 << b) != 0;
                }
                for &ix in forced {
                    acc.state[ix] = false;
                }
                let config = self.analysis.configuration_of(&acc.state);
                for &ix in forced {
                    acc.state[ix] = true; // restore the all-up baseline
                }
                config
            }
        };
        match acc.ids.get(&config) {
            Some(&id) => id,
            None => {
                let id = acc.configs.len() as u32;
                acc.ids.insert(config.clone(), id);
                acc.configs.push(config);
                acc.sums.push(0.0);
                id
            }
        }
    }

    /// Samples `samples` random states and estimates the distribution;
    /// the RNG consumption order matches the naive Monte Carlo estimator
    /// exactly, so identical seeds give identical estimates.
    pub(crate) fn monte_carlo_run(
        &self,
        rng: &mut impl rand::Rng,
        samples: u64,
    ) -> ConfigDistribution {
        let mut fc = ScanFlush {
            rec: self.analysis.recorder,
            c: ScanCounters::default(),
        };
        let mut acc = Accumulator::new(self.analysis.space);
        let mut memo = self.new_memo();
        let weight = 1.0 / samples as f64;
        for _ in 0..samples {
            let mut word = 0u64;
            for (b, &p) in self.up.iter().enumerate() {
                if rng.gen::<f64>() < p {
                    word |= 1u64 << b;
                }
            }
            let answers = self
                .know
                .as_ref()
                .map_or(0, |k| k.answers(word, self.analysis.unmonitored_known));
            let key = (word & self.app_mask, answers);
            let id = self.config_id(word, key, &[], &mut memo, &mut acc, &mut fc.c);
            acc.sums[id as usize] += weight;
        }
        fmperf_obs::add(self.analysis.recorder, Counter::MonteCarloSamples, samples);
        acc.into_distribution(samples)
    }

    /// Importance-sampled twin of
    /// [`monte_carlo_run`](CompiledKernel::monte_carlo_run): draws states
    /// from the defensive mixture `λ·p + (1−λ)·q` of the nominal per-bit
    /// up probabilities `p` (`self.up`) and the biased proposal `q`
    /// (`proposal_up`, same bit order), and accumulates each sample under
    /// its exact likelihood-ratio weight `p(x)/q_mix(x)`.
    ///
    /// The RNG consumption order — one mixture-branch draw, then one draw
    /// per bit of `self.up` — matches
    /// [`Analysis::importance_naive`](crate::importance) exactly, so a
    /// given seed yields bit-identical weighted estimates on either path.
    pub(crate) fn importance_run(
        &self,
        rng: &mut impl rand::Rng,
        samples: u64,
        proposal_up: &[f64],
        mixture: f64,
    ) -> crate::importance::WeightedRun {
        debug_assert_eq!(proposal_up.len(), self.up.len());
        let mut fc = ScanFlush {
            rec: self.analysis.recorder,
            c: ScanCounters::default(),
        };
        let mut acc = Accumulator::new(self.analysis.space);
        let mut memo = self.new_memo();
        let inv = 1.0 / samples as f64;
        let mut weight_sum = 0.0;
        let mut weight_sq_sum = 0.0;
        for _ in 0..samples {
            let nominal = rng.gen::<f64>() < mixture;
            let mut word = 0u64;
            let mut log_p = 0.0;
            let mut log_q = 0.0;
            for (b, (&p, &q)) in self.up.iter().zip(proposal_up).enumerate() {
                let draw = if nominal { p } else { q };
                if rng.gen::<f64>() < draw {
                    word |= 1u64 << b;
                    log_p += p.ln();
                    log_q += q.ln();
                } else {
                    log_p += (1.0 - p).ln();
                    log_q += (1.0 - q).ln();
                }
            }
            let w = crate::importance::likelihood_ratio(log_p, log_q, mixture);
            let answers = self
                .know
                .as_ref()
                .map_or(0, |k| k.answers(word, self.analysis.unmonitored_known));
            let key = (word & self.app_mask, answers);
            let id = self.config_id(word, key, &[], &mut memo, &mut acc, &mut fc.c);
            acc.sums[id as usize] += w * inv;
            weight_sum += w;
            weight_sq_sum += w * w;
        }
        fmperf_obs::add(self.analysis.recorder, Counter::MonteCarloSamples, samples);
        crate::importance::WeightedRun {
            distribution: acc.into_distribution(samples),
            weight_sum,
            weight_sq_sum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmperf_ftlqn::examples::das_woodside_system;
    use fmperf_ftlqn::{Component, KnowPolicy};
    use fmperf_mama::{arch, KnowTable};

    #[test]
    fn gray_walk_visits_every_word_exactly_once() {
        let up = [0.9, 0.8, 0.7, 0.6];
        let words: Vec<u64> = GrayWalk::new(&up, 0, 16).map(|(w, _)| w).collect();
        let mut sorted = words.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<u64>>());
        // Consecutive words differ in exactly one bit.
        for pair in words.windows(2) {
            assert_eq!((pair[0] ^ pair[1]).count_ones(), 1);
        }
    }

    #[test]
    fn gray_walk_probabilities_match_direct_products() {
        let up = [0.9, 0.25, 0.5, 0.99];
        let mut total = 0.0;
        for (word, p) in GrayWalk::new(&up, 0, 16) {
            let direct: f64 = up
                .iter()
                .enumerate()
                .map(|(b, &u)| if word & (1 << b) != 0 { u } else { 1.0 - u })
                .product();
            assert!((p - direct).abs() < 1e-14, "word {word:b}: {p} vs {direct}");
            total += p;
        }
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gray_walk_handles_degenerate_probabilities() {
        // up = 0 and up = 1 give zero factors; the walk must report 0
        // probability for the impossible states without poisoning the
        // running product (no 0/0 NaNs).
        let up = [0.0, 1.0, 0.5];
        let mut total = 0.0;
        for (word, p) in GrayWalk::new(&up, 0, 8) {
            assert!(p.is_finite());
            let possible = word & 0b001 == 0 && word & 0b010 != 0;
            assert_eq!(p > 0.0, possible, "word {word:03b} prob {p}");
            total += p;
        }
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gray_walk_subranges_concatenate_to_full_walk() {
        let up = [0.9, 0.3, 0.7, 0.45, 0.2];
        let full: Vec<(u64, f64)> = GrayWalk::new(&up, 0, 32).collect();
        let mut split: Vec<(u64, f64)> = GrayWalk::new(&up, 0, 13).collect();
        split.extend(GrayWalk::new(&up, 13, 32));
        assert_eq!(full.len(), split.len());
        for (i, (f, s)) in full.iter().zip(&split).enumerate() {
            assert_eq!(f.0, s.0, "word at {i}");
            assert!((f.1 - s.1).abs() < 1e-15, "prob at {i}");
        }
    }

    /// Drains a walk through `next_block`, flattening the lanes.
    fn collect_blocks(mut walk: GrayWalk) -> Vec<(u64, f64)> {
        let mut words = [0u64; LANE_WIDTH];
        let mut probs = [0.0f64; LANE_WIDTH];
        let mut out = Vec::new();
        loop {
            let n = walk.next_block(&mut words, &mut probs);
            if n == 0 {
                return out;
            }
            out.extend(words[..n].iter().copied().zip(probs[..n].iter().copied()));
        }
    }

    #[test]
    fn lane_blocks_match_iterator_bit_for_bit() {
        // Including degenerate factors in both the table-driven low
        // bits and the incrementally maintained high bits.
        for up in [
            vec![0.9, 0.25, 0.5, 0.99, 0.4, 0.81],
            vec![0.0, 1.0, 0.5, 0.3, 1.0, 0.7],
            vec![0.6, 0.4], // sub-block state space: scalar fallback
            vec![0.5],
            vec![],
        ] {
            let n = 1u64 << up.len();
            let seq: Vec<(u64, f64)> = GrayWalk::new(&up, 0, n).collect();
            let blocked = collect_blocks(GrayWalk::new(&up, 0, n));
            assert_eq!(seq, blocked, "{} bits", up.len());
        }
    }

    #[test]
    fn lane_block_subranges_concatenate_to_full_walk() {
        // Mirror of `gray_walk_subranges_concatenate_to_full_walk` for
        // the block emitter: unaligned splits force single-state
        // prologue/epilogue emissions that must line up with the full
        // walk's lanes.
        let up = [0.9, 0.3, 0.7, 0.45, 0.2, 0.65];
        let full = collect_blocks(GrayWalk::new(&up, 0, 64));
        for cut in [1u64, 7, 8, 13, 21, 32, 57, 63] {
            let mut split = collect_blocks(GrayWalk::new(&up, 0, cut));
            split.extend(collect_blocks(GrayWalk::new(&up, cut, 64)));
            assert_eq!(full.len(), split.len());
            for (i, (f, s)) in full.iter().zip(&split).enumerate() {
                assert_eq!(f.0, s.0, "cut {cut}: word at {i}");
                assert!((f.1 - s.1).abs() < 1e-15, "cut {cut}: prob at {i}");
            }
        }
    }

    #[test]
    fn kernel_matches_naive_bit_for_bit_on_all_architectures() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        for kind in arch::ArchKind::ALL {
            let mama = arch::build(kind, &sys, 0.1);
            let space = ComponentSpace::build(&sys.model, &mama);
            let table = KnowTable::build(&graph, &mama, &space);
            for policy in [
                KnowPolicy::AnyFailedComponent,
                KnowPolicy::AllFailedComponents,
            ] {
                let analysis = Analysis::new(&graph, &space)
                    .with_knowledge(&table)
                    .with_policy(policy);
                let kernel = analysis.compile().expect("paper models compile");
                // `ConfigDistribution` compares probabilities with `==`:
                // these assert bit-identity, not epsilon closeness.
                let lanes = kernel.enumerate();
                assert_eq!(
                    lanes,
                    analysis.enumerate_naive(),
                    "{}/{policy:?}",
                    kind.name()
                );
                assert_eq!(
                    lanes,
                    kernel.enumerate_scalar(),
                    "lane vs scalar: {}/{policy:?}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn kernel_matches_naive_under_unmonitored_exemption() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let mama = arch::distributed_as_published(&sys, 0.1);
        let space = ComponentSpace::build(&sys.model, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        let analysis = Analysis::new(&graph, &space)
            .with_knowledge(&table)
            .with_unmonitored_known(true);
        let kernel = analysis.compile().unwrap();
        assert_eq!(kernel.enumerate(), analysis.enumerate_naive());
    }

    #[test]
    fn kernel_matches_naive_with_dependencies() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let mama = arch::centralized(&sys, 0.1);
        let space = ComponentSpace::build(&sys.model, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        let mut deps = FailureDependencies::new();
        // One group over app components, one reaching into the
        // management plane (forces know-table recompilation).
        deps.add_group(
            "server-rack",
            0.15,
            vec![
                sys.model.component_index(Component::Processor(sys.proc3)),
                sys.model.component_index(Component::Processor(sys.proc4)),
            ],
        );
        let manager = mama.component_by_name("m1").expect("centralized m1");
        deps.add_group("mgmt-rack", 0.1, vec![space.mama_index(manager)]);
        for unmonitored in [false, true] {
            let analysis = Analysis::new(&graph, &space)
                .with_knowledge(&table)
                .with_unmonitored_known(unmonitored);
            let kernel = analysis.compile().unwrap();
            let lanes = kernel.enumerate_with_dependencies(&deps);
            assert_eq!(
                lanes,
                analysis.enumerate_naive_with_dependencies(&deps),
                "unmonitored_known = {unmonitored}"
            );
            assert_eq!(
                lanes,
                kernel.enumerate_scalar_with_dependencies(&deps),
                "lane vs scalar with deps: unmonitored_known = {unmonitored}"
            );
        }
    }

    #[test]
    fn lane_scan_matches_scalar_scan_on_unaligned_subranges() {
        // Thread chunking hands the lane scan arbitrary `[lo, hi)`
        // subranges; every lane width must reproduce the scalar scan's
        // bits on odd and even remainders alike, prologue and epilogue
        // included.
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let mama = arch::hierarchical(&sys, 0.1);
        let space = ComponentSpace::build(&sys.model, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        let analysis = Analysis::new(&graph, &space).with_knowledge(&table);
        let kernel = analysis.compile().unwrap();
        let contexts = kernel.contexts(None);
        let ctx = &contexts[0];
        for (lo, hi) in [
            (0u64, 1u64),
            (0, 7),
            (3, 29),
            (5, 13),
            (13, 4099),
            (8, 4096),
        ] {
            let mut scalar_acc = Accumulator::new(&space);
            let mut memo = kernel.new_memo();
            kernel
                .scan_range(ctx, lo, hi, &mut memo, &mut scalar_acc, None)
                .unwrap();
            let reference = scalar_acc.into_distribution(hi - lo);
            for width in [1usize, 2, 4, 8] {
                let mut acc = Accumulator::new(&space);
                let mut memo = kernel.new_memo();
                kernel
                    .scan_dispatch(
                        ScanMode::Lanes(width),
                        ctx,
                        lo,
                        hi,
                        &mut memo,
                        &mut acc,
                        None,
                    )
                    .unwrap();
                assert_eq!(
                    acc.into_distribution(hi - lo),
                    reference,
                    "[{lo}, {hi}) at width {width}"
                );
            }
        }
    }

    #[test]
    fn memo_collapses_state_space_to_few_evaluations() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let mama = arch::hierarchical(&sys, 0.1);
        let space = ComponentSpace::build(&sys.model, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        let analysis = Analysis::new(&graph, &space).with_knowledge(&table);
        let kernel = analysis.compile().unwrap();
        assert_eq!(kernel.bit_count(), 18);
        let know = kernel.know_table().expect("MAMA knowledge compiled");
        assert!(!know.is_empty() && know.len() <= 64);
        let dist = kernel.enumerate();
        assert_eq!(dist.states_explored(), 1 << 18);
        // 2^18 states collapse onto a handful of configurations.
        assert!(dist.configurations().len() < 64);
        assert!((dist.total_probability() - 1.0).abs() < 1e-9);
    }
}
