//! The compiled bitmask evaluation kernel.
//!
//! The paper's §5 algorithm enumerates all `2^N` up/down states; its
//! conclusion calls for "much more efficient" evaluation.  The naive
//! enumerator re-derives every state's configuration from scratch —
//! per-state oracle binding, `BTreeSet` allocations and a recursive walk
//! of the fault graph — even though a `2^18` hierarchical run collapses
//! to a handful of distinct configurations.  This kernel makes the hot
//! path allocation-free:
//!
//! * **State word.**  The fallible elements of the [`ComponentSpace`]
//!   are packed into a single `u64`: bit `b` is
//!   `fallible_indices()[b]`, set = up (see
//!   [`ComponentSpace::fallible_bits`]).  Perfectly reliable elements
//!   have no bit — they are up in every state.
//! * **Compiled `know`.**  Every `know(c, t)` function's augmented
//!   minpaths become bitmask lists: `known ⇔ ∃ path: word & mask ==
//!   mask` ([`fmperf_mama::CompiledKnowTable`]).  Evaluating the whole
//!   table is a few dozen AND-compares instead of set walks.
//! * **Gray-code enumeration.**  States are visited in reflected
//!   Gray-code order, so each step flips exactly one bit and the state
//!   probability is updated with one divide and one multiply instead of
//!   `N` multiplies ([`GrayWalk`]).
//! * **Decision memoisation.**  The configuration is a pure function of
//!   the *decision word*: the application-component bits of the state
//!   word plus the packed `know` answer word.  A table `decision word →
//!   interned configuration id` means the full allocating evaluator runs
//!   only once per distinct decision-relevant bit pattern; every other
//!   state is a mask-and-probe.
//!
//! **Soundness of the memo key.**  The recursive evaluator reads only
//! (a) the up/down state of application components — all of which have
//! global index `< app_count()`, hence live in the application bit mask
//! — and (b) `know` oracle answers, each of which is either a compiled
//! pair (captured in the answer word) or a constant
//! (`unmonitored_known`, fixed per analysis).  Two states with equal
//! decision words therefore produce identical configurations.
//!
//! **Exactness.**  The kernel and the naive reference enumerator
//! ([`Analysis::enumerate_naive`]) share the same [`GrayWalk`] and visit
//! states in the same order, so each state's probability is the *same
//! float* and per-configuration sums accumulate in the *same order*:
//! the two distributions are bit-identical, not merely within epsilon.
//!
//! Common-cause failure dependencies are supported by building one
//! evaluation context per group mask: forced-down fallible elements are
//! cleared from the word, and `know` tables are recompiled with
//! forced-down reliable elements removed
//! ([`fmperf_mama::KnowTable::compile_with_forced`]).

#![forbid(unsafe_code)]

use crate::analysis::{Analysis, Knowledge};
use crate::budget::{AnalysisError, BudgetGuard, CHECK_INTERVAL};
use crate::ccf::FailureDependencies;
use crate::distribution::ConfigDistribution;
use fmperf_ftlqn::Configuration;
use fmperf_mama::{CompiledKnowTable, ComponentSpace};
use fmperf_obs::{Counter, Phase, Recorder, Span};
use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

/// A multiplicative hasher for the decision-word memo.  The keys are
/// two already-well-mixed bit words; SipHash's DoS resistance buys
/// nothing here and its per-probe cost dominates the hot loop.
#[derive(Default)]
struct WordHasher(u64);

impl Hasher for WordHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(23);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Decision-word → interned configuration id.
type Memo = HashMap<(u64, u64), u32, BuildHasherDefault<WordHasher>>;

/// Incrementally maintained packed `know` answer word.
///
/// Along a Gray-code walk almost every step flips a single bit, so only
/// the pairs whose masks involve that bit can change their answer; the
/// rest of the word carries over.  Produces exactly
/// [`CompiledKnowTable::answers`] at every state.
struct KnowEval {
    /// Per pair: the surviving path masks (empty for constant pairs).
    masks: Vec<Vec<u64>>,
    /// Constant part of the answer word (always-pairs, and never-pairs
    /// under a `true` unmonitored default).
    constant: u64,
    /// For each word bit, the dynamic pairs whose masks involve it.
    affected: Vec<Vec<u32>>,
    /// The current answer word.
    answers: u64,
}

impl KnowEval {
    fn new(table: &CompiledKnowTable, n_bits: usize, default_for_missing: bool) -> KnowEval {
        let mut masks = Vec::with_capacity(table.len());
        let mut constant = 0u64;
        let mut affected = vec![Vec::new(); n_bits];
        for (j, (_, _, know)) in table.pairs().enumerate() {
            if know.is_always() || (know.is_never() && default_for_missing) {
                constant |= 1u64 << j;
            }
            let dynamic = if know.is_always() || know.is_never() {
                Vec::new()
            } else {
                know.masks().to_vec()
            };
            let mut union = 0u64;
            for &m in &dynamic {
                union |= m;
            }
            for (b, lst) in affected.iter_mut().enumerate() {
                if union & (1u64 << b) != 0 {
                    lst.push(j as u32);
                }
            }
            masks.push(dynamic);
        }
        KnowEval {
            masks,
            constant,
            affected,
            answers: 0,
        }
    }

    /// Evaluates pair `j`'s dynamic predicate.
    // Not `contains`: `word & m == m` is a subset test, the lint misfires.
    #[allow(clippy::manual_contains)]
    #[inline]
    fn holds(&self, j: u32, word: u64) -> bool {
        self.masks[j as usize].iter().any(|&m| word & m == m)
    }

    /// Full evaluation (walk entry or after a context switch).
    fn reset(&mut self, word: u64) {
        self.answers = self.constant;
        for j in 0..self.masks.len() as u32 {
            if self.holds(j, word) {
                self.answers |= 1u64 << j;
            }
        }
    }

    /// Re-evaluates only the pairs affected by the bits in `flipped`.
    fn update(&mut self, word: u64, mut flipped: u64) {
        while flipped != 0 {
            let b = flipped.trailing_zeros() as usize;
            flipped &= flipped - 1;
            for &j in &self.affected[b] {
                if self.holds(j, word) {
                    self.answers |= 1u64 << j;
                } else {
                    self.answers &= !(1u64 << j);
                }
            }
        }
    }
}

/// Iterator over `(state word, state probability)` in reflected
/// Gray-code order, maintaining the probability incrementally: each step
/// flips one bit and performs one divide and one multiply.
///
/// Zero factors (elements with up-probability 0 or 1 contributing a zero
/// term) are tracked by count rather than multiplied in, so the running
/// product never degenerates to `0/0`.
///
/// Both the compiled kernel and the naive reference enumerator iterate
/// states through this walker — that shared float trajectory is what
/// makes their results bit-identical.
pub(crate) struct GrayWalk {
    /// Up-probability per bit.
    up: Vec<f64>,
    /// Down-probability per bit (`1 - up`).
    down: Vec<f64>,
    word: u64,
    /// Product of the non-zero per-bit factors.
    prob: f64,
    /// Number of zero per-bit factors (state probability is 0 while > 0).
    zeros: u32,
    /// Next state index to emit (the walk covers `[lo, hi)`).
    next: u64,
    end: u64,
    /// `false` until the first state is emitted (the first emission does
    /// not flip a bit).
    started: bool,
}

impl GrayWalk {
    /// A walk over state indices `[lo, hi)` of an `up.len()`-bit space;
    /// state index `s` maps to word `s ^ (s >> 1)`.
    pub(crate) fn new(up: &[f64], lo: u64, hi: u64) -> GrayWalk {
        assert!(up.len() <= 64, "state word overflow");
        let down: Vec<f64> = up.iter().map(|p| 1.0 - p).collect();
        let word = lo ^ (lo >> 1);
        let mut prob = 1.0;
        let mut zeros = 0u32;
        for b in 0..up.len() {
            let f = if word & (1u64 << b) != 0 {
                up[b]
            } else {
                down[b]
            };
            if f == 0.0 {
                zeros += 1;
            } else {
                prob *= f;
            }
        }
        GrayWalk {
            up: up.to_vec(),
            down,
            word,
            prob,
            zeros,
            next: lo,
            end: hi,
            started: false,
        }
    }
}

impl Iterator for GrayWalk {
    type Item = (u64, f64);

    fn next(&mut self) -> Option<(u64, f64)> {
        let s = self.next;
        if s >= self.end {
            return None;
        }
        if self.started {
            // State index s differs from s-1 in Gray code by exactly
            // bit trailing_zeros(s).
            let b = s.trailing_zeros() as usize;
            let now_up = self.word & (1u64 << b) == 0; // about to flip
            let (old, new) = if now_up {
                (self.down[b], self.up[b])
            } else {
                (self.up[b], self.down[b])
            };
            self.word ^= 1u64 << b;
            if old == 0.0 {
                self.zeros -= 1;
            } else {
                self.prob /= old;
            }
            if new == 0.0 {
                self.zeros += 1;
            } else {
                self.prob *= new;
            }
        }
        self.started = true;
        self.next = s + 1;
        let p = if self.zeros > 0 { 0.0 } else { self.prob };
        Some((self.word, p))
    }
}

/// One evaluation context: a common-cause group mask with its
/// probability, forced-down overrides and (for MAMA knowledge) the
/// recompiled know table.
struct EvalContext {
    /// Probability of this group fire/no-fire mask.
    gprob: f64,
    /// Global indices forced down (fallible and reliable alike).
    forced: Vec<usize>,
    /// Word bits of the fallible forced-down elements.
    forced_mask: u64,
    /// Know table recompiled for this context; `None` = use the
    /// kernel's base table (no forced elements, or perfect knowledge).
    know: Option<CompiledKnowTable>,
}

/// Shared accumulation state of one kernel run: interned configurations,
/// their probability sums, and the scratch state vector for memo misses.
struct Accumulator {
    ids: BTreeMap<Configuration, u32>,
    configs: Vec<Configuration>,
    sums: Vec<f64>,
    state: Vec<bool>,
}

impl Accumulator {
    fn new(space: &ComponentSpace) -> Accumulator {
        Accumulator {
            ids: BTreeMap::new(),
            configs: Vec::new(),
            sums: Vec::new(),
            state: space.all_up(),
        }
    }

    fn into_distribution(self, states_explored: u64) -> ConfigDistribution {
        let mut dist = ConfigDistribution::new();
        for (config, sum) in self.configs.into_iter().zip(self.sums) {
            dist.add(config, sum);
        }
        dist.set_states_explored(states_explored);
        dist
    }
}

/// An [`Analysis`] compiled to bitmask form: packed state word layout,
/// compiled `know` table and the decision-memo machinery.
///
/// Build one with [`Analysis::compile`]; the engines
/// ([`Analysis::enumerate`], [`Analysis::enumerate_parallel`],
/// [`Analysis::monte_carlo`]) construct and use it automatically and
/// fall back to the naive path when compilation is not possible.
#[derive(Debug)]
pub struct CompiledKernel<'a> {
    analysis: Analysis<'a>,
    /// Global index per word bit (the space's fallible indices).
    fallible: Vec<usize>,
    /// Up-probability per word bit.
    up: Vec<f64>,
    /// Word bits whose global index is an application component — the
    /// part of the state the fault-graph evaluator can observe directly.
    app_mask: u64,
    /// Compiled know table (`None` under perfect knowledge).
    know: Option<CompiledKnowTable>,
}

impl<'a> Analysis<'a> {
    /// Compiles this analysis to a bitmask evaluation kernel.
    ///
    /// Returns `None` when compilation is impossible: more than 64
    /// fallible elements, or a MAMA know table with more than 64
    /// `(component, task)` pairs (the packed answer word would
    /// overflow).  Callers fall back to the naive enumerator.
    pub fn compile(&self) -> Option<CompiledKernel<'a>> {
        let _span = Span::enter(self.recorder, Phase::GuardBuild);
        let space = self.space;
        let fallible = space.fallible_indices();
        if fallible.len() > 64 {
            return None;
        }
        let know = match self.knowledge {
            Knowledge::Perfect => None,
            Knowledge::Mama(table) => Some(table.compile(space)?),
        };
        let app_count = space.app_count();
        let mut app_mask = 0u64;
        let mut up = Vec::with_capacity(fallible.len());
        for (b, &ix) in fallible.iter().enumerate() {
            if ix < app_count {
                app_mask |= 1u64 << b;
            }
            up.push(space.up_prob(ix));
        }
        Some(CompiledKernel {
            analysis: *self,
            fallible,
            up,
            app_mask,
            know,
        })
    }
}

/// Local per-scan counter accumulators: the hot loop bumps plain
/// integers and the totals reach the recorder once, when the scan ends
/// (including early exits on a tripped guard — hence the [`Drop`]).
#[derive(Debug, Default)]
struct ScanCounters {
    steps: u64,
    visited: u64,
    memo_hits: u64,
    memo_misses: u64,
    know_evals: u64,
    polls: u64,
}

/// Flushes [`ScanCounters`] to the recorder on scope exit.
#[derive(Debug)]
struct ScanFlush<'a> {
    rec: Option<&'a dyn Recorder>,
    c: ScanCounters,
}

impl Drop for ScanFlush<'_> {
    fn drop(&mut self) {
        if let Some(r) = self.rec {
            r.add(Counter::GrayCodeSteps, self.c.steps);
            r.add(Counter::StatesVisited, self.c.visited);
            r.add(Counter::MemoHits, self.c.memo_hits);
            r.add(Counter::MemoMisses, self.c.memo_misses);
            r.add(Counter::KnowGuardEvals, self.c.know_evals);
            r.add(Counter::BudgetPolls, self.c.polls);
        }
    }
}

impl CompiledKernel<'_> {
    /// Number of word bits (fallible elements).
    pub fn bit_count(&self) -> usize {
        self.fallible.len()
    }

    /// The compiled know table, if the analysis uses MAMA knowledge.
    pub fn know_table(&self) -> Option<&CompiledKnowTable> {
        self.know.as_ref()
    }

    /// Exact enumeration of all `2^N` states through the kernel;
    /// bit-identical to [`Analysis::enumerate_naive`].
    ///
    /// # Panics
    ///
    /// Panics if more than 30 elements are fallible (use
    /// [`Analysis::monte_carlo`] or [`Analysis::symbolic`]).
    pub fn enumerate(&self) -> ConfigDistribution {
        self.enumerate_masked(None)
    }

    /// [`enumerate`](CompiledKernel::enumerate) with common-cause
    /// failure dependencies; bit-identical to
    /// [`Analysis::enumerate_naive_with_dependencies`].
    pub fn enumerate_with_dependencies(&self, deps: &FailureDependencies) -> ConfigDistribution {
        self.enumerate_masked(Some(deps))
    }

    fn enumerate_masked(&self, deps: Option<&FailureDependencies>) -> ConfigDistribution {
        crate::analysis::assert_enumerable(self.fallible.len(), deps);
        let _span = Span::enter(self.analysis.recorder, Phase::StateScan);
        let n_states = 1u64 << self.fallible.len();
        let contexts = self.contexts(deps);
        let mut acc = Accumulator::new(self.analysis.space);
        let mut memo = Memo::default();
        for ctx in &contexts {
            memo.clear(); // forced overrides differ per context
            self.scan_range(ctx, 0, n_states, &mut memo, &mut acc, None)
                .expect("invariant: an unguarded scan has no budget to exhaust");
        }
        acc.into_distribution(n_states * contexts.len() as u64)
    }

    /// Budget-guarded exact enumeration; a within-budget run is
    /// bit-identical to [`enumerate`](CompiledKernel::enumerate).
    ///
    /// # Errors
    ///
    /// [`AnalysisError::DeadlineExpired`] or
    /// [`AnalysisError::MemoCapExceeded`] when the guard trips mid-scan.
    pub fn try_enumerate_guarded(
        &self,
        guard: &BudgetGuard,
    ) -> Result<ConfigDistribution, AnalysisError> {
        crate::analysis::check_enumerable(self.fallible.len(), None)?;
        let _span = Span::enter(self.analysis.recorder, Phase::StateScan);
        let n_states = 1u64 << self.fallible.len();
        let contexts = self.contexts(None);
        let mut acc = Accumulator::new(self.analysis.space);
        let mut memo = Memo::default();
        for ctx in &contexts {
            memo.clear();
            self.scan_range(ctx, 0, n_states, &mut memo, &mut acc, Some(guard))?;
        }
        Ok(acc.into_distribution(n_states * contexts.len() as u64))
    }

    /// Budget-guarded multi-threaded enumeration; a within-budget run is
    /// bit-identical to
    /// [`enumerate_parallel`](CompiledKernel::enumerate_parallel) without
    /// dependencies.  The first worker to exhaust the budget cancels its
    /// siblings through the shared guard.
    ///
    /// # Errors
    ///
    /// The tripping worker's [`AnalysisError`].
    pub fn try_enumerate_parallel_guarded(
        &self,
        threads: usize,
        guard: &BudgetGuard,
    ) -> Result<ConfigDistribution, AnalysisError> {
        crate::analysis::check_enumerable(self.fallible.len(), None)?;
        let _span = Span::enter(self.analysis.recorder, Phase::StateScan);
        let threads = threads.max(1);
        let n_states = 1u64 << self.fallible.len();
        let chunk = n_states.div_ceil(threads as u64);
        let contexts = self.contexts(None);
        let mut dist = ConfigDistribution::new();
        let mut first_err: Option<AnalysisError> = None;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let lo = chunk * t as u64;
                let hi = (lo + chunk).min(n_states);
                if lo >= hi {
                    continue;
                }
                let contexts = &contexts;
                handles.push(scope.spawn(move || {
                    let mut acc = Accumulator::new(self.analysis.space);
                    let mut memo = Memo::default();
                    for ctx in contexts {
                        memo.clear();
                        if let Err(e) =
                            self.scan_range(ctx, lo, hi, &mut memo, &mut acc, Some(guard))
                        {
                            guard.trip(e.clone());
                            return Err(e);
                        }
                    }
                    Ok(acc.into_distribution(0))
                }));
            }
            for h in handles {
                match h
                    .join()
                    .expect("invariant: enumeration worker never panics")
                {
                    Ok(part) => dist.merge(part),
                    Err(e) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                }
            }
        });
        if let Some(e) = first_err {
            return Err(e);
        }
        dist.set_states_explored(n_states * contexts.len() as u64);
        Ok(dist)
    }

    /// The hot loop: walks state indices `[lo, hi)` of one context in
    /// Gray-code order, maintaining the state probability and the `know`
    /// answer word incrementally, and accumulates probabilities per
    /// interned configuration.
    ///
    /// With a guard, the deadline and memo cap are polled at
    /// [`CHECK_INTERVAL`]-state block boundaries: the Gray walk is a
    /// single iterator whose blocks are pulled off with `take`, so the
    /// per-state body is guard-free and emits the exact same `(word,
    /// probability)` sequence either way — a within-budget guarded scan
    /// is bit-identical to an unguarded one and pays only one guard poll
    /// per block on the hot path.
    fn scan_range(
        &self,
        ctx: &EvalContext,
        lo: u64,
        hi: u64,
        memo: &mut Memo,
        acc: &mut Accumulator,
        guard: Option<&BudgetGuard>,
    ) -> Result<(), AnalysisError> {
        let mut fc = ScanFlush {
            rec: self.analysis.recorder,
            c: ScanCounters::default(),
        };
        let know = ctx.know.as_ref().or(self.know.as_ref());
        let mut ke =
            know.map(|k| KnowEval::new(k, self.fallible.len(), self.analysis.unmonitored_known));
        // `prev_eff` is the effective word of the last state whose
        // answers were computed; zero-probability states are skipped
        // without touching the answer word, so a later update may flip
        // several bits at once.
        let mut prev_eff: Option<u64> = None;
        let mut last: Option<((u64, u64), u32)> = None;
        let mut walk = GrayWalk::new(&self.up, lo, hi);
        let mut remaining = hi - lo;
        while remaining > 0 {
            let block = match guard {
                Some(g) => {
                    g.check()?;
                    fc.c.polls += 1;
                    let cap = g.budget().max_memo_entries;
                    if memo.len() > cap {
                        return Err(AnalysisError::MemoCapExceeded {
                            entries: memo.len(),
                            max_entries: cap,
                        });
                    }
                    CHECK_INTERVAL.min(remaining)
                }
                None => remaining,
            };
            for (word, wprob) in walk.by_ref().take(block as usize) {
                fc.c.steps += 1;
                let p = ctx.gprob * wprob;
                if p == 0.0 {
                    continue;
                }
                fc.c.visited += 1;
                let eff = word & !ctx.forced_mask;
                let answers = match &mut ke {
                    Some(ke) => {
                        match prev_eff {
                            Some(pe) if pe == eff => {}
                            Some(pe) => {
                                ke.update(eff, pe ^ eff);
                                fc.c.know_evals += 1;
                            }
                            None => {
                                ke.reset(eff);
                                fc.c.know_evals += 1;
                            }
                        }
                        ke.answers
                    }
                    None => 0,
                };
                prev_eff = Some(eff);
                let key = (eff & self.app_mask, answers);
                let id = match last {
                    // Consecutive states usually differ only in bits the
                    // decision cannot see: reuse the previous id without
                    // a table probe.
                    Some((k, id)) if k == key => {
                        fc.c.memo_hits += 1;
                        id
                    }
                    _ => {
                        let id = self.config_id(eff, key, &ctx.forced, memo, acc, &mut fc.c);
                        last = Some((key, id));
                        id
                    }
                };
                acc.sums[id as usize] += p;
            }
            remaining -= block;
        }
        Ok(())
    }

    /// Multi-threaded exact enumeration through the kernel: the state
    /// range is split across `threads` workers, each with its own memo.
    pub fn enumerate_parallel(
        &self,
        threads: usize,
        deps: Option<&FailureDependencies>,
    ) -> ConfigDistribution {
        crate::analysis::assert_enumerable(self.fallible.len(), deps);
        let _span = Span::enter(self.analysis.recorder, Phase::StateScan);
        let threads = threads.max(1);
        let n_states = 1u64 << self.fallible.len();
        let chunk = n_states.div_ceil(threads as u64);
        let contexts = self.contexts(deps);
        let mut dist = ConfigDistribution::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let lo = chunk * t as u64;
                let hi = (lo + chunk).min(n_states);
                if lo >= hi {
                    continue;
                }
                let contexts = &contexts;
                handles.push(scope.spawn(move || {
                    let mut acc = Accumulator::new(self.analysis.space);
                    let mut memo = Memo::default();
                    for ctx in contexts {
                        memo.clear();
                        self.scan_range(ctx, lo, hi, &mut memo, &mut acc, None)
                            .expect("invariant: an unguarded scan has no budget to exhaust");
                    }
                    acc.into_distribution(0)
                }));
            }
            for h in handles {
                dist.merge(
                    h.join()
                        .expect("invariant: enumeration worker never panics"),
                );
            }
        });
        dist.set_states_explored(n_states * contexts.len() as u64);
        dist
    }

    /// Builds one evaluation context per group mask with non-zero
    /// probability (a single unforced context without dependencies).
    fn contexts(&self, deps: Option<&FailureDependencies>) -> Vec<EvalContext> {
        let Some(deps) = deps else {
            return vec![EvalContext {
                gprob: 1.0,
                forced: Vec::new(),
                forced_mask: 0,
                know: None,
            }];
        };
        let n_group_states = 1u64 << deps.group_count();
        let mut out = Vec::new();
        for gmask in 0..n_group_states {
            let gprob = deps.mask_probability(gmask);
            if gprob == 0.0 {
                continue;
            }
            let forced = deps.forced_down(gmask);
            let mut forced_mask = 0u64;
            for &ix in &forced {
                if let Some(b) = self.fallible.iter().position(|&f| f == ix) {
                    forced_mask |= 1u64 << b;
                }
            }
            let know = if forced.is_empty() {
                None
            } else {
                match self.analysis.knowledge {
                    Knowledge::Perfect => None,
                    Knowledge::Mama(table) => Some(
                        table
                            .compile_with_forced(self.analysis.space, &forced)
                            .expect("base table compiled, forced subset must too"),
                    ),
                }
            };
            out.push(EvalContext {
                gprob,
                forced,
                forced_mask,
                know,
            });
        }
        fmperf_obs::add(
            self.analysis.recorder,
            Counter::CcfContexts,
            out.len() as u64,
        );
        out
    }

    /// The interned configuration id for an effective state word: a
    /// memo probe on the decision word (application bits + packed `know`
    /// answers), falling back to the full allocating evaluator on the
    /// first sighting of a pattern.
    fn config_id(
        &self,
        word: u64,
        key: (u64, u64),
        forced: &[usize],
        memo: &mut Memo,
        acc: &mut Accumulator,
        counters: &mut ScanCounters,
    ) -> u32 {
        if let Some(&id) = memo.get(&key) {
            counters.memo_hits += 1;
            return id;
        }
        counters.memo_misses += 1;
        // Memo miss: reconstruct the state vector and run the reference
        // evaluator (identical code path to the naive enumerator).
        for (b, &ix) in self.fallible.iter().enumerate() {
            acc.state[ix] = word & (1u64 << b) != 0;
        }
        for &ix in forced {
            acc.state[ix] = false;
        }
        let config = self.analysis.configuration_of(&acc.state);
        for &ix in forced {
            acc.state[ix] = true; // restore the all-up baseline
        }
        let id = match acc.ids.get(&config) {
            Some(&id) => id,
            None => {
                let id = acc.configs.len() as u32;
                acc.ids.insert(config.clone(), id);
                acc.configs.push(config);
                acc.sums.push(0.0);
                id
            }
        };
        memo.insert(key, id);
        id
    }

    /// Samples `samples` random states and estimates the distribution;
    /// the RNG consumption order matches the naive Monte Carlo estimator
    /// exactly, so identical seeds give identical estimates.
    pub(crate) fn monte_carlo_run(
        &self,
        rng: &mut impl rand::Rng,
        samples: u64,
    ) -> ConfigDistribution {
        let mut fc = ScanFlush {
            rec: self.analysis.recorder,
            c: ScanCounters::default(),
        };
        let mut acc = Accumulator::new(self.analysis.space);
        let mut memo = Memo::default();
        let weight = 1.0 / samples as f64;
        for _ in 0..samples {
            let mut word = 0u64;
            for (b, &p) in self.up.iter().enumerate() {
                if rng.gen::<f64>() < p {
                    word |= 1u64 << b;
                }
            }
            let answers = self
                .know
                .as_ref()
                .map_or(0, |k| k.answers(word, self.analysis.unmonitored_known));
            let key = (word & self.app_mask, answers);
            let id = self.config_id(word, key, &[], &mut memo, &mut acc, &mut fc.c);
            acc.sums[id as usize] += weight;
        }
        fmperf_obs::add(self.analysis.recorder, Counter::MonteCarloSamples, samples);
        acc.into_distribution(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmperf_ftlqn::examples::das_woodside_system;
    use fmperf_ftlqn::{Component, KnowPolicy};
    use fmperf_mama::{arch, KnowTable};

    #[test]
    fn gray_walk_visits_every_word_exactly_once() {
        let up = [0.9, 0.8, 0.7, 0.6];
        let words: Vec<u64> = GrayWalk::new(&up, 0, 16).map(|(w, _)| w).collect();
        let mut sorted = words.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<u64>>());
        // Consecutive words differ in exactly one bit.
        for pair in words.windows(2) {
            assert_eq!((pair[0] ^ pair[1]).count_ones(), 1);
        }
    }

    #[test]
    fn gray_walk_probabilities_match_direct_products() {
        let up = [0.9, 0.25, 0.5, 0.99];
        let mut total = 0.0;
        for (word, p) in GrayWalk::new(&up, 0, 16) {
            let direct: f64 = up
                .iter()
                .enumerate()
                .map(|(b, &u)| if word & (1 << b) != 0 { u } else { 1.0 - u })
                .product();
            assert!((p - direct).abs() < 1e-14, "word {word:b}: {p} vs {direct}");
            total += p;
        }
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gray_walk_handles_degenerate_probabilities() {
        // up = 0 and up = 1 give zero factors; the walk must report 0
        // probability for the impossible states without poisoning the
        // running product (no 0/0 NaNs).
        let up = [0.0, 1.0, 0.5];
        let mut total = 0.0;
        for (word, p) in GrayWalk::new(&up, 0, 8) {
            assert!(p.is_finite());
            let possible = word & 0b001 == 0 && word & 0b010 != 0;
            assert_eq!(p > 0.0, possible, "word {word:03b} prob {p}");
            total += p;
        }
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gray_walk_subranges_concatenate_to_full_walk() {
        let up = [0.9, 0.3, 0.7, 0.45, 0.2];
        let full: Vec<(u64, f64)> = GrayWalk::new(&up, 0, 32).collect();
        let mut split: Vec<(u64, f64)> = GrayWalk::new(&up, 0, 13).collect();
        split.extend(GrayWalk::new(&up, 13, 32));
        assert_eq!(full.len(), split.len());
        for (i, (f, s)) in full.iter().zip(&split).enumerate() {
            assert_eq!(f.0, s.0, "word at {i}");
            assert!((f.1 - s.1).abs() < 1e-15, "prob at {i}");
        }
    }

    #[test]
    fn kernel_matches_naive_bit_for_bit_on_all_architectures() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        for kind in arch::ArchKind::ALL {
            let mama = arch::build(kind, &sys, 0.1);
            let space = ComponentSpace::build(&sys.model, &mama);
            let table = KnowTable::build(&graph, &mama, &space);
            for policy in [
                KnowPolicy::AnyFailedComponent,
                KnowPolicy::AllFailedComponents,
            ] {
                let analysis = Analysis::new(&graph, &space)
                    .with_knowledge(&table)
                    .with_policy(policy);
                let kernel = analysis.compile().expect("paper models compile");
                // `ConfigDistribution` compares probabilities with `==`:
                // this asserts bit-identity, not epsilon closeness.
                assert_eq!(
                    kernel.enumerate(),
                    analysis.enumerate_naive(),
                    "{}/{policy:?}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn kernel_matches_naive_under_unmonitored_exemption() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let mama = arch::distributed_as_published(&sys, 0.1);
        let space = ComponentSpace::build(&sys.model, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        let analysis = Analysis::new(&graph, &space)
            .with_knowledge(&table)
            .with_unmonitored_known(true);
        let kernel = analysis.compile().unwrap();
        assert_eq!(kernel.enumerate(), analysis.enumerate_naive());
    }

    #[test]
    fn kernel_matches_naive_with_dependencies() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let mama = arch::centralized(&sys, 0.1);
        let space = ComponentSpace::build(&sys.model, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        let mut deps = FailureDependencies::new();
        // One group over app components, one reaching into the
        // management plane (forces know-table recompilation).
        deps.add_group(
            "server-rack",
            0.15,
            vec![
                sys.model.component_index(Component::Processor(sys.proc3)),
                sys.model.component_index(Component::Processor(sys.proc4)),
            ],
        );
        let manager = mama.component_by_name("m1").expect("centralized m1");
        deps.add_group("mgmt-rack", 0.1, vec![space.mama_index(manager)]);
        for unmonitored in [false, true] {
            let analysis = Analysis::new(&graph, &space)
                .with_knowledge(&table)
                .with_unmonitored_known(unmonitored);
            let kernel = analysis.compile().unwrap();
            assert_eq!(
                kernel.enumerate_with_dependencies(&deps),
                analysis.enumerate_naive_with_dependencies(&deps),
                "unmonitored_known = {unmonitored}"
            );
        }
    }

    #[test]
    fn memo_collapses_state_space_to_few_evaluations() {
        let sys = das_woodside_system();
        let graph = sys.fault_graph().unwrap();
        let mama = arch::hierarchical(&sys, 0.1);
        let space = ComponentSpace::build(&sys.model, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        let analysis = Analysis::new(&graph, &space).with_knowledge(&table);
        let kernel = analysis.compile().unwrap();
        assert_eq!(kernel.bit_count(), 18);
        let know = kernel.know_table().expect("MAMA knowledge compiled");
        assert!(!know.is_empty() && know.len() <= 64);
        let dist = kernel.enumerate();
        assert_eq!(dist.states_explored(), 1 << 18);
        // 2^18 states collapse onto a handful of configurations.
        assert!(dist.configurations().len() < 64);
        assert!((dist.total_probability() - 1.0).abs() < 1e-9);
    }
}
