//! # fmperf-core
//!
//! The performability engines of the DSN 2002 reproduction: everything
//! that combines the application model (`fmperf-ftlqn`), the management
//! architecture (`fmperf-mama`) and the LQN solver (`fmperf-lqn`) into
//! the paper's §5 algorithm — and its extensions.
//!
//! * [`Analysis`] — one configured study: fault graph + component space +
//!   knowledge source + know policy.
//! * [`enumerate`](Analysis::enumerate) — the paper's exact `2^N`
//!   state-space scan (also a multi-threaded variant).
//! * [`compiled`] — the compiled bitmask evaluation kernel behind the
//!   exact engines: packed `u64` state words, Gray-code enumeration and
//!   memoised service decisions (bit-identical to the naive reference
//!   scan, an order of magnitude faster).
//! * [`symbolic`](Analysis::symbolic) — the "non-state-space-based"
//!   engine the paper's conclusion calls for: coverage conditions are
//!   compiled to BDDs over the management components, making the cost
//!   `2^(application components)` × small BDD work instead of
//!   `2^(all components)`.
//! * [`compile_mtbdd`](Analysis::compile_mtbdd) — the compile-once MTBDD
//!   engine: the complete state→configuration map as one multi-terminal
//!   BDD per common-cause context, after which *any* availability vector
//!   costs a single pass linear in the diagram ([`sweep`] drives
//!   paper-style availability curves over it, and
//!   [`sensitivity_mtbdd`](sensitivity::sensitivity_mtbdd) reads exact
//!   derivatives off the co-factors).
//! * [`monte_carlo`](Analysis::monte_carlo) — sampling estimator for
//!   models beyond exact reach.
//! * [`solve_configurations`] / [`expected_reward`] — step 5/6: solve an
//!   LQN per distinct configuration and fold with the probabilities.
//! * [`sensitivity()`](sensitivity::sensitivity) — Birnbaum-style importance of every component for
//!   the expected reward.
//! * [`ccf`] — common-cause failure groups (failure-dependency extension
//!   of the paper's reference \[10\]).
//! * [`delay`] — first-order detection/reconfiguration delay penalty
//!   (extension sketched in the paper's conclusion, reference \[29\]).
//!
//! ```no_run
//! use fmperf_core::{Analysis, RewardSpec};
//! use fmperf_ftlqn::{examples::das_woodside_system, KnowPolicy};
//! use fmperf_mama::{arch, ComponentSpace, KnowTable};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sys = das_woodside_system();
//! let graph = sys.fault_graph()?;
//! let mama = arch::centralized(&sys, 0.1);
//! let space = ComponentSpace::build(&sys.model, &mama);
//! let table = KnowTable::build(&graph, &mama, &space);
//!
//! let analysis = Analysis::new(&graph, &space).with_knowledge(&table);
//! let dist = analysis.enumerate();
//! let perf = fmperf_core::solve_configurations(&sys.model, &dist.configurations())?;
//! let reward = RewardSpec::new().weight(sys.user_a, 1.0).weight(sys.user_b, 1.0);
//! println!("R = {}", fmperf_core::expected_reward(&dist, &perf, &reward));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod audit;
pub mod availability;
pub mod budget;
pub mod campaign;
pub mod ccf;
pub mod compiled;
pub mod ctmc;
pub mod delay;
pub mod distribution;
pub mod importance;
pub(crate) mod know_guards;
pub mod montecarlo;
pub mod mtbdd_engine;
pub mod report;
pub mod reward;
pub mod sensitivity;
pub mod sweep;
pub mod symbolic;

pub use analysis::{Analysis, Knowledge};
pub use audit::{
    audit, replay_app_cut, replay_mgmt_cut, AuditError, AuditOptions, AuditReport, CutConfirmation,
    MgmtAudit, UncoveredComponent,
};
pub use availability::{RepairModel, RepairModelError};
pub use budget::{
    AnalysisBudget, AnalysisError, AnalysisReport, BudgetGuard, Descent, EngineKind, EstimateInfo,
    GuardedOptions, IsInfo, RARE_EVENT_FAIL_PROB,
};
pub use campaign::{
    run_campaign, run_campaign_observed, CampaignOptions, CampaignReport, ScenarioAnalysis,
    ScenarioOutcome, ScenarioProgress,
};
pub use ccf::FailureDependencies;
pub use compiled::{CompiledKernel, LANE_WIDTH};
pub use ctmc::{Ctmc, CtmcError};
pub use delay::{ComponentDelayCycle, ComponentDelayReport, DelayModel};
pub use distribution::ConfigDistribution;
pub use importance::{ImportanceEstimate, ImportanceOptions};
pub use montecarlo::{MonteCarloEstimate, MonteCarloOptions};
pub use mtbdd_engine::CompiledMtbdd;
pub use report::{ReportRow, StudyReport};
pub use reward::{expected_reward, solve_configurations, ConfigPerformance, RewardSpec};
pub use sensitivity::{sensitivity, sensitivity_mtbdd};
pub use sweep::{
    availability_points, sweep, sweep_guarded, sweep_guarded_observed, SweepError, SweepPoint,
    SweepSpec,
};
