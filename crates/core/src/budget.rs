//! Budget-guarded analysis with a graceful engine-degradation ladder.
//!
//! The exact engines scale as `2^N`; a model with 40 fallible components
//! would happily wedge the process for days.  This module makes every
//! engine *interruptible* and composes them into a ladder that always
//! returns a result:
//!
//! ```text
//! exact enumeration ──▶ MTBDD ──▶ compiled bitmask ──▶ Monte Carlo
//!   (2^N scan,           (2^A·2^S   (2^N scan,           (sampling,
//!    bit-identical        build,     memoised,            batch-means
//!    to `enumerate`)      mgmt is    deadline/memo        95% CI —
//!                         symbolic)  bounded)             never fails)
//! ```
//!
//! An [`AnalysisBudget`] bounds wall-clock time, enumerated states, MTBDD
//! nodes and memo entries.  Each rung checks its caps cooperatively (the
//! Gray-code scan every [`CHECK_INTERVAL`] states, the MTBDD build per
//! application-state cube via the manager's node limit); when a rung's
//! budget is exhausted the ladder *descends* instead of erroring, and the
//! returned [`AnalysisReport`] records which engine produced the number,
//! every descent with its typed reason, and the confidence interval when
//! the result is a Monte Carlo estimate.
//!
//! Rung semantics:
//!
//! * **Exact enumeration** — the same dispatch as
//!   [`Analysis::enumerate`] / [`Analysis::enumerate_parallel`], so a
//!   within-budget run is bit-identical to the unguarded engine.  Refused
//!   when `2^N > max_states`.
//! * **MTBDD** — the management plane is symbolic, so the build cost is
//!   `2^A·2^S` (application components × services) rather than `2^N`:
//!   a model whose management plane blew the state cap can still be
//!   solved *exactly* here.  Node allocation is capped, the build loop is
//!   deadline-checked, and the region count must fit `max_states`.
//! * **Compiled bitmask** — one more exact attempt through the kernel,
//!   for the case where the first rung's dispatch ran the naive scan (or
//!   the MTBDD blew its node cap) and the kernel's memoisation can still
//!   beat the deadline.
//! * **Monte Carlo** — the bottom rung never fails: at least two sample
//!   batches always run (even with an already-expired deadline), and the
//!   batch means give a Student-t 95% confidence interval on the failure
//!   probability.

use crate::analysis::{check_enumerable, Analysis};
use crate::distribution::ConfigDistribution;
use crate::montecarlo::MonteCarloOptions;
use crate::sweep::SweepError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// States scanned between two cooperative budget checks in the hot
/// enumeration loops.  Large enough that the check is invisible next to
/// the per-state work, small enough that a deadline overshoot stays in
/// the microsecond range.
pub const CHECK_INTERVAL: u64 = 4096;

/// Sample batches the Monte Carlo rung aims for (the batch means feed
/// the confidence interval; at least two always run).
const MC_BATCHES: u64 = 20;

/// The sampling rung switches from plain Monte Carlo to importance
/// sampling when the model's smallest non-zero component failure
/// probability is below this: below `1e-3`, a naive sampler visits the
/// states where that component is down so rarely that its estimate is
/// effectively unconditioned on them (the FM205 lint flags the same
/// regime).
pub const RARE_EVENT_FAIL_PROB: f64 = 1e-3;

/// Resource bounds for one guarded analysis.
///
/// `Default` is deliberately generous — all five paper models pass the
/// first rung untouched — while still refusing the pathological inputs
/// the ladder exists for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalysisBudget {
    /// Wall-clock deadline for the exact rungs (`None` = unbounded).
    /// The Monte Carlo rung stops *extending* past the deadline but
    /// always completes its minimum two batches.
    pub deadline: Option<Duration>,
    /// Cap on exhaustively enumerated states: `2^N` for the scan rungs,
    /// the `2^A·2^S` region count for the MTBDD build.
    pub max_states: u64,
    /// Cap on allocated MTBDD decision nodes during the compile.
    pub max_mtbdd_nodes: usize,
    /// Cap on decision-memo entries in the compiled bitmask kernel
    /// (checked at [`CHECK_INTERVAL`] granularity).
    pub max_memo_entries: usize,
}

impl AnalysisBudget {
    /// Default state cap (`2^22`): also the threshold the `FM203` lint
    /// warns at, so keep the two in sync by construction.
    pub const DEFAULT_MAX_STATES: u64 = 1 << 22;
    /// Default MTBDD node cap.
    pub const DEFAULT_MAX_MTBDD_NODES: usize = 1 << 20;
    /// Default memo-entry cap.
    pub const DEFAULT_MAX_MEMO_ENTRIES: usize = 1 << 20;
    /// Default wall-clock deadline.
    pub const DEFAULT_DEADLINE: Duration = Duration::from_secs(30);

    /// A budget with every cap lifted (the guarded engines then behave
    /// exactly like their unguarded twins, minus a few branch checks).
    pub fn unlimited() -> AnalysisBudget {
        AnalysisBudget {
            deadline: None,
            max_states: u64::MAX,
            max_mtbdd_nodes: usize::MAX,
            max_memo_entries: usize::MAX,
        }
    }
}

impl Default for AnalysisBudget {
    fn default() -> AnalysisBudget {
        AnalysisBudget {
            deadline: Some(Self::DEFAULT_DEADLINE),
            max_states: Self::DEFAULT_MAX_STATES,
            max_mtbdd_nodes: Self::DEFAULT_MAX_MTBDD_NODES,
            max_memo_entries: Self::DEFAULT_MAX_MEMO_ENTRIES,
        }
    }
}

/// Why an analysis step was refused or abandoned.
///
/// Returned by every `try_*` engine entry point; the guarded ladder
/// records these as [`Descent`] reasons instead of propagating them.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// The exact scan is structurally infeasible (the state word and the
    /// memo machinery are built for at most 30 joint bits).
    TooManyComponents {
        /// Fallible component count.
        fallible: usize,
        /// Common-cause group count (0 without dependencies).
        groups: usize,
    },
    /// The enumeration (or MTBDD region) count exceeds the budget.
    StateCapExceeded {
        /// States the engine would have to visit.
        states: u64,
        /// The budget's cap.
        max_states: u64,
    },
    /// The wall-clock deadline expired (or a sibling worker tripped a
    /// budget and cancelled this one).
    DeadlineExpired {
        /// Time elapsed since the guard was created.
        elapsed: Duration,
    },
    /// The MTBDD build hit the decision-node cap.
    NodeCapExceeded {
        /// The budget's cap.
        max_nodes: usize,
    },
    /// The bitmask kernel's decision memo hit its entry cap.
    MemoCapExceeded {
        /// Entries at the time of the check.
        entries: usize,
        /// The budget's cap.
        max_entries: usize,
    },
    /// The analysis cannot be compiled to a bitmask kernel (more than 64
    /// fallible elements or an uncompilable know table).
    KernelUnavailable,
    /// A sampling estimator was asked for zero samples.
    NoSamples,
    /// An evaluation input's length does not match the compiled
    /// component count.
    DimensionMismatch {
        /// Expected length (the component count).
        expected: usize,
        /// Length actually supplied.
        got: usize,
    },
    /// A sweep specification was rejected.
    Sweep(SweepError),
}

impl From<SweepError> for AnalysisError {
    fn from(e: SweepError) -> AnalysisError {
        AnalysisError::Sweep(e)
    }
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::TooManyComponents { fallible, groups } => {
                if *groups > 0 {
                    write!(
                        f,
                        "{fallible} fallible components + {groups} dependency groups exceed \
                         the 30-bit exact-enumeration limit"
                    )
                } else {
                    write!(
                        f,
                        "{fallible} fallible components exceed the 30-bit exact-enumeration limit"
                    )
                }
            }
            AnalysisError::StateCapExceeded { states, max_states } => {
                write!(f, "{states} states exceed the budget of {max_states}")
            }
            AnalysisError::DeadlineExpired { elapsed } => {
                write!(f, "deadline expired after {:.3}s", elapsed.as_secs_f64())
            }
            AnalysisError::NodeCapExceeded { max_nodes } => {
                write!(f, "MTBDD build exceeded the node budget of {max_nodes}")
            }
            AnalysisError::MemoCapExceeded {
                entries,
                max_entries,
            } => {
                write!(
                    f,
                    "decision memo reached {entries} entries, exceeding the budget of {max_entries}"
                )
            }
            AnalysisError::KernelUnavailable => {
                write!(f, "the analysis cannot be compiled to a bitmask kernel")
            }
            AnalysisError::NoSamples => write!(f, "a sampling estimator needs at least 1 sample"),
            AnalysisError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "availability vector has length {got}, expected the component count {expected}"
                )
            }
            AnalysisError::Sweep(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Live cancellation state of one guarded run, shared across worker
/// threads.  Cheap to poll: a deadline comparison plus one relaxed
/// atomic load.
#[derive(Debug)]
pub struct BudgetGuard {
    budget: AnalysisBudget,
    start: Instant,
    deadline: Option<Instant>,
    cancelled: AtomicBool,
    /// The error that caused cancellation (set by the tripping worker so
    /// siblings report the true reason, not a generic cancellation).
    cause: OnceLock<AnalysisError>,
}

impl BudgetGuard {
    /// Starts the clock on a budget.
    pub fn new(budget: &AnalysisBudget) -> BudgetGuard {
        let start = Instant::now();
        BudgetGuard {
            budget: *budget,
            start,
            deadline: budget
                .deadline
                .map(|d| start.checked_add(d).unwrap_or(start)),
            cancelled: AtomicBool::new(false),
            cause: OnceLock::new(),
        }
    }

    /// The budget this guard enforces.
    pub fn budget(&self) -> &AnalysisBudget {
        &self.budget
    }

    /// Time since the guard was created.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Cooperative checkpoint: errors when the deadline has passed or a
    /// sibling worker tripped a budget.
    pub fn check(&self) -> Result<(), AnalysisError> {
        if self.cancelled.load(Ordering::Relaxed) {
            return Err(self.cause.get().cloned().unwrap_or_else(|| {
                AnalysisError::DeadlineExpired {
                    elapsed: self.elapsed(),
                }
            }));
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(AnalysisError::DeadlineExpired {
                    elapsed: self.elapsed(),
                });
            }
        }
        Ok(())
    }

    /// Records `cause` and cancels every worker polling this guard.
    pub fn trip(&self, cause: AnalysisError) {
        let _ = self.cause.set(cause);
        self.cancelled.store(true, Ordering::Relaxed);
    }
}

/// Which engine produced a guarded result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Exact state enumeration (naive or kernel dispatch, bit-identical
    /// to [`Analysis::enumerate`]).
    Exact,
    /// The compile-once multi-terminal BDD engine.
    Mtbdd,
    /// The compiled bitmask kernel, forced past the first rung's
    /// dispatch heuristic.
    Bitmask,
    /// Monte Carlo sampling with batch-means confidence intervals.
    MonteCarlo,
    /// Rare-event importance sampling (failure-biased proposal with
    /// likelihood-ratio reweighting; see [`crate::importance`]).
    Importance,
}

impl EngineKind {
    /// Stable name used in reports and `--json` output.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Exact => "exact-enumeration",
            EngineKind::Mtbdd => "mtbdd",
            EngineKind::Bitmask => "compiled-bitmask",
            EngineKind::MonteCarlo => "monte-carlo",
            EngineKind::Importance => "importance-sampling",
        }
    }

    /// Is the produced distribution exact (as opposed to estimated)?
    pub fn is_exact(self) -> bool {
        !matches!(self, EngineKind::MonteCarlo | EngineKind::Importance)
    }
}

/// One step down the degradation ladder: the engine that was tried and
/// the typed reason it was refused or abandoned.
#[derive(Debug, Clone, PartialEq)]
pub struct Descent {
    /// The rung that failed.
    pub engine: EngineKind,
    /// Why it failed.
    pub reason: AnalysisError,
}

/// Importance-sampling diagnostics attached to an [`EstimateInfo`] when
/// the estimate came from the rare-event engine (see
/// [`crate::importance`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsInfo {
    /// Effective sample size `(Σw)² / Σw²`: how many *unweighted*
    /// samples the weighted estimate is worth.  Equals the sample count
    /// when every weight is 1 (plain Monte Carlo) and collapses toward 1
    /// when a few huge weights dominate.
    pub ess: f64,
    /// Coefficient of variation of the likelihood-ratio weights —
    /// `0` for plain Monte Carlo, bounded because the defensive mixture
    /// bounds every weight.
    pub weight_cv: f64,
    /// Mean likelihood-ratio weight.  Its expectation is exactly 1, so a
    /// value far from 1 is a self-consistency red flag (the proposal
    /// missed important mass or the weights are wrong).
    pub mean_weight: f64,
    /// The failure-biasing strength the proposal was built with.
    pub bias: f64,
    /// The defensive-mixture weight of the nominal measure.
    pub mixture: f64,
}

/// Estimator provenance when the ladder bottomed out in a sampling rung.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateInfo {
    /// Total samples drawn.
    pub samples: u64,
    /// RNG seed (re-running with the same seed reproduces the estimate).
    pub seed: u64,
    /// Sample batches completed (the CI's degrees of freedom + 1).
    pub batches: u64,
    /// Batch-means point estimate of the failure probability.
    pub failed_mean: f64,
    /// Student-t 95% half-width on `failed_mean`.
    pub failed_half_width: f64,
    /// Importance-sampling diagnostics; `None` for plain Monte Carlo.
    pub is: Option<IsInfo>,
}

/// The outcome of a guarded analysis: the distribution, which engine
/// actually produced it, every ladder descent, and estimator provenance
/// when the result is sampled rather than exact.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// The configuration distribution (exact or estimated per
    /// [`engine`](AnalysisReport::engine)).
    pub distribution: ConfigDistribution,
    /// The rung that produced [`distribution`](AnalysisReport::distribution).
    pub engine: EngineKind,
    /// Rungs that were tried and abandoned, in ladder order.
    pub descents: Vec<Descent>,
    /// Present iff the result is sampled rather than exact
    /// (`engine` is [`EngineKind::MonteCarlo`] or
    /// [`EngineKind::Importance`]).
    pub estimate: Option<EstimateInfo>,
}

/// Options for [`Analysis::analyze_guarded`].
#[derive(Debug, Clone, Copy)]
pub struct GuardedOptions {
    /// Resource bounds.
    pub budget: AnalysisBudget,
    /// Samples for the sampling rung.
    pub samples: u64,
    /// RNG seed for the sampling rung.
    pub seed: u64,
    /// Worker threads for the exact rungs (1 = sequential, matching
    /// [`Analysis::enumerate`] bit for bit).
    pub threads: usize,
    /// Failure-biasing strength if the sampling rung selects importance
    /// sampling (see [`crate::importance::DEFAULT_BIAS`]).
    pub is_bias: f64,
    /// Defensive-mixture weight if the sampling rung selects importance
    /// sampling (see [`crate::importance::DEFAULT_MIXTURE`]).
    pub is_mixture: f64,
}

impl Default for GuardedOptions {
    fn default() -> GuardedOptions {
        GuardedOptions {
            budget: AnalysisBudget::default(),
            samples: 100_000,
            seed: 0xC0FFEE,
            threads: 1,
            is_bias: crate::importance::DEFAULT_BIAS,
            is_mixture: crate::importance::DEFAULT_MIXTURE,
        }
    }
}

impl Analysis<'_> {
    /// Runs the degradation ladder (see the [module docs](crate::budget))
    /// and always returns a result: exact enumeration, then MTBDD, then
    /// the compiled bitmask kernel, then Monte Carlo with batch-means
    /// confidence intervals.
    pub fn analyze_guarded(&self, opts: &GuardedOptions) -> AnalysisReport {
        let guard = BudgetGuard::new(&opts.budget);
        let mut descents = Vec::new();

        match self.try_enumerate_within(opts.threads, &guard) {
            Ok(distribution) => {
                return AnalysisReport {
                    distribution,
                    engine: EngineKind::Exact,
                    descents,
                    estimate: None,
                }
            }
            Err(reason) => descents.push(Descent {
                engine: EngineKind::Exact,
                reason,
            }),
        }

        match self.try_compile_mtbdd_guarded(&guard) {
            Ok(compiled) => {
                return AnalysisReport {
                    distribution: compiled.distribution(),
                    engine: EngineKind::Mtbdd,
                    descents,
                    estimate: None,
                }
            }
            Err(reason) => descents.push(Descent {
                engine: EngineKind::Mtbdd,
                reason,
            }),
        }

        match self.try_bitmask_within(opts.threads, &guard) {
            Ok(distribution) => {
                return AnalysisReport {
                    distribution,
                    engine: EngineKind::Bitmask,
                    descents,
                    estimate: None,
                }
            }
            Err(reason) => descents.push(Descent {
                engine: EngineKind::Bitmask,
                reason,
            }),
        }

        // Bottom rung: never fails.  At least two batches run even with
        // an expired deadline so a distribution and a finite-df CI always
        // come back.  The rung itself picks its sampler: a model with a
        // rare-event component (smallest non-zero failure probability
        // below [`RARE_EVENT_FAIL_PROB`]) gets the importance-sampled
        // estimator, everything else plain Monte Carlo — and the choice
        // is engine provenance in the report.
        let samples = opts.samples.max(MC_BATCHES);
        if self.has_rare_event_components() {
            let is = self.importance_batched(
                crate::importance::ImportanceOptions {
                    samples,
                    seed: opts.seed,
                    bias: opts.is_bias,
                    mixture: opts.is_mixture,
                },
                MC_BATCHES,
                Some(&guard),
            );
            return AnalysisReport {
                estimate: Some(is.info),
                distribution: is.distribution,
                engine: EngineKind::Importance,
                descents,
            };
        }
        let mc = self.monte_carlo_batched(
            MonteCarloOptions {
                samples,
                seed: opts.seed,
            },
            MC_BATCHES,
            Some(&guard),
        );
        AnalysisReport {
            estimate: Some(mc.info),
            distribution: mc.distribution,
            engine: EngineKind::MonteCarlo,
            descents,
        }
    }

    /// Does the model contain a component whose non-zero failure
    /// probability is below [`RARE_EVENT_FAIL_PROB`] — i.e. would naive
    /// Monte Carlo be sample-starved on the states that matter?
    pub fn has_rare_event_components(&self) -> bool {
        self.space.fallible_indices().iter().any(|&ix| {
            let fail = 1.0 - self.space.up_prob(ix);
            fail > 0.0 && fail < RARE_EVENT_FAIL_PROB
        })
    }

    /// First rung: the [`Analysis::enumerate`] /
    /// [`Analysis::enumerate_parallel`] dispatch under the state cap and
    /// deadline.  A success is bit-identical to the unguarded engine.
    fn try_enumerate_within(
        &self,
        threads: usize,
        guard: &BudgetGuard,
    ) -> Result<ConfigDistribution, AnalysisError> {
        let fallible = self.space.fallible_indices().len();
        check_enumerable(fallible, None)?;
        let states = 1u64 << fallible;
        if states > guard.budget().max_states {
            return Err(AnalysisError::StateCapExceeded {
                states,
                max_states: guard.budget().max_states,
            });
        }
        guard.check()?;
        if threads > 1 {
            // Mirrors `enumerate_parallel`: the kernel whenever it
            // compiles, sequential naive otherwise.
            return match self.compile() {
                Some(kernel) => kernel.try_enumerate_parallel_guarded(threads, guard),
                None => self.try_enumerate_naive_guarded(guard),
            };
        }
        match self.compile() {
            Some(kernel) if self.prefers_compiled() => kernel.try_enumerate_guarded(guard),
            _ => self.try_enumerate_naive_guarded(guard),
        }
    }

    /// Third rung: force the bitmask kernel even where the first rung's
    /// dispatch would have scanned naively.
    fn try_bitmask_within(
        &self,
        threads: usize,
        guard: &BudgetGuard,
    ) -> Result<ConfigDistribution, AnalysisError> {
        let fallible = self.space.fallible_indices().len();
        check_enumerable(fallible, None)?;
        let states = 1u64 << fallible;
        if states > guard.budget().max_states {
            return Err(AnalysisError::StateCapExceeded {
                states,
                max_states: guard.budget().max_states,
            });
        }
        guard.check()?;
        let kernel = self.compile().ok_or(AnalysisError::KernelUnavailable)?;
        if threads > 1 {
            kernel.try_enumerate_parallel_guarded(threads, guard)
        } else {
            kernel.try_enumerate_guarded(guard)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmperf_ftlqn::examples::das_woodside_system;
    use fmperf_mama::{arch, ComponentSpace, KnowTable};

    fn centralized_parts() -> (
        fmperf_ftlqn::examples::DasWoodsideSystem,
        fmperf_mama::MamaModel,
    ) {
        let sys = das_woodside_system();
        let mama = arch::centralized(&sys, 0.1);
        (sys, mama)
    }

    #[test]
    fn default_budget_stays_on_the_exact_rung() {
        let (sys, mama) = centralized_parts();
        let graph = sys.fault_graph().unwrap();
        let space = ComponentSpace::build(&sys.model, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        let analysis = Analysis::new(&graph, &space).with_knowledge(&table);
        let report = analysis.analyze_guarded(&GuardedOptions::default());
        assert_eq!(report.engine, EngineKind::Exact);
        assert!(report.descents.is_empty());
        assert!(report.estimate.is_none());
        // Bit-identical to the unguarded engine.
        assert_eq!(report.distribution, analysis.enumerate());
    }

    #[test]
    fn state_cap_descends_through_mtbdd_to_monte_carlo() {
        let (sys, mama) = centralized_parts();
        let graph = sys.fault_graph().unwrap();
        let space = ComponentSpace::build(&sys.model, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        let analysis = Analysis::new(&graph, &space).with_knowledge(&table);
        let opts = GuardedOptions {
            budget: AnalysisBudget {
                max_states: 16,
                ..AnalysisBudget::default()
            },
            samples: 20_000,
            ..GuardedOptions::default()
        };
        let report = analysis.analyze_guarded(&opts);
        assert_eq!(report.engine, EngineKind::MonteCarlo);
        assert_eq!(report.descents.len(), 3);
        for d in &report.descents {
            assert!(
                matches!(d.reason, AnalysisError::StateCapExceeded { .. }),
                "unexpected descent reason {:?}",
                d.reason
            );
        }
        let est = report.estimate.expect("Monte Carlo rung reports a CI");
        assert!(est.batches >= 2);
        assert!(est.failed_half_width.is_finite());
        // The estimate brackets the exact failure probability.
        let exact = analysis.enumerate().failed_probability();
        assert!(
            (est.failed_mean - exact).abs() < 4.0 * est.failed_half_width.max(1e-3),
            "estimate {} vs exact {exact} (hw {})",
            est.failed_mean,
            est.failed_half_width
        );
    }

    #[test]
    fn intermediate_cap_lands_on_mtbdd_exactly() {
        // Cap below 2^14 but above the MTBDD's 2^8·2^2 region count: the
        // ladder must stop on the (exact) MTBDD rung.
        let (sys, mama) = centralized_parts();
        let graph = sys.fault_graph().unwrap();
        let space = ComponentSpace::build(&sys.model, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        let analysis = Analysis::new(&graph, &space).with_knowledge(&table);
        let opts = GuardedOptions {
            budget: AnalysisBudget {
                max_states: 1 << 12,
                ..AnalysisBudget::default()
            },
            ..GuardedOptions::default()
        };
        let report = analysis.analyze_guarded(&opts);
        assert_eq!(report.engine, EngineKind::Mtbdd);
        assert_eq!(report.descents.len(), 1);
        assert!(report.engine.is_exact());
        let exact = analysis.enumerate();
        assert!(exact.max_abs_diff(&report.distribution) < 1e-12);
    }

    #[test]
    fn zero_deadline_still_returns_an_estimate() {
        let (sys, mama) = centralized_parts();
        let graph = sys.fault_graph().unwrap();
        let space = ComponentSpace::build(&sys.model, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        let analysis = Analysis::new(&graph, &space).with_knowledge(&table);
        let opts = GuardedOptions {
            budget: AnalysisBudget {
                deadline: Some(Duration::ZERO),
                ..AnalysisBudget::default()
            },
            samples: 5_000,
            ..GuardedOptions::default()
        };
        let report = analysis.analyze_guarded(&opts);
        assert_eq!(report.engine, EngineKind::MonteCarlo);
        assert!(!report.distribution.is_empty());
        let est = report.estimate.unwrap();
        assert!(est.batches >= 2);
        for d in &report.descents {
            assert!(matches!(d.reason, AnalysisError::DeadlineExpired { .. }));
        }
    }

    #[test]
    fn tiny_node_cap_skips_the_mtbdd_rung() {
        let (sys, mama) = centralized_parts();
        let graph = sys.fault_graph().unwrap();
        let space = ComponentSpace::build(&sys.model, &mama);
        let table = KnowTable::build(&graph, &mama, &space);
        let analysis = Analysis::new(&graph, &space).with_knowledge(&table);
        // State cap forces past rung 1; node cap 1 kills the MTBDD; the
        // bitmask rung is refused by the same state cap; Monte Carlo
        // catches.  But with an *adequate* state cap and node cap 1 the
        // bitmask rung must catch it exactly.
        let opts = GuardedOptions {
            budget: AnalysisBudget {
                max_mtbdd_nodes: 1,
                ..AnalysisBudget::default()
            },
            ..GuardedOptions::default()
        };
        let report = analysis.analyze_guarded(&opts);
        assert_eq!(report.engine, EngineKind::Exact);

        // Force the MTBDD rung to actually run (and fail on nodes).
        let opts = GuardedOptions {
            budget: AnalysisBudget {
                max_states: 1 << 12,
                max_mtbdd_nodes: 1,
                ..AnalysisBudget::default()
            },
            samples: 10_000,
            ..GuardedOptions::default()
        };
        let report = analysis.analyze_guarded(&opts);
        assert_eq!(report.engine, EngineKind::MonteCarlo);
        assert!(report
            .descents
            .iter()
            .any(|d| matches!(d.reason, AnalysisError::NodeCapExceeded { .. })));
    }

    #[test]
    fn guard_reports_sibling_cause() {
        let guard = BudgetGuard::new(&AnalysisBudget::unlimited());
        assert!(guard.check().is_ok());
        guard.trip(AnalysisError::MemoCapExceeded {
            entries: 10,
            max_entries: 5,
        });
        assert_eq!(
            guard.check(),
            Err(AnalysisError::MemoCapExceeded {
                entries: 10,
                max_entries: 5,
            })
        );
    }

    #[test]
    fn errors_display_their_budgets() {
        let e = AnalysisError::StateCapExceeded {
            states: 1 << 20,
            max_states: 16,
        };
        assert!(e.to_string().contains("16"));
        assert!(AnalysisError::KernelUnavailable
            .to_string()
            .contains("kernel"));
        assert!(AnalysisError::Sweep(SweepError::BoundOutOfRange)
            .to_string()
            .contains("[0, 1]"));
    }
}
