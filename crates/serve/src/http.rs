//! A minimal, defensive HTTP/1.1 layer over `std::io` streams.
//!
//! The workspace is hermetic, so this is hand-rolled — and deliberately
//! small: one request per connection (`Connection: close`), a hard cap
//! on the request head, a configurable cap on the body, and no chunked
//! encoding.  Every limit violation maps to a definite status code so
//! a hostile peer gets a bounded answer, never unbounded memory.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};

/// Hard cap on the request line + headers (bytes).
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Limits applied while reading one request.
#[derive(Debug, Clone, Copy)]
pub struct HttpLimits {
    /// Maximum accepted `Content-Length` (bytes); larger bodies are
    /// rejected with 413 before any body byte is read.
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> HttpLimits {
        HttpLimits {
            max_body_bytes: 1 << 20,
        }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path, query string stripped (`/v1/analyze`).
    pub path: String,
    /// Percent-decoded query parameters, last occurrence wins.
    pub query: BTreeMap<String, String>,
    /// Lowercased header names → values.
    pub headers: BTreeMap<String, String>,
    /// The request body (at most `max_body_bytes`).
    pub body: Vec<u8>,
}

/// Why a request could not be read; each variant maps to a status.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line or headers → 400.
    Malformed(String),
    /// Request head exceeded [`MAX_HEAD_BYTES`] → 431.
    HeadTooLarge,
    /// Declared body exceeds the limit → 413.
    BodyTooLarge {
        /// The declared `Content-Length`.
        declared: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The peer vanished or timed out mid-request.
    Io(io::Error),
}

impl HttpError {
    /// The status code this error maps to (`Io` has none — the peer is
    /// gone, nothing can be written).
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::Malformed(_) => Some((400, "Bad Request")),
            HttpError::HeadTooLarge => Some((431, "Request Header Fields Too Large")),
            HttpError::BodyTooLarge { .. } => Some((413, "Payload Too Large")),
            HttpError::Io(_) => None,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::HeadTooLarge => write!(f, "request head over {MAX_HEAD_BYTES} bytes"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes over the {limit}-byte limit")
            }
            HttpError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

/// Decodes `%XX` escapes and `+` in a query component; bad escapes pass
/// through literally (this is a diagnostics-friendly parser, not a
/// validator).
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() => {
                let hex = &s[i + 1..i + 3];
                match u8::from_str_radix(hex, 16) {
                    Ok(b) => {
                        out.push(b);
                        i += 3;
                    }
                    Err(_) => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits `a=1&b=two` into a decoded map.
fn parse_query(q: &str) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for pair in q.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        out.insert(percent_decode(k), percent_decode(v));
    }
    out
}

/// Reads the head (request line + headers) up to [`MAX_HEAD_BYTES`],
/// returning the head text and any body bytes read past the blank line.
fn read_head(stream: &mut impl Read) -> Result<(String, Vec<u8>), HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(pos) = find_head_end(&buf) {
            let head = String::from_utf8_lossy(&buf[..pos]).into_owned();
            let rest = buf[pos + 4..].to_vec();
            return Ok((head, rest));
        }
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        let n = stream.read(&mut chunk).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-head".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reads one full request from `stream` under `limits`.
///
/// # Errors
///
/// See [`HttpError`]; every variant except `Io` maps to a response
/// status via [`HttpError::status`].
pub fn read_request(stream: &mut impl Read, limits: &HttpLimits) -> Result<Request, HttpError> {
    let (head, mut body) = read_head(stream)?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty head".into()))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing method".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("unsupported {version}")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (percent_decode(p), parse_query(q)),
        None => (percent_decode(target), BTreeMap::new()),
    };
    let mut headers = BTreeMap::new();
    for line in lines.filter(|l| !l.is_empty()) {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line `{line}`")))?;
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }
    if headers.contains_key("transfer-encoding") {
        return Err(HttpError::Malformed(
            "chunked transfer encoding is not supported".into(),
        ));
    }
    let declared: usize = match headers.get("content-length") {
        None => 0,
        Some(v) => v
            .parse()
            .map_err(|_| HttpError::Malformed(format!("bad content-length `{v}`")))?,
    };
    if declared > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge {
            declared,
            limit: limits.max_body_bytes,
        });
    }
    // Body bytes already pulled in with the head count toward the
    // declared length; anything extra is ignored.
    body.truncate(declared.min(body.len()));
    while body.len() < declared {
        let mut chunk = vec![0u8; (declared - body.len()).min(64 * 1024)];
        let n = stream.read(&mut chunk).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// One response, written with `Connection: close`.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: &'static str,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (name, value), e.g. `Retry-After`.
    pub extra_headers: Vec<(&'static str, String)>,
    /// The body.
    pub body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, reason: &'static str, body: String) -> Response {
        Response {
            status,
            reason,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, reason: &'static str, body: impl Into<String>) -> Response {
        Response {
            status,
            reason,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.extra_headers.push((name, value.into()));
        self
    }

    /// Serializes and writes the response; errors are swallowed (the
    /// peer may already be gone — nothing useful can be done).
    pub fn write_to(&self, stream: &mut impl Write) {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
            self.status,
            self.reason,
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        let _ = stream.write_all(head.as_bytes());
        let _ = stream.write_all(self.body.as_bytes());
        let _ = stream.flush();
    }
}

/// Minimal JSON string escaping for response bodies.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(raw.as_bytes()), &HttpLimits::default())
    }

    #[test]
    fn parses_get_with_query() {
        let r =
            parse("GET /v1/analyze?budget_ms=50&policy=any HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/v1/analyze");
        assert_eq!(r.query.get("budget_ms").unwrap(), "50");
        assert_eq!(r.query.get("policy").unwrap(), "any");
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let r = parse("POST /v1/analyze HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(r.body, b"hello");
        assert_eq!(r.headers.get("content-length").unwrap(), "5");
    }

    #[test]
    fn percent_decoding() {
        let r = parse("GET /x?name=a%20b+c&pct=100%25 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.query.get("name").unwrap(), "a b c");
        assert_eq!(r.query.get("pct").unwrap(), "100%");
    }

    #[test]
    fn oversized_body_is_413() {
        let limits = HttpLimits { max_body_bytes: 4 };
        let err = read_request(
            &mut Cursor::new(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\n0123456789" as &[u8]),
            &limits,
        )
        .unwrap_err();
        assert_eq!(err.status().unwrap().0, 413);
    }

    #[test]
    fn oversized_head_is_431() {
        let mut raw = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..1000 {
            raw.push_str(&format!("x-h{i}: {}\r\n", "v".repeat(64)));
        }
        raw.push_str("\r\n");
        let err = parse(&raw).unwrap_err();
        assert_eq!(err.status().unwrap().0, 431);
    }

    #[test]
    fn garbage_is_400() {
        let err = parse("NOT A REQUEST\r\n\r\n").unwrap_err();
        assert_eq!(err.status().unwrap().0, 400);
    }

    #[test]
    fn chunked_is_rejected() {
        let err = parse("POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(err.status().unwrap().0, 400);
    }

    #[test]
    fn response_serializes() {
        let mut out = Vec::new();
        Response::json(503, "Service Unavailable", "{}".into())
            .with_header("retry-after", "1")
            .write_to(&mut out);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn json_escape_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
