//! A hand-rolled bounded MPMC queue (mutex + condvar) — the admission
//! control point between the acceptor and the worker pool.
//!
//! `try_push` never blocks and never grows past the bound: when the
//! queue is full the caller sheds the connection (503) instead of
//! queuing unboundedly.  `pop` blocks; closing the queue lets workers
//! drain what was already admitted and then exit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded blocking queue; see the module docs.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueState<T>> {
        // Poison-proof: the state is a plain deque + flag, valid at
        // every suspension point, so recovery after a panic is safe.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Admits `item` without blocking.
    ///
    /// # Errors
    ///
    /// Returns the item back when the queue is full (shed it) or
    /// closed (draining).
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut state = self.lock();
        if state.closed || state.items.len() >= self.capacity {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next item; `None` once the queue is closed *and*
    /// drained (workers exit then).
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stops admission; already-admitted items still drain.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Is the queue empty right now?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok());
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(3), "closed queue admits nothing");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let q = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(42).unwrap();
        assert_eq!(waiter.join().unwrap(), Some(42));
    }

    #[test]
    fn blocking_pop_wakes_on_close() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(waiter.join().unwrap(), None);
    }
}
