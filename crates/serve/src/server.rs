//! The daemon: acceptor, bounded admission queue, worker pool, routes.
//!
//! The crash-tolerance contract, in one place:
//!
//! * **Admission control** — the acceptor never queues unboundedly.
//!   When the bounded queue is full the connection is answered `503`
//!   with `Retry-After` right on the acceptor thread and dropped.
//! * **Per-request deadlines** — every analysis request carries an
//!   [`AnalysisBudget`]; overload degrades through the guarded ladder
//!   to a sampled answer with a confidence interval instead of hanging.
//! * **Panic isolation** — each request runs under `catch_unwind`; a
//!   panicking handler answers `500` and the worker loops on.  Both the
//!   artifact cache and the queue recover poisoned locks, so one bad
//!   request can never wedge the pool.
//! * **Drain** — `POST /quitquitquit` (the std-only stand-in for
//!   SIGTERM, which cannot be caught without unsafe code) stops
//!   admission; already-admitted requests complete before workers exit.
//!
//! And the observability contract (see [`crate::obs`]): every request —
//! served, shed, drained or panicked — gets a monotonic id echoed in
//! the `x-fmperf-request-id` header and in JSON bodies, one structured
//! access-log line, and a slot in the per-endpoint latency / queue-wait
//! / body-size histograms scraped from `/metrics`.  `GET /debug/slow`
//! dumps the N slowest requests with their full span trees;
//! `GET /debug/cache` dumps the artifact cache entry by entry.

use crate::cache::{ArtifactCache, CacheKey};
use crate::http::{json_escape, read_request, HttpLimits, Request, Response};
use crate::obs::{Endpoint, RequestObs, RequestRecord};
use crate::queue::BoundedQueue;
use crate::session::{ModelSession, SessionError};
use crate::work::{
    analyze_model, campaign_model, sweep_model, AnalyzeParams, CacheStatus, CampaignParams,
    SweepParams,
};
use fmperf_core::EstimateInfo;
use fmperf_ftlqn::KnowPolicy;
use fmperf_obs::{
    escape_prometheus_label, render_prometheus_histogram, MetricsRecorder, Recorder, TeeRecorder,
    TraceEvent, TraceRecorder,
};
use fmperf_text::ParseLimits;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The response schema identifier, first field of every JSON body.
pub const SCHEMA: &str = "fmperf-serve-v1";

/// The schema identifier of the `/debug/*` JSON bodies.
pub const DEBUG_SCHEMA: &str = "fmperf-debug-v1";

/// Daemon configuration (the `fmperf serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:8787` (port 0 for ephemeral).
    pub addr: String,
    /// Worker threads handling requests.
    pub threads: usize,
    /// Compiled-artifact cache capacity in MiB (0 disables).
    pub cache_mb: usize,
    /// Default per-request analysis deadline in milliseconds, used when
    /// a request carries no `budget_ms`.
    pub default_budget_ms: u64,
    /// Bounded admission queue depth; connections beyond it are shed
    /// with `503`.
    pub queue_depth: usize,
    /// Request body cap in bytes (larger bodies answer `413`).
    pub max_body_bytes: usize,
    /// JSON-lines access log destination: `None` disables, `"-"` is
    /// stdout, anything else is a file path opened for append.
    pub access_log: Option<String>,
    /// How many slowest requests (with span trees) to retain for
    /// `GET /debug/slow`.
    pub slow_keep: usize,
    /// Enable the `/v1/test/*` fault-injection routes (tests only).
    pub test_routes: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:8787".into(),
            threads: 4,
            cache_mb: 64,
            default_budget_ms: 2_000,
            queue_depth: 64,
            max_body_bytes: 1 << 20,
            access_log: None,
            slow_keep: 8,
            test_routes: false,
        }
    }
}

/// Monotonic request counters, exposed on `/metrics` and summarized in
/// the [`DrainReport`].
#[derive(Debug, Default)]
struct Stats {
    requests: AtomicU64,
    shed: AtomicU64,
    panics: AtomicU64,
    client_errors: AtomicU64,
    server_errors: AtomicU64,
    degraded: AtomicU64,
}

/// State shared by the acceptor and every worker.
struct Shared {
    config: ServeConfig,
    queue: BoundedQueue<(TcpStream, Instant)>,
    cache: ArtifactCache,
    metrics: MetricsRecorder,
    obs: RequestObs,
    stats: Stats,
    shutdown: AtomicBool,
}

/// What the daemon did over its lifetime, returned by
/// [`ServerHandle::shutdown`] / [`ServerHandle::wait`].
#[derive(Debug, Clone, Copy)]
pub struct DrainReport {
    /// Requests fully handled (any status).
    pub served: u64,
    /// Connections shed with `503` by admission control.
    pub shed: u64,
    /// Request handlers that panicked (each answered `500`).
    pub panics_caught: u64,
    /// Access-log lines written (served + shed when logging is on).
    pub access_lines: u64,
    /// Worker threads that died *outside* the per-request isolation
    /// boundary — always zero unless the isolation itself is broken.
    pub worker_panics: usize,
}

/// A running daemon; dropping the handle without calling
/// [`shutdown`](ServerHandle::shutdown) or [`wait`](ServerHandle::wait)
/// detaches the threads.
pub struct ServerHandle {
    shared: Arc<Shared>,
    local_addr: std::net::SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// The daemon entry point.
pub struct Server;

impl Server {
    /// Binds `config.addr` and starts the acceptor and worker threads.
    ///
    /// # Errors
    ///
    /// Propagates bind / configuration I/O errors (including a
    /// non-openable `access_log` path); everything after a successful
    /// bind is handled internally.
    pub fn start(config: ServeConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let threads = config.threads.max(1);
        let queue_depth = config.queue_depth.max(1);
        let obs = RequestObs::new(config.access_log.as_deref(), config.slow_keep)?;
        let shared = Arc::new(Shared {
            cache: ArtifactCache::new(config.cache_mb.saturating_mul(1 << 20)),
            queue: BoundedQueue::new(queue_depth),
            metrics: MetricsRecorder::new(),
            obs,
            stats: Stats::default(),
            shutdown: AtomicBool::new(false),
            config,
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("fmperf-acceptor".into())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("fmperf-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        Ok(ServerHandle {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            workers,
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Shared metrics recorder (scraped by `/metrics`).
    pub fn metrics(&self) -> &MetricsRecorder {
        &self.shared.metrics
    }

    /// Initiates drain (as `/quitquitquit` would) and waits for every
    /// in-flight request to finish.
    pub fn shutdown(mut self) -> DrainReport {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        self.join()
    }

    /// Waits for the daemon to drain on its own (after a
    /// `/quitquitquit` from a client).
    pub fn wait(mut self) -> DrainReport {
        self.join()
    }

    fn join(&mut self) -> DrainReport {
        let mut worker_panics = 0;
        if let Some(acceptor) = self.acceptor.take() {
            if acceptor.join().is_err() {
                worker_panics += 1;
            }
        }
        for worker in self.workers.drain(..) {
            if worker.join().is_err() {
                worker_panics += 1;
            }
        }
        let stats = &self.shared.stats;
        DrainReport {
            served: stats.requests.load(Ordering::Relaxed),
            shed: stats.shed.load(Ordering::Relaxed),
            panics_caught: stats.panics.load(Ordering::Relaxed),
            access_lines: self.shared.obs.lines_logged(),
            worker_panics,
        }
    }
}

/// Polls the nonblocking listener, admitting connections into the
/// bounded queue and shedding with `503` when it is full.  Admission
/// timestamps the connection so the worker can attribute queue wait.
fn accept_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                // Slowloris guard: a peer that stalls mid-request gets
                // a read error, not a parked worker.
                let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
                let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
                if let Err((stream, _)) = shared.queue.try_push((stream, Instant::now())) {
                    shared.stats.shed.fetch_add(1, Ordering::Relaxed);
                    let id = shared.obs.next_id();
                    shed_connection(stream, id);
                    let mut record = RequestRecord::new(id, 0);
                    record.status = 503;
                    record.disposition = "shed";
                    shared.obs.observe(&record, Vec::new());
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    // Stop admission; workers drain what was already accepted.
    shared.queue.close();
}

/// Answers a shed connection `503 + Retry-After` on the acceptor
/// thread.  The pending request bytes are drained (briefly, best
/// effort) first: closing a socket with unread input makes the kernel
/// RST the connection, which would destroy the very response that tells
/// the client to back off.
fn shed_connection(mut stream: TcpStream, id: u64) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut scratch = [0u8; 8 * 1024];
    let _ = io::Read::read(&mut stream, &mut scratch);
    Response::json(
        503,
        "Service Unavailable",
        format!(
            "{{\"schema\": \"{SCHEMA}\", \"request_id\": {id}, \
             \"error\": \"saturated: admission queue is full\"}}"
        ),
    )
    .with_header("retry-after", "1")
    .with_header("x-fmperf-request-id", id.to_string())
    .write_to(&mut stream);
    let _ = stream.shutdown(std::net::Shutdown::Write);
}

/// One worker: pop, handle under `catch_unwind`, answer, observe,
/// repeat until the queue closes and drains.  Observation happens here
/// — outside the isolation boundary — so even a panicking handler gets
/// its access-log line and histogram slot.
fn worker_loop(shared: &Shared) {
    while let Some((mut stream, enqueued)) = shared.queue.pop() {
        shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        let queue_wait_ns = enqueued.elapsed().as_nanos() as u64;
        let id = shared.obs.next_id();
        let start = Instant::now();
        let mut record = RequestRecord::new(id, queue_wait_ns);
        let mut spans: Vec<TraceEvent> = Vec::new();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            handle_connection(&mut stream, shared, &mut record, &mut spans)
        }));
        if outcome.is_err() {
            shared.stats.panics.fetch_add(1, Ordering::Relaxed);
            shared.stats.server_errors.fetch_add(1, Ordering::Relaxed);
            record.status = 500;
            record.disposition = "panic";
            Response::json(
                500,
                "Internal Server Error",
                format!(
                    "{{\"schema\": \"{SCHEMA}\", \"request_id\": {id}, \
                     \"error\": \"request handler panicked; \
                     the worker pool is unaffected\"}}"
                ),
            )
            .with_header("x-fmperf-request-id", id.to_string())
            .write_to(&mut stream);
        }
        if record.disposition == "ok" && shared.shutdown.load(Ordering::SeqCst) {
            record.disposition = "drain";
        }
        record.timings.total_ns = queue_wait_ns + start.elapsed().as_nanos() as u64;
        shared.obs.observe(&record, std::mem::take(&mut spans));
    }
}

/// Reads one request and routes it; every path writes exactly one
/// response carrying the `x-fmperf-request-id` header.  Fills `record`
/// as it learns about the request and leaves the handler's span tree in
/// `spans`.
fn handle_connection(
    stream: &mut TcpStream,
    shared: &Shared,
    record: &mut RequestRecord,
    spans: &mut Vec<TraceEvent>,
) {
    let limits = HttpLimits {
        max_body_bytes: shared.config.max_body_bytes,
    };
    let request = match read_request(stream, &limits) {
        Ok(r) => r,
        Err(e) => {
            if let Some((status, reason)) = e.status() {
                shared.stats.client_errors.fetch_add(1, Ordering::Relaxed);
                record.status = status;
                error_response(status, reason, "http", &e.to_string(), &[], record.id)
                    .with_header("x-fmperf-request-id", record.id.to_string())
                    .write_to(stream);
            }
            return;
        }
    };
    record.method = request.method.clone();
    record.path = request.path.clone();
    record.endpoint = Endpoint::classify(&request.path);
    record.body_bytes = request.body.len() as u64;
    // Per-request trace teed into the shared metrics: the engine spans
    // land in both the global phase totals and this request's tree.
    let trace = TraceRecorder::new();
    let tee = TeeRecorder::new(&shared.metrics, &trace);
    let response = route(&request, shared, record, &tee);
    record.status = response.status;
    if response.status >= 500 {
        shared.stats.server_errors.fetch_add(1, Ordering::Relaxed);
    } else if response.status >= 400 {
        shared.stats.client_errors.fetch_add(1, Ordering::Relaxed);
    }
    response
        .with_header("x-fmperf-request-id", record.id.to_string())
        .write_to(stream);
    *spans = trace.events();
}

/// An error body: `{schema, request_id, endpoint, error, diagnostics}`.
fn error_response(
    status: u16,
    reason: &'static str,
    endpoint: &str,
    error: &str,
    diagnostics: &[(usize, String)],
    id: u64,
) -> Response {
    let diags: Vec<String> = diagnostics
        .iter()
        .map(|(line, msg)| {
            format!(
                "{{\"line\": {line}, \"message\": \"{}\"}}",
                json_escape(msg)
            )
        })
        .collect();
    Response::json(
        status,
        reason,
        format!(
            "{{\"schema\": \"{SCHEMA}\", \"request_id\": {id}, \"endpoint\": \"{}\", \
             \"error\": \"{}\", \"diagnostics\": [{}]}}",
            json_escape(endpoint),
            json_escape(error),
            diags.join(", ")
        ),
    )
}

/// Dispatches one parsed request to its endpoint.
fn route(
    request: &Request,
    shared: &Shared,
    rec: &mut RequestRecord,
    recorder: &dyn Recorder,
) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "OK", "ok\n"),
        ("GET", "/readyz") => readyz(shared),
        ("GET", "/metrics") => Response::text(200, "OK", render_metrics(shared)),
        ("GET", "/debug/slow") => debug_slow(shared, rec.id),
        ("GET", "/debug/cache") => debug_cache(shared, rec.id),
        ("POST" | "GET", "/quitquitquit") => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.queue.close();
            Response::text(200, "OK", "draining\n")
        }
        ("POST", "/v1/analyze") => analyze_endpoint(request, shared, rec, recorder),
        ("POST", "/v1/sweep") => sweep_endpoint(request, shared, rec, recorder),
        ("POST", "/v1/campaign") => campaign_endpoint(request, shared, rec, recorder),
        ("POST" | "GET", "/v1/test/panic") if shared.config.test_routes => {
            panic!("fault injection: /v1/test/panic")
        }
        ("POST" | "GET", "/v1/test/sleep") if shared.config.test_routes => {
            let ms: u64 = request
                .query
                .get("ms")
                .and_then(|v| v.parse().ok())
                .unwrap_or(100);
            std::thread::sleep(Duration::from_millis(ms.min(10_000)));
            Response::text(200, "OK", "slept\n")
        }
        (_, "/healthz" | "/readyz" | "/metrics" | "/debug/slow" | "/debug/cache")
        | ("GET", "/v1/analyze" | "/v1/sweep" | "/v1/campaign") => error_response(
            405,
            "Method Not Allowed",
            "http",
            "method not allowed",
            &[],
            rec.id,
        ),
        _ => error_response(404, "Not Found", "http", "no such endpoint", &[], rec.id),
    }
}

/// `/readyz`: `503` while draining or when the admission queue is
/// nearly full (load shedding signal for balancers).
fn readyz(shared: &Shared) -> Response {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Response::text(503, "Service Unavailable", "draining\n")
            .with_header("retry-after", "1");
    }
    let depth = shared.config.queue_depth.max(1);
    if shared.queue.len() * 4 >= depth * 3 {
        return Response::text(503, "Service Unavailable", "saturated\n")
            .with_header("retry-after", "1");
    }
    Response::text(200, "OK", "ready\n")
}

/// Appends one family's `# HELP` / `# TYPE` preamble.
fn push_family(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

/// Appends a whole single-sample family: preamble plus the one line.
fn push_scalar(out: &mut String, name: &str, kind: &str, help: &str, value: u64) {
    push_family(out, name, kind, help);
    out.push_str(&format!("{name} {value}\n"));
}

/// Renders `/metrics` in Prometheus text exposition format: server
/// counters, cache state (including per-entry gauges), the engine
/// recorder's counters/phases, and the request histograms.  Every
/// label *value* passes through [`escape_prometheus_label`]; families
/// carry `# HELP`/`# TYPE` preambles and stay contiguous as the format
/// requires.
fn render_metrics(shared: &Shared) -> String {
    let stats = &shared.stats;
    let mut out = String::new();
    push_family(
        &mut out,
        "fmperf_build_info",
        "gauge",
        "Daemon build information (always 1; the version rides the label).",
    );
    out.push_str(&format!(
        "fmperf_build_info{{version=\"{}\"}} 1\n",
        escape_prometheus_label(env!("CARGO_PKG_VERSION"))
    ));
    push_scalar(
        &mut out,
        "fmperf_requests_total",
        "counter",
        "Requests admitted to the worker pool.",
        stats.requests.load(Ordering::Relaxed),
    );
    push_scalar(
        &mut out,
        "fmperf_shed_total",
        "counter",
        "Connections shed with 503 by admission control.",
        stats.shed.load(Ordering::Relaxed),
    );
    push_scalar(
        &mut out,
        "fmperf_panics_caught_total",
        "counter",
        "Request handlers that panicked (each answered 500).",
        stats.panics.load(Ordering::Relaxed),
    );
    push_scalar(
        &mut out,
        "fmperf_client_errors_total",
        "counter",
        "Responses with a 4xx status.",
        stats.client_errors.load(Ordering::Relaxed),
    );
    push_scalar(
        &mut out,
        "fmperf_server_errors_total",
        "counter",
        "Responses with a 5xx status.",
        stats.server_errors.load(Ordering::Relaxed),
    );
    push_scalar(
        &mut out,
        "fmperf_degraded_total",
        "counter",
        "Requests answered by a degraded (sampled) engine.",
        stats.degraded.load(Ordering::Relaxed),
    );
    push_scalar(
        &mut out,
        "fmperf_queue_depth",
        "gauge",
        "Connections waiting in the admission queue.",
        shared.queue.len() as u64,
    );
    push_scalar(
        &mut out,
        "fmperf_access_log_lines_total",
        "counter",
        "Access-log lines written (zero when logging is disabled).",
        shared.obs.lines_logged(),
    );
    push_scalar(
        &mut out,
        "fmperf_cache_hits_total",
        "counter",
        "Artifact cache lookups answered from the cache.",
        shared.cache.hits(),
    );
    push_scalar(
        &mut out,
        "fmperf_cache_misses_total",
        "counter",
        "Artifact cache lookups that missed.",
        shared.cache.misses(),
    );
    push_scalar(
        &mut out,
        "fmperf_cache_evictions_total",
        "counter",
        "Artifact cache entries evicted under capacity pressure.",
        shared.cache.evictions(),
    );
    push_scalar(
        &mut out,
        "fmperf_cache_entries",
        "gauge",
        "Artifacts resident in the cache.",
        shared.cache.len() as u64,
    );
    push_scalar(
        &mut out,
        "fmperf_cache_bytes",
        "gauge",
        "Approximate resident bytes of cached artifacts.",
        shared.cache.bytes() as u64,
    );
    push_scalar(
        &mut out,
        "fmperf_cache_capacity_bytes",
        "gauge",
        "Configured artifact cache capacity in bytes.",
        shared.cache.capacity_bytes() as u64,
    );
    let entries = shared.cache.entries();
    let entry_labels = |e: &crate::cache::CacheEntryInfo| {
        format!(
            "hash=\"{}\",policy=\"{}\",unmonitored_known=\"{}\"",
            escape_prometheus_label(&e.key.hash),
            if e.key.policy_any { "any" } else { "all" },
            e.key.unmonitored_known
        )
    };
    push_family(
        &mut out,
        "fmperf_cache_entry_age_seconds",
        "gauge",
        "Seconds since each cached artifact was (re)inserted.",
    );
    for e in &entries {
        out.push_str(&format!(
            "fmperf_cache_entry_age_seconds{{{}}} {}\n",
            entry_labels(e),
            e.age_seconds
        ));
    }
    push_family(
        &mut out,
        "fmperf_cache_entry_bytes",
        "gauge",
        "Approximate resident bytes of each cached artifact.",
    );
    for e in &entries {
        out.push_str(&format!(
            "fmperf_cache_entry_bytes{{{}}} {}\n",
            entry_labels(e),
            e.bytes
        ));
    }
    push_family(
        &mut out,
        "fmperf_engine_counter",
        "counter",
        "Engine work counters (states, nodes, samples, ...).",
    );
    for (counter, value) in shared.metrics.counters() {
        out.push_str(&format!(
            "fmperf_engine_counter{{name=\"{}\"}} {value}\n",
            escape_prometheus_label(counter.name())
        ));
    }
    let phases = shared.metrics.phases();
    push_family(
        &mut out,
        "fmperf_phase_nanos",
        "counter",
        "Cumulative nanoseconds spent in each engine phase.",
    );
    for (phase, nanos, _) in &phases {
        out.push_str(&format!(
            "fmperf_phase_nanos{{phase=\"{}\"}} {nanos}\n",
            escape_prometheus_label(phase.name())
        ));
    }
    push_family(
        &mut out,
        "fmperf_phase_spans",
        "counter",
        "Spans recorded for each engine phase.",
    );
    for (phase, _, span_count) in &phases {
        out.push_str(&format!(
            "fmperf_phase_spans{{phase=\"{}\"}} {span_count}\n",
            escape_prometheus_label(phase.name())
        ));
    }
    let snaps = shared.obs.endpoint_snapshots();
    push_family(
        &mut out,
        "fmperf_request_duration_ns",
        "histogram",
        "End-to-end request latency including queue wait, by endpoint, nanoseconds.",
    );
    for (endpoint, latency, _, _) in &snaps {
        render_prometheus_histogram(
            &mut out,
            "fmperf_request_duration_ns",
            &format!("endpoint=\"{}\"", endpoint.name()),
            latency,
        );
    }
    push_family(
        &mut out,
        "fmperf_request_queue_wait_ns",
        "histogram",
        "Admission-queue wait before a worker picked the request up, by endpoint, nanoseconds.",
    );
    for (endpoint, _, queue_wait, _) in &snaps {
        render_prometheus_histogram(
            &mut out,
            "fmperf_request_queue_wait_ns",
            &format!("endpoint=\"{}\"", endpoint.name()),
            queue_wait,
        );
    }
    push_family(
        &mut out,
        "fmperf_request_body_bytes",
        "histogram",
        "Request body sizes by endpoint, bytes.",
    );
    for (endpoint, _, _, body) in &snaps {
        render_prometheus_histogram(
            &mut out,
            "fmperf_request_body_bytes",
            &format!("endpoint=\"{}\"", endpoint.name()),
            body,
        );
    }
    push_family(
        &mut out,
        "fmperf_compile_ns",
        "histogram",
        "MTBDD compile time on cold requests (successful or refused), nanoseconds.",
    );
    render_prometheus_histogram(
        &mut out,
        "fmperf_compile_ns",
        "",
        &shared.obs.compile_snapshot(),
    );
    push_family(
        &mut out,
        "fmperf_eval_ns",
        "histogram",
        "Evaluation time split by artifact-cache disposition, nanoseconds.",
    );
    render_prometheus_histogram(
        &mut out,
        "fmperf_eval_ns",
        "cache=\"hit\"",
        &shared.obs.eval_snapshot(true),
    );
    render_prometheus_histogram(
        &mut out,
        "fmperf_eval_ns",
        "cache=\"miss\"",
        &shared.obs.eval_snapshot(false),
    );
    out
}

/// `GET /debug/slow`: the N slowest requests, each with its span tree.
fn debug_slow(shared: &Shared, id: u64) -> Response {
    let rows: Vec<String> = shared
        .obs
        .slowest()
        .iter()
        .map(|entry| {
            let rec = &entry.record;
            let spans: Vec<String> = entry
                .spans
                .iter()
                .map(|s| {
                    format!(
                        "{{\"phase\": \"{}\", \"start_us\": {}, \"dur_us\": {}, \
                         \"tid\": {}, \"depth\": {}}}",
                        s.phase.name(),
                        s.start_us,
                        s.dur_us,
                        s.tid,
                        s.depth
                    )
                })
                .collect();
            let engine = rec
                .engine
                .as_deref()
                .map_or("null".to_string(), |e| format!("\"{}\"", json_escape(e)));
            let cache = rec.cache.map_or("null".to_string(), |c| format!("\"{c}\""));
            format!(
                "{{\"id\": {}, \"method\": \"{}\", \"path\": \"{}\", \"endpoint\": \"{}\", \
                 \"status\": {}, \"disposition\": \"{}\", \"engine\": {engine}, \
                 \"cache\": {cache}, \"timings\": {}, \"spans\": [{}]}}",
                rec.id,
                json_escape(&rec.method),
                json_escape(&rec.path),
                rec.endpoint.name(),
                rec.status,
                rec.disposition,
                rec.timings.json(),
                spans.join(", ")
            )
        })
        .collect();
    Response::json(
        200,
        "OK",
        format!(
            "{{\"schema\": \"{DEBUG_SCHEMA}\", \"endpoint\": \"debug-slow\", \
             \"request_id\": {id}, \"keep\": {}, \"slowest\": [{}]}}",
            shared.config.slow_keep,
            rows.join(", ")
        ),
    )
}

/// `GET /debug/cache`: the artifact cache, entry by entry.
fn debug_cache(shared: &Shared, id: u64) -> Response {
    let rows: Vec<String> = shared
        .cache
        .entries()
        .iter()
        .map(|e| {
            format!(
                "{{\"hash\": \"{}\", \"policy\": \"{}\", \"unmonitored_known\": {}, \
                 \"bytes\": {}, \"age_seconds\": {}, \"last_used\": {}}}",
                json_escape(&e.key.hash),
                if e.key.policy_any { "any" } else { "all" },
                e.key.unmonitored_known,
                e.bytes,
                e.age_seconds,
                e.last_used
            )
        })
        .collect();
    Response::json(
        200,
        "OK",
        format!(
            "{{\"schema\": \"{DEBUG_SCHEMA}\", \"endpoint\": \"debug-cache\", \
             \"request_id\": {id}, \"capacity_bytes\": {}, \"resident_bytes\": {}, \
             \"hits\": {}, \"misses\": {}, \"evictions\": {}, \"entries\": [{}]}}",
            shared.cache.capacity_bytes(),
            shared.cache.bytes(),
            shared.cache.hits(),
            shared.cache.misses(),
            shared.cache.evictions(),
            rows.join(", ")
        ),
    )
}

/// Opens the request body as a model session (bounded parse + lint
/// preflight), mapping failures to a `400`.
fn open_session(
    request: &Request,
    endpoint: &str,
    shared: &Shared,
    recorder: &dyn Recorder,
    id: u64,
) -> Result<ModelSession, Response> {
    let src = std::str::from_utf8(&request.body).map_err(|_| {
        error_response(
            400,
            "Bad Request",
            endpoint,
            "body is not valid UTF-8",
            &[],
            id,
        )
    })?;
    let limits = ParseLimits {
        max_bytes: shared.config.max_body_bytes,
        ..ParseLimits::default()
    };
    ModelSession::open_untrusted(src, &limits, Some(recorder)).map_err(|e| {
        let what = match &e {
            SessionError::Syntax(_) => "model failed to parse",
            SessionError::Lint(_) => "model failed lint preflight",
        };
        error_response(400, "Bad Request", endpoint, what, &e.diagnostics(), id)
    })
}

/// Parses the shared analysis knobs from the query string.
fn analyze_params(
    request: &Request,
    endpoint: &str,
    shared: &Shared,
    id: u64,
) -> Result<AnalyzeParams, Response> {
    let mut params = AnalyzeParams::default();
    let bad = |name: &str, value: &str| {
        error_response(
            400,
            "Bad Request",
            endpoint,
            &format!("bad query parameter {name}={value}"),
            &[],
            id,
        )
    };
    params.budget.deadline = Some(Duration::from_millis(shared.config.default_budget_ms));
    for (key, value) in &request.query {
        match key.as_str() {
            "budget_ms" => {
                let ms: u64 = value.parse().map_err(|_| bad(key, value))?;
                params.budget.deadline = Some(Duration::from_millis(ms));
            }
            "budget_states" => {
                params.budget.max_states = value.parse().map_err(|_| bad(key, value))?;
            }
            "budget_nodes" => {
                params.budget.max_mtbdd_nodes = value.parse().map_err(|_| bad(key, value))?;
            }
            "budget_memo" => {
                params.budget.max_memo_entries = value.parse().map_err(|_| bad(key, value))?;
            }
            "samples" => params.samples = value.parse().map_err(|_| bad(key, value))?,
            "seed" => params.seed = value.parse().map_err(|_| bad(key, value))?,
            "threads" => {
                let t: usize = value.parse().map_err(|_| bad(key, value))?;
                params.threads = t.clamp(1, 16);
            }
            "policy" => {
                params.policy = match value.as_str() {
                    "any" => KnowPolicy::AnyFailedComponent,
                    "all" => KnowPolicy::AllFailedComponents,
                    _ => return Err(bad(key, value)),
                };
            }
            "unmonitored_known" => {
                params.unmonitored_known = match value.as_str() {
                    "true" | "1" => true,
                    "false" | "0" => false,
                    _ => return Err(bad(key, value)),
                };
            }
            // Endpoint-specific keys are parsed by their endpoint.
            _ => {}
        }
    }
    Ok(params)
}

/// The `estimate` JSON object for a sampled result.
fn estimate_json(est: &EstimateInfo) -> String {
    let is = est.is.map_or(String::new(), |is| {
        format!(
            ", \"ess\": {}, \"weight_cv\": {}, \"mean_weight\": {}, \"bias\": {}, \"mixture\": {}",
            is.ess, is.weight_cv, is.mean_weight, is.bias, is.mixture
        )
    });
    format!(
        "{{\"failed_mean\": {}, \"failed_half_width\": {}, \"batches\": {}, \
         \"samples\": {}, \"seed\": {}{is}}}",
        est.failed_mean, est.failed_half_width, est.batches, est.samples, est.seed
    )
}

/// The `descents` JSON array shared by analyze responses.
fn descents_json(descents: &[(String, String)]) -> String {
    let rows: Vec<String> = descents
        .iter()
        .map(|(engine, reason)| {
            format!(
                "{{\"engine\": \"{}\", \"reason\": \"{}\"}}",
                json_escape(engine),
                json_escape(reason)
            )
        })
        .collect();
    format!("[{}]", rows.join(", "))
}

/// `POST /v1/analyze`.
fn analyze_endpoint(
    request: &Request,
    shared: &Shared,
    rec: &mut RequestRecord,
    recorder: &dyn Recorder,
) -> Response {
    let start = Instant::now();
    let session = match open_session(request, "analyze", shared, recorder, rec.id) {
        Ok(s) => s,
        Err(r) => return r,
    };
    rec.timings.parse_ns = start.elapsed().as_nanos() as u64;
    rec.model_hash = Some(session.hash().to_string());
    let params = match analyze_params(request, "analyze", shared, rec.id) {
        Ok(p) => p,
        Err(r) => return r,
    };
    let key = CacheKey::new(session.hash(), params.policy, params.unmonitored_known);
    let cached = shared.cache.get(&key);
    let outcome = match analyze_model(session.model(), &params, cached, Some(recorder)) {
        Ok(o) => o,
        Err(e) => return error_response(422, "Unprocessable Entity", "analyze", &e, &[], rec.id),
    };
    if let Some(compiled) = &outcome.compiled {
        shared.cache.insert(key, Arc::clone(compiled));
    }
    if outcome.estimate.is_some() {
        shared.stats.degraded.fetch_add(1, Ordering::Relaxed);
    }
    rec.engine = Some(outcome.engine.clone());
    rec.cache = Some(outcome.cache.name());
    rec.descents = outcome.descents.len() as u64;
    rec.timings.compile_ns = outcome.compile_ns;
    rec.timings.eval_ns = outcome.eval_ns;
    rec.timings.total_ns = rec.timings.queue_wait_ns + start.elapsed().as_nanos() as u64;
    let configurations: Vec<String> = outcome
        .configurations
        .iter()
        .map(|(label, p)| {
            format!(
                "{{\"label\": \"{}\", \"probability\": {p}}}",
                json_escape(label)
            )
        })
        .collect();
    let mut body = format!(
        "{{\"schema\": \"{SCHEMA}\", \"endpoint\": \"analyze\", \"request_id\": {}, \
         \"model_hash\": \"{}\", \"cache\": \"{}\", \"engine\": \"{}\", \"descents\": {}, \
         \"failed\": {}, \"states\": {}, \"components\": {}, \"fallible\": {}, \"warnings\": {}",
        rec.id,
        session.hash(),
        outcome.cache.name(),
        json_escape(&outcome.engine),
        descents_json(&outcome.descents),
        outcome.failed,
        outcome.states,
        outcome.components,
        outcome.fallible,
        session.warnings(),
    );
    if let Some(est) = &outcome.estimate {
        body.push_str(&format!(", \"estimate\": {}", estimate_json(est)));
    }
    if let Some(reward) = outcome.reward {
        body.push_str(&format!(", \"reward\": {reward}"));
    }
    if let Some(err) = &outcome.reward_error {
        body.push_str(&format!(", \"reward_error\": \"{}\"", json_escape(err)));
    }
    body.push_str(&format!(
        ", \"configurations\": [{}], \"timings\": {}, \"elapsed_ms\": {}}}",
        configurations.join(", "),
        rec.timings.json(),
        start.elapsed().as_millis()
    ));
    Response::json(200, "OK", body)
}

/// `POST /v1/sweep`.
fn sweep_endpoint(
    request: &Request,
    shared: &Shared,
    rec: &mut RequestRecord,
    recorder: &dyn Recorder,
) -> Response {
    let start = Instant::now();
    let session = match open_session(request, "sweep", shared, recorder, rec.id) {
        Ok(s) => s,
        Err(r) => return r,
    };
    rec.timings.parse_ns = start.elapsed().as_nanos() as u64;
    rec.model_hash = Some(session.hash().to_string());
    let analyze = match analyze_params(request, "sweep", shared, rec.id) {
        Ok(p) => p,
        Err(r) => return r,
    };
    let Some(component) = request.query.get("component").cloned() else {
        return error_response(
            400,
            "Bad Request",
            "sweep",
            "missing required query parameter `component`",
            &[],
            rec.id,
        );
    };
    let get_f64 = |name: &str, default: f64| -> Result<f64, Response> {
        match request.query.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| {
                error_response(
                    400,
                    "Bad Request",
                    "sweep",
                    &format!("bad query parameter {name}={v}"),
                    &[],
                    rec.id,
                )
            }),
        }
    };
    let from = match get_f64("from", 0.5) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let to = match get_f64("to", 1.0) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let steps: usize = match request.query.get("steps") {
        None => 11,
        Some(v) => match v.parse::<usize>() {
            Ok(s) => s.clamp(2, 10_000),
            Err(_) => {
                return error_response(
                    400,
                    "Bad Request",
                    "sweep",
                    &format!("bad query parameter steps={v}"),
                    &[],
                    rec.id,
                )
            }
        },
    };
    let params = SweepParams {
        component,
        from,
        to,
        steps,
        analyze,
    };
    let key = CacheKey::new(session.hash(), analyze.policy, analyze.unmonitored_known);
    let cached = shared.cache.get(&key);
    let outcome = match sweep_model(session.model(), &params, cached, Some(recorder)) {
        Ok(o) => o,
        Err(e) => return error_response(422, "Unprocessable Entity", "sweep", &e, &[], rec.id),
    };
    if let Some(compiled) = &outcome.compiled {
        shared.cache.insert(key, Arc::clone(compiled));
    }
    rec.engine = Some("mtbdd".into());
    rec.cache = Some(outcome.cache.name());
    rec.timings.compile_ns = outcome.compile_ns;
    rec.timings.eval_ns = outcome.eval_ns;
    rec.timings.total_ns = rec.timings.queue_wait_ns + start.elapsed().as_nanos() as u64;
    let points: Vec<String> = outcome
        .points
        .iter()
        .map(|(a, f)| format!("{{\"availability\": {a}, \"failed\": {f}}}"))
        .collect();
    Response::json(
        200,
        "OK",
        format!(
            "{{\"schema\": \"{SCHEMA}\", \"endpoint\": \"sweep\", \"request_id\": {}, \
             \"model_hash\": \"{}\", \"cache\": \"{}\", \"component\": \"{}\", \"nodes\": {}, \
             \"points\": [{}], \"timings\": {}, \"elapsed_ms\": {}}}",
            rec.id,
            session.hash(),
            outcome.cache.name(),
            json_escape(&params.component),
            outcome.nodes,
            points.join(", "),
            rec.timings.json(),
            start.elapsed().as_millis()
        ),
    )
}

/// `POST /v1/campaign`.
fn campaign_endpoint(
    request: &Request,
    shared: &Shared,
    rec: &mut RequestRecord,
    recorder: &dyn Recorder,
) -> Response {
    let start = Instant::now();
    let session = match open_session(request, "campaign", shared, recorder, rec.id) {
        Ok(s) => s,
        Err(r) => return r,
    };
    rec.timings.parse_ns = start.elapsed().as_nanos() as u64;
    rec.model_hash = Some(session.hash().to_string());
    let analyze = match analyze_params(request, "campaign", shared, rec.id) {
        Ok(p) => p,
        Err(r) => return r,
    };
    let pairwise = matches!(
        request.query.get("pairwise").map(String::as_str),
        Some("true" | "1")
    );
    let params = CampaignParams { pairwise, analyze };
    let outcome = match campaign_model(session.model(), &params, Some(recorder)) {
        Ok(o) => o,
        Err(e) => return error_response(422, "Unprocessable Entity", "campaign", &e, &[], rec.id),
    };
    rec.engine = Some(outcome.baseline_engine.clone());
    rec.cache = Some(CacheStatus::Bypass.name());
    rec.timings.eval_ns = outcome.eval_ns;
    rec.timings.total_ns = rec.timings.queue_wait_ns + start.elapsed().as_nanos() as u64;
    let scenarios: Vec<String> = outcome
        .scenarios
        .iter()
        .map(|s| match &s.result {
            Ok((engine, failed, coverage_loss)) => format!(
                "{{\"label\": \"{}\", \"ok\": true, \"engine\": \"{}\", \"failed\": {failed}, \
                 \"coverage_loss\": {coverage_loss}}}",
                json_escape(&s.label),
                json_escape(engine)
            ),
            Err(e) => format!(
                "{{\"label\": \"{}\", \"ok\": false, \"error\": \"{}\"}}",
                json_escape(&s.label),
                json_escape(e)
            ),
        })
        .collect();
    Response::json(
        200,
        "OK",
        format!(
            "{{\"schema\": \"{SCHEMA}\", \"endpoint\": \"campaign\", \"request_id\": {}, \
             \"model_hash\": \"{}\", \"cache\": \"{}\", \"baseline\": {{\"engine\": \"{}\", \
             \"failed\": {}}}, \"scenarios\": [{}], \"timings\": {}, \"elapsed_ms\": {}}}",
            rec.id,
            session.hash(),
            CacheStatus::Bypass.name(),
            json_escape(&outcome.baseline_engine),
            outcome.baseline_failed,
            scenarios.join(", "),
            rec.timings.json(),
            start.elapsed().as_millis()
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};

    const MODEL: &str = "processor pc cores inf\nprocessor p1 fail 0.1\n\
        users u on pc population 5 think 1.0\ntask s on p1 fail 0.1\n\
        entry eu of u\nentry es of s demand 0.2\ncall eu -> es\nreward u 1.0\n";

    fn start_test_server(threads: usize, queue_depth: usize) -> ServerHandle {
        Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            threads,
            queue_depth,
            test_routes: true,
            ..ServeConfig::default()
        })
        .expect("bind")
    }

    fn send(addr: std::net::SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(raw.as_bytes()).expect("write");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        out
    }

    fn post(addr: std::net::SocketAddr, target: &str, body: &str) -> String {
        send(
            addr,
            &format!(
                "POST {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    /// The `x-fmperf-request-id` header value of a raw response.
    fn header_id(response: &str) -> Option<u64> {
        response
            .lines()
            .find_map(|l| l.strip_prefix("x-fmperf-request-id: "))
            .and_then(|v| v.trim().parse().ok())
    }

    #[test]
    fn healthz_and_analyze_roundtrip() {
        let server = start_test_server(2, 8);
        let addr = server.local_addr();
        let health = send(addr, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(health.starts_with("HTTP/1.1 200"), "{health}");
        let reply = post(addr, "/v1/analyze", MODEL);
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
        assert!(reply.contains("\"model_hash\": \"sha256:"), "{reply}");
        assert!(reply.contains("\"cache\": \"miss\""), "{reply}");
        // Second request with the same model is a cache hit.
        let again = post(addr, "/v1/analyze", MODEL);
        assert!(again.contains("\"cache\": \"hit\""), "{again}");
        let report = server.shutdown();
        assert_eq!(report.worker_panics, 0);
        assert!(report.served >= 3);
    }

    #[test]
    fn responses_carry_request_id_and_timings() {
        let server = start_test_server(1, 8);
        let addr = server.local_addr();
        let reply = post(addr, "/v1/analyze", MODEL);
        let id = header_id(&reply).expect("request id header");
        assert!(
            reply.contains(&format!("\"request_id\": {id}")),
            "header id {id} must match the body: {reply}"
        );
        assert!(
            reply.contains("\"timings\": {\"queue_wait_ns\": "),
            "{reply}"
        );
        assert!(reply.contains("\"parse_ns\": "), "{reply}");
        assert!(reply.contains("\"compile_ns\": "), "{reply}");
        assert!(reply.contains("\"eval_ns\": "), "{reply}");
        assert!(reply.contains("\"total_ns\": "), "{reply}");
        // Errors carry ids too, and ids are monotonic.
        let err = post(addr, "/v1/analyze", "bogus\n");
        let err_id = header_id(&err).expect("error id header");
        assert!(err_id > id, "monotonic: {err_id} > {id}");
        assert!(err.contains(&format!("\"request_id\": {err_id}")), "{err}");
        server.shutdown();
    }

    #[test]
    fn bad_model_is_400_with_diagnostics() {
        let server = start_test_server(1, 8);
        let reply = post(server.local_addr(), "/v1/analyze", "bogus line\nanother\n");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        assert!(reply.contains("\"diagnostics\""), "{reply}");
        server.shutdown();
    }

    #[test]
    fn panic_route_answers_500_and_pool_survives() {
        let server = start_test_server(1, 8);
        let addr = server.local_addr();
        let reply = send(addr, "GET /v1/test/panic HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 500"), "{reply}");
        assert!(
            header_id(&reply).is_some(),
            "panic answers carry ids: {reply}"
        );
        // The single worker survived and still answers.
        let health = send(addr, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(health.starts_with("HTTP/1.1 200"), "{health}");
        let report = server.shutdown();
        assert_eq!(report.panics_caught, 1);
        assert_eq!(report.worker_panics, 0);
    }

    #[test]
    fn metrics_exposes_counters() {
        let server = start_test_server(1, 8);
        let addr = server.local_addr();
        post(addr, "/v1/analyze", MODEL);
        let metrics = send(addr, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(metrics.contains("fmperf_requests_total"), "{metrics}");
        assert!(metrics.contains("fmperf_cache_misses_total"), "{metrics}");
        assert!(
            metrics.contains("fmperf_phase_nanos{phase=\"parse\"}"),
            "{metrics}"
        );
        server.shutdown();
    }

    #[test]
    fn metrics_exposes_histograms_help_type_and_build_info() {
        let server = start_test_server(1, 8);
        let addr = server.local_addr();
        post(addr, "/v1/analyze", MODEL);
        let metrics = send(addr, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(
            metrics.contains(&format!(
                "fmperf_build_info{{version=\"{}\"}} 1",
                env!("CARGO_PKG_VERSION")
            )),
            "{metrics}"
        );
        assert!(
            metrics.contains("# HELP fmperf_requests_total "),
            "{metrics}"
        );
        assert!(
            metrics.contains("# TYPE fmperf_request_duration_ns histogram"),
            "{metrics}"
        );
        assert!(
            metrics
                .contains("fmperf_request_duration_ns_bucket{endpoint=\"analyze\",le=\"+Inf\"} 1"),
            "{metrics}"
        );
        assert!(
            metrics.contains("fmperf_request_duration_ns_count{endpoint=\"analyze\"} 1"),
            "{metrics}"
        );
        assert!(
            metrics.contains("fmperf_eval_ns_bucket{cache=\"miss\""),
            "{metrics}"
        );
        assert!(
            metrics.contains("fmperf_cache_entry_age_seconds{hash=\"sha256:"),
            "{metrics}"
        );
        server.shutdown();
    }

    #[test]
    fn hostile_cache_label_values_are_escaped() {
        // A hostile hash with quote, backslash and newline must not be
        // able to break out of its label value in the exposition text.
        let shared = Shared {
            cache: ArtifactCache::new(1 << 20),
            queue: BoundedQueue::new(1),
            metrics: MetricsRecorder::new(),
            obs: RequestObs::new(None, 4).expect("obs"),
            stats: Stats::default(),
            shutdown: AtomicBool::new(false),
            config: ServeConfig::default(),
        };
        let m = fmperf_text::parse(
            "processor pc cores inf\nprocessor p1 fail 0.1\nusers u on pc\n\
             task s on p1 fail 0.1\nentry eu of u\nentry es of s demand 0.2\ncall eu -> es\n",
        )
        .unwrap();
        let graph = fmperf_ftlqn::FaultGraph::build(&m.app).unwrap();
        let space = fmperf_mama::ComponentSpace::app_only(&m.app);
        let compiled = fmperf_core::Analysis::new(&graph, &space).compile_mtbdd();
        shared.cache.insert(
            CacheKey::new(
                "evil\"hash\\with\nnewline",
                KnowPolicy::AnyFailedComponent,
                false,
            ),
            Arc::new(compiled),
        );
        let metrics = render_metrics(&shared);
        assert!(
            metrics.contains("hash=\"evil\\\"hash\\\\with\\nnewline\""),
            "{metrics}"
        );
        assert!(
            !metrics.contains("evil\"hash"),
            "raw quote must not appear: {metrics}"
        );
    }

    #[test]
    fn debug_slow_returns_span_trees() {
        let server = start_test_server(1, 8);
        let addr = server.local_addr();
        post(addr, "/v1/analyze", MODEL);
        let reply = send(addr, "GET /debug/slow HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
        assert!(reply.contains("\"schema\": \"fmperf-debug-v1\""), "{reply}");
        assert!(reply.contains("\"endpoint\": \"debug-slow\""), "{reply}");
        assert!(reply.contains("\"path\": \"/v1/analyze\""), "{reply}");
        assert!(reply.contains("\"phase\": \"parse\""), "{reply}");
        assert!(
            reply.contains("\"timings\": {\"queue_wait_ns\": "),
            "{reply}"
        );
        server.shutdown();
    }

    #[test]
    fn debug_cache_reports_entries() {
        let server = start_test_server(1, 8);
        let addr = server.local_addr();
        post(addr, "/v1/analyze", MODEL);
        let reply = send(addr, "GET /debug/cache HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
        assert!(reply.contains("\"endpoint\": \"debug-cache\""), "{reply}");
        assert!(reply.contains("\"hash\": \"sha256:"), "{reply}");
        assert!(reply.contains("\"capacity_bytes\": "), "{reply}");
        assert!(reply.contains("\"evictions\": 0"), "{reply}");
        server.shutdown();
    }

    #[test]
    fn quitquitquit_drains() {
        let server = start_test_server(2, 8);
        let addr = server.local_addr();
        let reply = send(addr, "POST /quitquitquit HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
        let report = server.wait();
        assert_eq!(report.worker_panics, 0);
    }

    #[test]
    fn unknown_endpoint_is_404() {
        let server = start_test_server(1, 4);
        let reply = send(server.local_addr(), "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 404"), "{reply}");
        server.shutdown();
    }
}
