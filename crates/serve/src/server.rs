//! The daemon: acceptor, bounded admission queue, worker pool, routes.
//!
//! The crash-tolerance contract, in one place:
//!
//! * **Admission control** — the acceptor never queues unboundedly.
//!   When the bounded queue is full the connection is answered `503`
//!   with `Retry-After` right on the acceptor thread and dropped.
//! * **Per-request deadlines** — every analysis request carries an
//!   [`AnalysisBudget`]; overload degrades through the guarded ladder
//!   to a sampled answer with a confidence interval instead of hanging.
//! * **Panic isolation** — each request runs under `catch_unwind`; a
//!   panicking handler answers `500` and the worker loops on.  Both the
//!   artifact cache and the queue recover poisoned locks, so one bad
//!   request can never wedge the pool.
//! * **Drain** — `POST /quitquitquit` (the std-only stand-in for
//!   SIGTERM, which cannot be caught without unsafe code) stops
//!   admission; already-admitted requests complete before workers exit.

use crate::cache::{ArtifactCache, CacheKey};
use crate::http::{json_escape, read_request, HttpLimits, Request, Response};
use crate::queue::BoundedQueue;
use crate::session::{ModelSession, SessionError};
use crate::work::{
    analyze_model, campaign_model, sweep_model, AnalyzeParams, CacheStatus, CampaignParams,
    SweepParams,
};
use fmperf_core::EstimateInfo;
use fmperf_ftlqn::KnowPolicy;
use fmperf_obs::MetricsRecorder;
use fmperf_text::ParseLimits;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The response schema identifier, first field of every JSON body.
pub const SCHEMA: &str = "fmperf-serve-v1";

/// Daemon configuration (the `fmperf serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:8787` (port 0 for ephemeral).
    pub addr: String,
    /// Worker threads handling requests.
    pub threads: usize,
    /// Compiled-artifact cache capacity in MiB (0 disables).
    pub cache_mb: usize,
    /// Default per-request analysis deadline in milliseconds, used when
    /// a request carries no `budget_ms`.
    pub default_budget_ms: u64,
    /// Bounded admission queue depth; connections beyond it are shed
    /// with `503`.
    pub queue_depth: usize,
    /// Request body cap in bytes (larger bodies answer `413`).
    pub max_body_bytes: usize,
    /// Enable the `/v1/test/*` fault-injection routes (tests only).
    pub test_routes: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:8787".into(),
            threads: 4,
            cache_mb: 64,
            default_budget_ms: 2_000,
            queue_depth: 64,
            max_body_bytes: 1 << 20,
            test_routes: false,
        }
    }
}

/// Monotonic request counters, exposed on `/metrics` and summarized in
/// the [`DrainReport`].
#[derive(Debug, Default)]
struct Stats {
    requests: AtomicU64,
    shed: AtomicU64,
    panics: AtomicU64,
    client_errors: AtomicU64,
    server_errors: AtomicU64,
    degraded: AtomicU64,
}

/// State shared by the acceptor and every worker.
struct Shared {
    config: ServeConfig,
    queue: BoundedQueue<TcpStream>,
    cache: ArtifactCache,
    metrics: MetricsRecorder,
    stats: Stats,
    shutdown: AtomicBool,
}

/// What the daemon did over its lifetime, returned by
/// [`ServerHandle::shutdown`] / [`ServerHandle::wait`].
#[derive(Debug, Clone, Copy)]
pub struct DrainReport {
    /// Requests fully handled (any status).
    pub served: u64,
    /// Connections shed with `503` by admission control.
    pub shed: u64,
    /// Request handlers that panicked (each answered `500`).
    pub panics_caught: u64,
    /// Worker threads that died *outside* the per-request isolation
    /// boundary — always zero unless the isolation itself is broken.
    pub worker_panics: usize,
}

/// A running daemon; dropping the handle without calling
/// [`shutdown`](ServerHandle::shutdown) or [`wait`](ServerHandle::wait)
/// detaches the threads.
pub struct ServerHandle {
    shared: Arc<Shared>,
    local_addr: std::net::SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// The daemon entry point.
pub struct Server;

impl Server {
    /// Binds `config.addr` and starts the acceptor and worker threads.
    ///
    /// # Errors
    ///
    /// Propagates bind / configuration I/O errors; everything after a
    /// successful bind is handled internally.
    pub fn start(config: ServeConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let threads = config.threads.max(1);
        let queue_depth = config.queue_depth.max(1);
        let shared = Arc::new(Shared {
            cache: ArtifactCache::new(config.cache_mb.saturating_mul(1 << 20)),
            queue: BoundedQueue::new(queue_depth),
            metrics: MetricsRecorder::new(),
            stats: Stats::default(),
            shutdown: AtomicBool::new(false),
            config,
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("fmperf-acceptor".into())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("fmperf-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        Ok(ServerHandle {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            workers,
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Shared metrics recorder (scraped by `/metrics`).
    pub fn metrics(&self) -> &MetricsRecorder {
        &self.shared.metrics
    }

    /// Initiates drain (as `/quitquitquit` would) and waits for every
    /// in-flight request to finish.
    pub fn shutdown(mut self) -> DrainReport {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        self.join()
    }

    /// Waits for the daemon to drain on its own (after a
    /// `/quitquitquit` from a client).
    pub fn wait(mut self) -> DrainReport {
        self.join()
    }

    fn join(&mut self) -> DrainReport {
        let mut worker_panics = 0;
        if let Some(acceptor) = self.acceptor.take() {
            if acceptor.join().is_err() {
                worker_panics += 1;
            }
        }
        for worker in self.workers.drain(..) {
            if worker.join().is_err() {
                worker_panics += 1;
            }
        }
        let stats = &self.shared.stats;
        DrainReport {
            served: stats.requests.load(Ordering::Relaxed),
            shed: stats.shed.load(Ordering::Relaxed),
            panics_caught: stats.panics.load(Ordering::Relaxed),
            worker_panics,
        }
    }
}

/// Polls the nonblocking listener, admitting connections into the
/// bounded queue and shedding with `503` when it is full.
fn accept_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                // Slowloris guard: a peer that stalls mid-request gets
                // a read error, not a parked worker.
                let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
                let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
                if let Err(stream) = shared.queue.try_push(stream) {
                    shared.stats.shed.fetch_add(1, Ordering::Relaxed);
                    shed_connection(stream);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    // Stop admission; workers drain what was already accepted.
    shared.queue.close();
}

/// Answers a shed connection `503 + Retry-After` on the acceptor
/// thread.  The pending request bytes are drained (briefly, best
/// effort) first: closing a socket with unread input makes the kernel
/// RST the connection, which would destroy the very response that tells
/// the client to back off.
fn shed_connection(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut scratch = [0u8; 8 * 1024];
    let _ = io::Read::read(&mut stream, &mut scratch);
    Response::json(
        503,
        "Service Unavailable",
        format!("{{\"schema\": \"{SCHEMA}\", \"error\": \"saturated: admission queue is full\"}}"),
    )
    .with_header("retry-after", "1")
    .write_to(&mut stream);
    let _ = stream.shutdown(std::net::Shutdown::Write);
}

/// One worker: pop, handle under `catch_unwind`, answer, repeat until
/// the queue closes and drains.
fn worker_loop(shared: &Shared) {
    while let Some(mut stream) = shared.queue.pop() {
        shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        let outcome = catch_unwind(AssertUnwindSafe(|| handle_connection(&mut stream, shared)));
        if outcome.is_err() {
            shared.stats.panics.fetch_add(1, Ordering::Relaxed);
            shared.stats.server_errors.fetch_add(1, Ordering::Relaxed);
            Response::json(
                500,
                "Internal Server Error",
                format!(
                    "{{\"schema\": \"{SCHEMA}\", \"error\": \"request handler panicked; \
                     the worker pool is unaffected\"}}"
                ),
            )
            .write_to(&mut stream);
        }
    }
}

/// Reads one request and routes it; every path writes exactly one
/// response.
fn handle_connection(stream: &mut TcpStream, shared: &Shared) {
    let limits = HttpLimits {
        max_body_bytes: shared.config.max_body_bytes,
    };
    let request = match read_request(stream, &limits) {
        Ok(r) => r,
        Err(e) => {
            if let Some((status, reason)) = e.status() {
                shared.stats.client_errors.fetch_add(1, Ordering::Relaxed);
                error_response(status, reason, "http", &e.to_string(), &[]).write_to(stream);
            }
            return;
        }
    };
    let response = route(&request, shared);
    if response.status >= 500 {
        shared.stats.server_errors.fetch_add(1, Ordering::Relaxed);
    } else if response.status >= 400 {
        shared.stats.client_errors.fetch_add(1, Ordering::Relaxed);
    }
    response.write_to(stream);
}

/// An error body: `{schema, endpoint, error, diagnostics: [...]}`.
fn error_response(
    status: u16,
    reason: &'static str,
    endpoint: &str,
    error: &str,
    diagnostics: &[(usize, String)],
) -> Response {
    let diags: Vec<String> = diagnostics
        .iter()
        .map(|(line, msg)| {
            format!(
                "{{\"line\": {line}, \"message\": \"{}\"}}",
                json_escape(msg)
            )
        })
        .collect();
    Response::json(
        status,
        reason,
        format!(
            "{{\"schema\": \"{SCHEMA}\", \"endpoint\": \"{}\", \"error\": \"{}\", \
             \"diagnostics\": [{}]}}",
            json_escape(endpoint),
            json_escape(error),
            diags.join(", ")
        ),
    )
}

/// Dispatches one parsed request to its endpoint.
fn route(request: &Request, shared: &Shared) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "OK", "ok\n"),
        ("GET", "/readyz") => readyz(shared),
        ("GET", "/metrics") => Response::text(200, "OK", render_metrics(shared)),
        ("POST" | "GET", "/quitquitquit") => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.queue.close();
            Response::text(200, "OK", "draining\n")
        }
        ("POST", "/v1/analyze") => analyze_endpoint(request, shared),
        ("POST", "/v1/sweep") => sweep_endpoint(request, shared),
        ("POST", "/v1/campaign") => campaign_endpoint(request, shared),
        ("POST" | "GET", "/v1/test/panic") if shared.config.test_routes => {
            panic!("fault injection: /v1/test/panic")
        }
        ("POST" | "GET", "/v1/test/sleep") if shared.config.test_routes => {
            let ms: u64 = request
                .query
                .get("ms")
                .and_then(|v| v.parse().ok())
                .unwrap_or(100);
            std::thread::sleep(Duration::from_millis(ms.min(10_000)));
            Response::text(200, "OK", "slept\n")
        }
        (_, "/healthz" | "/readyz" | "/metrics")
        | ("GET", "/v1/analyze" | "/v1/sweep" | "/v1/campaign") => {
            error_response(405, "Method Not Allowed", "http", "method not allowed", &[])
        }
        _ => error_response(404, "Not Found", "http", "no such endpoint", &[]),
    }
}

/// `/readyz`: `503` while draining or when the admission queue is
/// nearly full (load shedding signal for balancers).
fn readyz(shared: &Shared) -> Response {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Response::text(503, "Service Unavailable", "draining\n")
            .with_header("retry-after", "1");
    }
    let depth = shared.config.queue_depth.max(1);
    if shared.queue.len() * 4 >= depth * 3 {
        return Response::text(503, "Service Unavailable", "saturated\n")
            .with_header("retry-after", "1");
    }
    Response::text(200, "OK", "ready\n")
}

/// Renders `/metrics` in Prometheus text exposition format: server
/// counters, cache state, and the engine recorder's counters/phases.
fn render_metrics(shared: &Shared) -> String {
    let stats = &shared.stats;
    let mut out = String::new();
    let mut gauge = |name: &str, value: u64| {
        out.push_str(&format!("fmperf_{name} {value}\n"));
    };
    gauge("requests_total", stats.requests.load(Ordering::Relaxed));
    gauge("shed_total", stats.shed.load(Ordering::Relaxed));
    gauge("panics_caught_total", stats.panics.load(Ordering::Relaxed));
    gauge(
        "client_errors_total",
        stats.client_errors.load(Ordering::Relaxed),
    );
    gauge(
        "server_errors_total",
        stats.server_errors.load(Ordering::Relaxed),
    );
    gauge("degraded_total", stats.degraded.load(Ordering::Relaxed));
    gauge("queue_depth", shared.queue.len() as u64);
    gauge("cache_hits_total", shared.cache.hits());
    gauge("cache_misses_total", shared.cache.misses());
    gauge("cache_entries", shared.cache.len() as u64);
    gauge("cache_bytes", shared.cache.bytes() as u64);
    for (counter, value) in shared.metrics.counters() {
        out.push_str(&format!(
            "fmperf_engine_counter{{name=\"{}\"}} {value}\n",
            counter.name()
        ));
    }
    for (phase, nanos, spans) in shared.metrics.phases() {
        out.push_str(&format!(
            "fmperf_phase_nanos{{phase=\"{}\"}} {nanos}\n",
            phase.name()
        ));
        out.push_str(&format!(
            "fmperf_phase_spans{{phase=\"{}\"}} {spans}\n",
            phase.name()
        ));
    }
    out
}

/// Opens the request body as a model session (bounded parse + lint
/// preflight), mapping failures to a `400`.
fn open_session(
    request: &Request,
    endpoint: &str,
    shared: &Shared,
) -> Result<ModelSession, Response> {
    let src = std::str::from_utf8(&request.body).map_err(|_| {
        error_response(400, "Bad Request", endpoint, "body is not valid UTF-8", &[])
    })?;
    let limits = ParseLimits {
        max_bytes: shared.config.max_body_bytes,
        ..ParseLimits::default()
    };
    ModelSession::open_untrusted(src, &limits, Some(&shared.metrics)).map_err(|e| {
        let what = match &e {
            SessionError::Syntax(_) => "model failed to parse",
            SessionError::Lint(_) => "model failed lint preflight",
        };
        error_response(400, "Bad Request", endpoint, what, &e.diagnostics())
    })
}

/// Parses the shared analysis knobs from the query string.
fn analyze_params(
    request: &Request,
    endpoint: &str,
    shared: &Shared,
) -> Result<AnalyzeParams, Response> {
    let mut params = AnalyzeParams::default();
    let bad = |name: &str, value: &str| {
        error_response(
            400,
            "Bad Request",
            endpoint,
            &format!("bad query parameter {name}={value}"),
            &[],
        )
    };
    params.budget.deadline = Some(Duration::from_millis(shared.config.default_budget_ms));
    for (key, value) in &request.query {
        match key.as_str() {
            "budget_ms" => {
                let ms: u64 = value.parse().map_err(|_| bad(key, value))?;
                params.budget.deadline = Some(Duration::from_millis(ms));
            }
            "budget_states" => {
                params.budget.max_states = value.parse().map_err(|_| bad(key, value))?;
            }
            "budget_nodes" => {
                params.budget.max_mtbdd_nodes = value.parse().map_err(|_| bad(key, value))?;
            }
            "budget_memo" => {
                params.budget.max_memo_entries = value.parse().map_err(|_| bad(key, value))?;
            }
            "samples" => params.samples = value.parse().map_err(|_| bad(key, value))?,
            "seed" => params.seed = value.parse().map_err(|_| bad(key, value))?,
            "threads" => {
                let t: usize = value.parse().map_err(|_| bad(key, value))?;
                params.threads = t.clamp(1, 16);
            }
            "policy" => {
                params.policy = match value.as_str() {
                    "any" => KnowPolicy::AnyFailedComponent,
                    "all" => KnowPolicy::AllFailedComponents,
                    _ => return Err(bad(key, value)),
                };
            }
            "unmonitored_known" => {
                params.unmonitored_known = match value.as_str() {
                    "true" | "1" => true,
                    "false" | "0" => false,
                    _ => return Err(bad(key, value)),
                };
            }
            // Endpoint-specific keys are parsed by their endpoint.
            _ => {}
        }
    }
    Ok(params)
}

/// The `estimate` JSON object for a sampled result.
fn estimate_json(est: &EstimateInfo) -> String {
    let is = est.is.map_or(String::new(), |is| {
        format!(
            ", \"ess\": {}, \"weight_cv\": {}, \"mean_weight\": {}, \"bias\": {}, \"mixture\": {}",
            is.ess, is.weight_cv, is.mean_weight, is.bias, is.mixture
        )
    });
    format!(
        "{{\"failed_mean\": {}, \"failed_half_width\": {}, \"batches\": {}, \
         \"samples\": {}, \"seed\": {}{is}}}",
        est.failed_mean, est.failed_half_width, est.batches, est.samples, est.seed
    )
}

/// The `descents` JSON array shared by analyze responses.
fn descents_json(descents: &[(String, String)]) -> String {
    let rows: Vec<String> = descents
        .iter()
        .map(|(engine, reason)| {
            format!(
                "{{\"engine\": \"{}\", \"reason\": \"{}\"}}",
                json_escape(engine),
                json_escape(reason)
            )
        })
        .collect();
    format!("[{}]", rows.join(", "))
}

/// `POST /v1/analyze`.
fn analyze_endpoint(request: &Request, shared: &Shared) -> Response {
    let start = Instant::now();
    let session = match open_session(request, "analyze", shared) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let params = match analyze_params(request, "analyze", shared) {
        Ok(p) => p,
        Err(r) => return r,
    };
    let key = CacheKey::new(session.hash(), params.policy, params.unmonitored_known);
    let cached = shared.cache.get(&key);
    let outcome = match analyze_model(session.model(), &params, cached, Some(&shared.metrics)) {
        Ok(o) => o,
        Err(e) => return error_response(422, "Unprocessable Entity", "analyze", &e, &[]),
    };
    if let Some(compiled) = &outcome.compiled {
        shared.cache.insert(key, Arc::clone(compiled));
    }
    if outcome.estimate.is_some() {
        shared.stats.degraded.fetch_add(1, Ordering::Relaxed);
    }
    let configurations: Vec<String> = outcome
        .configurations
        .iter()
        .map(|(label, p)| {
            format!(
                "{{\"label\": \"{}\", \"probability\": {p}}}",
                json_escape(label)
            )
        })
        .collect();
    let mut body = format!(
        "{{\"schema\": \"{SCHEMA}\", \"endpoint\": \"analyze\", \"model_hash\": \"{}\", \
         \"cache\": \"{}\", \"engine\": \"{}\", \"descents\": {}, \"failed\": {}, \
         \"states\": {}, \"components\": {}, \"fallible\": {}, \"warnings\": {}",
        session.hash(),
        outcome.cache.name(),
        json_escape(&outcome.engine),
        descents_json(&outcome.descents),
        outcome.failed,
        outcome.states,
        outcome.components,
        outcome.fallible,
        session.warnings(),
    );
    if let Some(est) = &outcome.estimate {
        body.push_str(&format!(", \"estimate\": {}", estimate_json(est)));
    }
    if let Some(reward) = outcome.reward {
        body.push_str(&format!(", \"reward\": {reward}"));
    }
    if let Some(err) = &outcome.reward_error {
        body.push_str(&format!(", \"reward_error\": \"{}\"", json_escape(err)));
    }
    body.push_str(&format!(
        ", \"configurations\": [{}], \"elapsed_ms\": {}}}",
        configurations.join(", "),
        start.elapsed().as_millis()
    ));
    Response::json(200, "OK", body)
}

/// `POST /v1/sweep`.
fn sweep_endpoint(request: &Request, shared: &Shared) -> Response {
    let start = Instant::now();
    let session = match open_session(request, "sweep", shared) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let analyze = match analyze_params(request, "sweep", shared) {
        Ok(p) => p,
        Err(r) => return r,
    };
    let Some(component) = request.query.get("component").cloned() else {
        return error_response(
            400,
            "Bad Request",
            "sweep",
            "missing required query parameter `component`",
            &[],
        );
    };
    let get_f64 = |name: &str, default: f64| -> Result<f64, Response> {
        match request.query.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| {
                error_response(
                    400,
                    "Bad Request",
                    "sweep",
                    &format!("bad query parameter {name}={v}"),
                    &[],
                )
            }),
        }
    };
    let from = match get_f64("from", 0.5) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let to = match get_f64("to", 1.0) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let steps: usize = match request.query.get("steps") {
        None => 11,
        Some(v) => match v.parse::<usize>() {
            Ok(s) => s.clamp(2, 10_000),
            Err(_) => {
                return error_response(
                    400,
                    "Bad Request",
                    "sweep",
                    &format!("bad query parameter steps={v}"),
                    &[],
                )
            }
        },
    };
    let params = SweepParams {
        component,
        from,
        to,
        steps,
        analyze,
    };
    let key = CacheKey::new(session.hash(), analyze.policy, analyze.unmonitored_known);
    let cached = shared.cache.get(&key);
    let outcome = match sweep_model(session.model(), &params, cached, Some(&shared.metrics)) {
        Ok(o) => o,
        Err(e) => return error_response(422, "Unprocessable Entity", "sweep", &e, &[]),
    };
    if let Some(compiled) = &outcome.compiled {
        shared.cache.insert(key, Arc::clone(compiled));
    }
    let points: Vec<String> = outcome
        .points
        .iter()
        .map(|(a, f)| format!("{{\"availability\": {a}, \"failed\": {f}}}"))
        .collect();
    Response::json(
        200,
        "OK",
        format!(
            "{{\"schema\": \"{SCHEMA}\", \"endpoint\": \"sweep\", \"model_hash\": \"{}\", \
             \"cache\": \"{}\", \"component\": \"{}\", \"nodes\": {}, \"points\": [{}], \
             \"elapsed_ms\": {}}}",
            session.hash(),
            outcome.cache.name(),
            json_escape(&params.component),
            outcome.nodes,
            points.join(", "),
            start.elapsed().as_millis()
        ),
    )
}

/// `POST /v1/campaign`.
fn campaign_endpoint(request: &Request, shared: &Shared) -> Response {
    let start = Instant::now();
    let session = match open_session(request, "campaign", shared) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let analyze = match analyze_params(request, "campaign", shared) {
        Ok(p) => p,
        Err(r) => return r,
    };
    let pairwise = matches!(
        request.query.get("pairwise").map(String::as_str),
        Some("true" | "1")
    );
    let params = CampaignParams { pairwise, analyze };
    let outcome = match campaign_model(session.model(), &params, Some(&shared.metrics)) {
        Ok(o) => o,
        Err(e) => return error_response(422, "Unprocessable Entity", "campaign", &e, &[]),
    };
    let scenarios: Vec<String> = outcome
        .scenarios
        .iter()
        .map(|s| match &s.result {
            Ok((engine, failed, coverage_loss)) => format!(
                "{{\"label\": \"{}\", \"ok\": true, \"engine\": \"{}\", \"failed\": {failed}, \
                 \"coverage_loss\": {coverage_loss}}}",
                json_escape(&s.label),
                json_escape(engine)
            ),
            Err(e) => format!(
                "{{\"label\": \"{}\", \"ok\": false, \"error\": \"{}\"}}",
                json_escape(&s.label),
                json_escape(e)
            ),
        })
        .collect();
    Response::json(
        200,
        "OK",
        format!(
            "{{\"schema\": \"{SCHEMA}\", \"endpoint\": \"campaign\", \"model_hash\": \"{}\", \
             \"cache\": \"{}\", \"baseline\": {{\"engine\": \"{}\", \"failed\": {}}}, \
             \"scenarios\": [{}], \"elapsed_ms\": {}}}",
            session.hash(),
            CacheStatus::Bypass.name(),
            json_escape(&outcome.baseline_engine),
            outcome.baseline_failed,
            scenarios.join(", "),
            start.elapsed().as_millis()
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};

    const MODEL: &str = "processor pc cores inf\nprocessor p1 fail 0.1\n\
        users u on pc population 5 think 1.0\ntask s on p1 fail 0.1\n\
        entry eu of u\nentry es of s demand 0.2\ncall eu -> es\nreward u 1.0\n";

    fn start_test_server(threads: usize, queue_depth: usize) -> ServerHandle {
        Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            threads,
            queue_depth,
            test_routes: true,
            ..ServeConfig::default()
        })
        .expect("bind")
    }

    fn send(addr: std::net::SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(raw.as_bytes()).expect("write");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        out
    }

    fn post(addr: std::net::SocketAddr, target: &str, body: &str) -> String {
        send(
            addr,
            &format!(
                "POST {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    #[test]
    fn healthz_and_analyze_roundtrip() {
        let server = start_test_server(2, 8);
        let addr = server.local_addr();
        let health = send(addr, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(health.starts_with("HTTP/1.1 200"), "{health}");
        let reply = post(addr, "/v1/analyze", MODEL);
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
        assert!(reply.contains("\"model_hash\": \"sha256:"), "{reply}");
        assert!(reply.contains("\"cache\": \"miss\""), "{reply}");
        // Second request with the same model is a cache hit.
        let again = post(addr, "/v1/analyze", MODEL);
        assert!(again.contains("\"cache\": \"hit\""), "{again}");
        let report = server.shutdown();
        assert_eq!(report.worker_panics, 0);
        assert!(report.served >= 3);
    }

    #[test]
    fn bad_model_is_400_with_diagnostics() {
        let server = start_test_server(1, 8);
        let reply = post(server.local_addr(), "/v1/analyze", "bogus line\nanother\n");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        assert!(reply.contains("\"diagnostics\""), "{reply}");
        server.shutdown();
    }

    #[test]
    fn panic_route_answers_500_and_pool_survives() {
        let server = start_test_server(1, 8);
        let addr = server.local_addr();
        let reply = send(addr, "GET /v1/test/panic HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 500"), "{reply}");
        // The single worker survived and still answers.
        let health = send(addr, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(health.starts_with("HTTP/1.1 200"), "{health}");
        let report = server.shutdown();
        assert_eq!(report.panics_caught, 1);
        assert_eq!(report.worker_panics, 0);
    }

    #[test]
    fn metrics_exposes_counters() {
        let server = start_test_server(1, 8);
        let addr = server.local_addr();
        post(addr, "/v1/analyze", MODEL);
        let metrics = send(addr, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(metrics.contains("fmperf_requests_total"), "{metrics}");
        assert!(metrics.contains("fmperf_cache_misses_total"), "{metrics}");
        assert!(
            metrics.contains("fmperf_phase_nanos{phase=\"parse\"}"),
            "{metrics}"
        );
        server.shutdown();
    }

    #[test]
    fn quitquitquit_drains() {
        let server = start_test_server(2, 8);
        let addr = server.local_addr();
        let reply = send(addr, "POST /quitquitquit HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
        let report = server.wait();
        assert_eq!(report.worker_panics, 0);
    }

    #[test]
    fn unknown_endpoint_is_404() {
        let server = start_test_server(1, 4);
        let reply = send(server.local_addr(), "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 404"), "{reply}");
        server.shutdown();
    }
}
