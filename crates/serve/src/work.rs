//! The request-level analysis drivers: budgeted analyze / sweep /
//! campaign over a [`ModelSession`](crate::session::ModelSession)'s
//! parsed model, with an optional cached [`CompiledMtbdd`] artifact.
//!
//! The daemon's cold path deliberately differs from the CLI ladder's
//! exact-first order: it tries the MTBDD compile *first* (under the
//! request's guard), because the compiled diagram is the one artifact
//! worth caching — every later analyze/sweep/what-if on the same model
//! becomes a single linear evaluation pass.  Only when the compile
//! refuses the budget does the request fall back to the full guarded
//! degradation ladder, whose bottom sampling rung never fails and
//! always carries a batch-means confidence interval.

use fmperf_core::{
    run_campaign_observed, solve_configurations, sweep, Analysis, AnalysisBudget, BudgetGuard,
    CampaignOptions, CompiledMtbdd, EstimateInfo, GuardedOptions, RewardSpec, SweepSpec,
};
use fmperf_ftlqn::{FaultGraph, KnowPolicy};
use fmperf_mama::{ComponentSpace, KnowTable};
use fmperf_obs::Recorder;
use fmperf_text::ParsedModel;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-request analysis knobs (deadline, sampling, knowledge policy).
#[derive(Debug, Clone, Copy)]
pub struct AnalyzeParams {
    /// Resource budget; the deadline is the request's end-to-end
    /// analysis deadline.
    pub budget: AnalysisBudget,
    /// Samples for the sampling rung.
    pub samples: u64,
    /// RNG seed for the sampling rung.
    pub seed: u64,
    /// Worker threads for the exact rungs.
    pub threads: usize,
    /// Skipped-alternative knowledge policy.
    pub policy: KnowPolicy,
    /// Treat unmonitored components as vacuously known.
    pub unmonitored_known: bool,
}

impl Default for AnalyzeParams {
    fn default() -> AnalyzeParams {
        AnalyzeParams {
            budget: AnalysisBudget::default(),
            samples: 100_000,
            seed: 0xF00D,
            threads: 1,
            policy: KnowPolicy::AnyFailedComponent,
            unmonitored_known: false,
        }
    }
}

/// Whether a request was answered from the compiled-artifact cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Answered by evaluating a cached compiled diagram.
    Hit,
    /// Compiled (or degraded) fresh this request.
    Miss,
    /// The endpoint does not use the cache (e.g. campaigns, which
    /// mutate the model per scenario).
    Bypass,
}

impl CacheStatus {
    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::Bypass => "bypass",
        }
    }
}

/// The outcome of one analyze request.
#[derive(Clone)]
pub struct AnalyzeOutcome {
    /// The engine that produced the distribution (stable
    /// [`EngineKind::name`](fmperf_core::EngineKind::name) string).
    pub engine: String,
    /// Ladder descents (engine name, refusal reason), in order.
    pub descents: Vec<(String, String)>,
    /// Sampling provenance iff the result is estimated.
    pub estimate: Option<EstimateInfo>,
    /// Probability that the system is failed.
    pub failed: f64,
    /// States explored (or sampled).
    pub states: u64,
    /// Total components in the state space.
    pub components: usize,
    /// Fallible components.
    pub fallible: usize,
    /// `(label, probability)` per configuration, ranked.
    pub configurations: Vec<(String, f64)>,
    /// Expected reward, when the model declares rewards and every
    /// configuration's LQN solved.
    pub reward: Option<f64>,
    /// Why the reward is missing despite declared rewards.
    pub reward_error: Option<String>,
    /// Cache disposition of this request.
    pub cache: CacheStatus,
    /// A freshly compiled artifact for the cache (set on a cold request
    /// whose MTBDD compile fit the budget).
    pub compiled: Option<Arc<CompiledMtbdd>>,
    /// Wall-clock nanoseconds spent compiling (successful *or* refused
    /// — a refused compile still charged the request deadline); zero on
    /// a cache hit.
    pub compile_ns: u64,
    /// Wall-clock nanoseconds spent evaluating: diagram pass or ladder
    /// descent, configuration ranking and the reward solve.
    pub eval_ns: u64,
}

impl std::fmt::Debug for AnalyzeOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `CompiledMtbdd` has no `Debug`; report its presence only.
        f.debug_struct("AnalyzeOutcome")
            .field("engine", &self.engine)
            .field("failed", &self.failed)
            .field("cache", &self.cache)
            .field("compiled", &self.compiled.is_some())
            .finish_non_exhaustive()
    }
}

/// Builds the per-request analysis stack (graph, space, knowledge) —
/// cheap and linear in the model, unlike the compile it guards.
fn with_stack<T>(
    m: &ParsedModel,
    params: &AnalyzeParams,
    recorder: Option<&dyn Recorder>,
    f: impl FnOnce(&Analysis<'_>, &ComponentSpace) -> T,
) -> Result<T, String> {
    let graph = FaultGraph::build(&m.app).map_err(|e| e.to_string())?;
    let has_mama = m.mama.component_count() > 0;
    let space = if has_mama {
        ComponentSpace::build(&m.app, &m.mama)
    } else {
        ComponentSpace::app_only(&m.app)
    };
    let table;
    let mut analysis = Analysis::new(&graph, &space)
        .with_policy(params.policy)
        .with_unmonitored_known(params.unmonitored_known)
        .with_threads(params.threads);
    if has_mama {
        table = KnowTable::build(&graph, &m.mama, &space);
        analysis = analysis.with_knowledge(&table);
    }
    if let Some(r) = recorder {
        analysis = analysis.with_recorder(r);
    }
    Ok(f(&analysis, &space))
}

/// The model's reward spec, if any rewards are declared.
fn reward_spec(m: &ParsedModel) -> Option<RewardSpec> {
    if m.rewards.is_empty() {
        return None;
    }
    let mut spec = RewardSpec::new();
    for &(t, w) in &m.rewards {
        spec = spec.weight(t, w);
    }
    Some(spec)
}

/// Runs one analyze request: evaluate `cached` when present, otherwise
/// compile-first-then-degrade under the request budget.
///
/// # Errors
///
/// Only structural failures (an unbuildable fault graph) error; budget
/// exhaustion degrades instead.
pub fn analyze_model(
    m: &ParsedModel,
    params: &AnalyzeParams,
    cached: Option<Arc<CompiledMtbdd>>,
    recorder: Option<&dyn Recorder>,
) -> Result<AnalyzeOutcome, String> {
    with_stack(m, params, recorder, |analysis, space| {
        let mut descents: Vec<(String, String)> = Vec::new();
        let mut estimate = None;
        let mut cache = CacheStatus::Miss;
        let mut compiled_out: Option<Arc<CompiledMtbdd>> = None;
        let mut compile_ns = 0u64;
        let eval_start;

        let (dist, engine) = if let Some(compiled) = cached {
            cache = CacheStatus::Hit;
            eval_start = Instant::now();
            (compiled.distribution(), "mtbdd".to_string())
        } else {
            let start = Instant::now();
            let guard = BudgetGuard::new(&params.budget);
            match analysis.try_compile_mtbdd_guarded(&guard) {
                Ok(compiled) => {
                    compile_ns = start.elapsed().as_nanos() as u64;
                    eval_start = Instant::now();
                    let compiled = Arc::new(compiled);
                    let dist = compiled.distribution();
                    compiled_out = Some(compiled);
                    (dist, "mtbdd".to_string())
                }
                Err(reason) => {
                    compile_ns = start.elapsed().as_nanos() as u64;
                    eval_start = Instant::now();
                    descents.push(("mtbdd".to_string(), reason.to_string()));
                    // Charge the failed compile against the request
                    // deadline before entering the ladder, so the two
                    // stages together stay within one budget.
                    let mut budget = params.budget;
                    if let Some(d) = budget.deadline {
                        budget.deadline = Some(
                            d.saturating_sub(start.elapsed())
                                .max(Duration::from_millis(1)),
                        );
                    }
                    let report = analysis.analyze_guarded(&GuardedOptions {
                        budget,
                        samples: params.samples,
                        seed: params.seed,
                        threads: params.threads,
                        ..GuardedOptions::default()
                    });
                    descents.extend(
                        report
                            .descents
                            .iter()
                            .map(|d| (d.engine.name().to_string(), d.reason.to_string())),
                    );
                    estimate = report.estimate;
                    (report.distribution, report.engine.name().to_string())
                }
            }
        };

        let configurations: Vec<(String, f64)> = dist
            .ranked()
            .iter()
            .map(|(c, p)| (c.label(&m.app), *p))
            .collect();
        let (mut reward, mut reward_error) = (None, None);
        if let Some(spec) = reward_spec(m) {
            let configs = dist.configurations();
            match solve_configurations(&m.app, &configs) {
                Ok(perfs) => {
                    reward = Some(
                        configs
                            .iter()
                            .zip(&perfs)
                            .map(|(c, p)| dist.probability(c) * spec.reward(p))
                            .sum(),
                    );
                }
                // A robustness boundary, not an error path: the
                // distribution is still the answer.
                Err(e) => reward_error = Some(e.to_string()),
            }
        }
        AnalyzeOutcome {
            engine,
            descents,
            estimate,
            failed: dist.failed_probability(),
            states: dist.states_explored(),
            components: space.len(),
            fallible: space.fallible_indices().len(),
            configurations,
            reward,
            reward_error,
            cache,
            compiled: compiled_out,
            compile_ns,
            eval_ns: eval_start.elapsed().as_nanos() as u64,
        }
    })
}

/// Per-request sweep knobs.
#[derive(Debug, Clone)]
pub struct SweepParams {
    /// The swept component's name.
    pub component: String,
    /// First availability value.
    pub from: f64,
    /// Last availability value.
    pub to: f64,
    /// Number of sweep points.
    pub steps: usize,
    /// Everything shared with analyze (budget, policy, threads).
    pub analyze: AnalyzeParams,
}

/// The outcome of one sweep request.
#[derive(Clone)]
pub struct SweepOutcome {
    /// Compiled-diagram size backing the sweep.
    pub nodes: usize,
    /// `(availability, failed probability)` per point.
    pub points: Vec<(f64, f64)>,
    /// Cache disposition of this request.
    pub cache: CacheStatus,
    /// A freshly compiled artifact for the cache.
    pub compiled: Option<Arc<CompiledMtbdd>>,
    /// Wall-clock nanoseconds spent compiling; zero on a cache hit.
    pub compile_ns: u64,
    /// Wall-clock nanoseconds spent evaluating the sweep points.
    pub eval_ns: u64,
}

impl std::fmt::Debug for SweepOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepOutcome")
            .field("nodes", &self.nodes)
            .field("points", &self.points.len())
            .field("cache", &self.cache)
            .field("compiled", &self.compiled.is_some())
            .finish_non_exhaustive()
    }
}

/// Runs one sweep request over the cached (or freshly compiled)
/// diagram.
///
/// # Errors
///
/// Unknown component names, bad bounds and budget-refused compiles are
/// all request errors — a sweep has no sampling rung to degrade to.
pub fn sweep_model(
    m: &ParsedModel,
    params: &SweepParams,
    cached: Option<Arc<CompiledMtbdd>>,
    recorder: Option<&dyn Recorder>,
) -> Result<SweepOutcome, String> {
    with_stack(m, &params.analyze, recorder, |analysis, space| {
        let component = (0..space.len())
            .find(|&ix| space.name(ix) == params.component)
            .ok_or_else(|| format!("unknown component `{}`", params.component))?;
        let compile_start = Instant::now();
        let (compiled, cache, fresh) = match cached {
            Some(c) => (c, CacheStatus::Hit, None),
            None => {
                let guard = BudgetGuard::new(&params.analyze.budget);
                let c = Arc::new(
                    analysis
                        .try_compile_mtbdd_guarded(&guard)
                        .map_err(|e| format!("compile refused the budget: {e}"))?,
                );
                (Arc::clone(&c), CacheStatus::Miss, Some(c))
            }
        };
        let compile_ns = match cache {
            CacheStatus::Hit => 0,
            _ => compile_start.elapsed().as_nanos() as u64,
        };
        let eval_start = Instant::now();
        let spec = SweepSpec {
            component,
            from: params.from,
            to: params.to,
            steps: params.steps,
            threads: params.analyze.threads,
        };
        let points = sweep(&compiled, &spec).map_err(|e| e.to_string())?;
        let failed_of = |probs: &[f64]| -> f64 {
            compiled
                .configurations()
                .iter()
                .zip(probs)
                .filter(|(c, _)| c.is_failed())
                .map(|(_, &p)| p)
                .sum()
        };
        Ok(SweepOutcome {
            nodes: compiled.node_count(),
            points: points
                .iter()
                .map(|pt| (pt.availability, failed_of(&pt.probabilities)))
                .collect(),
            cache,
            compiled: fresh,
            compile_ns,
            eval_ns: eval_start.elapsed().as_nanos() as u64,
        })
    })?
}

/// Per-request campaign knobs.
#[derive(Debug, Clone, Copy)]
pub struct CampaignParams {
    /// Also run every unordered pair of injections.
    pub pairwise: bool,
    /// Everything shared with analyze (budget, policy, threads).
    pub analyze: AnalyzeParams,
}

/// One scenario row of a campaign outcome.
#[derive(Debug, Clone)]
pub struct CampaignScenario {
    /// Injection label.
    pub label: String,
    /// Engine, failed probability and coverage loss — or the isolation
    /// boundary's error string for a scenario whose analysis blew up.
    pub result: Result<(String, f64, usize), String>,
}

/// The outcome of one campaign request.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Baseline engine name.
    pub baseline_engine: String,
    /// Baseline failed probability.
    pub baseline_failed: f64,
    /// Every injection scenario.
    pub scenarios: Vec<CampaignScenario>,
    /// Wall-clock nanoseconds running baseline + every scenario
    /// (campaigns bypass the cache, so there is no compile to split
    /// out).
    pub eval_ns: u64,
}

/// Runs one campaign request (cache bypassed: injections change the
/// model per scenario).
///
/// # Errors
///
/// Models without a management architecture, or with an unbuildable
/// fault graph, are request errors.
pub fn campaign_model(
    m: &ParsedModel,
    params: &CampaignParams,
    recorder: Option<&dyn Recorder>,
) -> Result<CampaignOutcome, String> {
    if m.mama.component_count() == 0 {
        return Err("campaign needs a model with a management architecture".into());
    }
    let graph = FaultGraph::build(&m.app).map_err(|e| e.to_string())?;
    let opts = CampaignOptions {
        guarded: GuardedOptions {
            budget: params.analyze.budget,
            samples: params.analyze.samples,
            seed: params.analyze.seed,
            threads: params.analyze.threads,
            ..GuardedOptions::default()
        },
        pairwise: params.pairwise,
        policy: params.analyze.policy,
        unmonitored_known: params.analyze.unmonitored_known,
    };
    let eval_start = Instant::now();
    let report = run_campaign_observed(
        &graph,
        &m.mama,
        reward_spec(m).as_ref(),
        &opts,
        recorder,
        None,
    );
    Ok(CampaignOutcome {
        eval_ns: eval_start.elapsed().as_nanos() as u64,
        baseline_engine: report.baseline.engine.name().to_string(),
        baseline_failed: report.baseline.failed_probability,
        scenarios: report
            .scenarios
            .iter()
            .map(|s| CampaignScenario {
                label: s.label.clone(),
                result: match &s.result {
                    Ok(a) => Ok((
                        a.engine.name().to_string(),
                        a.failed_probability,
                        a.coverage_loss(),
                    )),
                    Err(e) => Err(e.clone()),
                },
            })
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmperf_text::parse;

    const MODEL: &str = "processor pc cores inf\nprocessor p1 fail 0.1\n\
        users u on pc population 5 think 1.0\ntask s on p1 fail 0.1\n\
        entry eu of u\nentry es of s demand 0.2\ncall eu -> es\nreward u 1.0\n";

    const MANAGED: &str = "processor pc cores inf\nprocessor p1 fail 0.1\n\
        users u on pc population 5 think 1.0\ntask s on p1 fail 0.1\n\
        entry eu of u\nentry es of s demand 0.2\ncall eu -> es\n\
        mgmtproc pm fail 0.05\nmanager mgr on pm fail 0.05\n\
        watch alive s -> mgr\nwatch alive p1 -> mgr\nreward u 1.0\n";

    #[test]
    fn cold_analyze_compiles_and_returns_artifact() {
        let m = parse(MODEL).unwrap();
        let out = analyze_model(&m, &AnalyzeParams::default(), None, None).unwrap();
        assert_eq!(out.engine, "mtbdd");
        assert_eq!(out.cache, CacheStatus::Miss);
        assert!(out.compiled.is_some());
        assert!(out.reward.is_some());
        assert!((0.0..=1.0).contains(&out.failed));
        assert!(out.compile_ns > 0, "cold request attributes compile time");
        assert!(out.eval_ns > 0, "evaluation time is attributed");
    }

    #[test]
    fn cache_hit_matches_cold_result() {
        let m = parse(MANAGED).unwrap();
        let cold = analyze_model(&m, &AnalyzeParams::default(), None, None).unwrap();
        let artifact = cold.compiled.clone().unwrap();
        let hit = analyze_model(&m, &AnalyzeParams::default(), Some(artifact), None).unwrap();
        assert_eq!(hit.cache, CacheStatus::Hit);
        assert!(hit.compiled.is_none());
        assert!((hit.failed - cold.failed).abs() < 1e-12);
        assert_eq!(hit.configurations.len(), cold.configurations.len());
        assert_eq!(hit.compile_ns, 0, "a cache hit spends nothing compiling");
        assert!(hit.eval_ns > 0);
    }

    #[test]
    fn starved_budget_degrades_with_ci() {
        let m = parse(MANAGED).unwrap();
        let mut params = AnalyzeParams {
            samples: 2_000,
            ..AnalyzeParams::default()
        };
        params.budget.max_states = 1;
        params.budget.max_mtbdd_nodes = 1;
        params.budget.max_memo_entries = 1;
        params.budget.deadline = Some(Duration::from_millis(50));
        let out = analyze_model(&m, &params, None, None).unwrap();
        assert!(
            out.engine == "monte-carlo" || out.engine == "importance-sampling",
            "engine {}",
            out.engine
        );
        let est = out.estimate.expect("degraded result carries a CI");
        assert!(est.failed_half_width.is_finite());
        assert!(!out.descents.is_empty());
        assert!(out.compiled.is_none(), "degraded results are not cached");
        assert!(
            out.compile_ns > 0,
            "a refused compile still charged the deadline and is attributed"
        );
        assert!(out.eval_ns > 0, "the ladder descent counts as evaluation");
    }

    #[test]
    fn sweep_hits_cache() {
        let m = parse(MANAGED).unwrap();
        let cold = analyze_model(&m, &AnalyzeParams::default(), None, None).unwrap();
        let params = SweepParams {
            component: "p1".into(),
            from: 0.5,
            to: 1.0,
            steps: 5,
            analyze: AnalyzeParams::default(),
        };
        let out = sweep_model(&m, &params, cold.compiled.clone(), None).unwrap();
        assert_eq!(out.cache, CacheStatus::Hit);
        assert_eq!(out.points.len(), 5);
        // Failure probability decreases as availability rises.
        assert!(out.points.first().unwrap().1 >= out.points.last().unwrap().1);
    }

    #[test]
    fn sweep_unknown_component_is_a_request_error() {
        let m = parse(MANAGED).unwrap();
        let params = SweepParams {
            component: "nope".into(),
            from: 0.5,
            to: 1.0,
            steps: 3,
            analyze: AnalyzeParams::default(),
        };
        let err = sweep_model(&m, &params, None, None).unwrap_err();
        assert!(err.contains("unknown component"), "{err}");
    }

    #[test]
    fn campaign_reports_scenarios() {
        let m = parse(MANAGED).unwrap();
        let out = campaign_model(
            &m,
            &CampaignParams {
                pairwise: false,
                analyze: AnalyzeParams::default(),
            },
            None,
        )
        .unwrap();
        assert!(!out.scenarios.is_empty());
        assert!(out.scenarios.iter().all(|s| s.result.is_ok()));
    }

    #[test]
    fn campaign_needs_management() {
        let m = parse(MODEL).unwrap();
        let err = campaign_model(
            &m,
            &CampaignParams {
                pairwise: false,
                analyze: AnalyzeParams::default(),
            },
            None,
        )
        .unwrap_err();
        assert!(err.contains("management"), "{err}");
    }
}
