//! # fmperf-serve
//!
//! A crash-tolerant analysis daemon over the fmperf engines, built
//! entirely on `std::net` (the workspace is hermetic — no external
//! HTTP stack).  `fmperf serve` exposes the analyze / sweep / campaign
//! pipelines as HTTP endpoints with three robustness guarantees:
//!
//! 1. **Bounded admission** — a fixed worker pool behind a bounded
//!    queue ([`BoundedQueue`]); saturation answers `503 Retry-After`
//!    at the acceptor instead of queuing unboundedly.
//! 2. **Bounded answers** — every request carries an analysis budget
//!    and routes through the guarded degradation ladder, so an
//!    overloaded or starved request returns a degraded sampled answer
//!    with a confidence interval and full engine provenance, never a
//!    hang.
//! 3. **Panic isolation** — request handlers run under `catch_unwind`
//!    and all shared state (the [`ArtifactCache`], the queue) recovers
//!    poisoned locks, so one crashing request cannot wedge the daemon.
//!
//! The expensive artifact — a compiled, fully-owned
//! [`CompiledMtbdd`](fmperf_core::CompiledMtbdd) — is cached in a
//! byte-bounded LRU keyed by the model's *content hash* (SHA-256 over
//! the canonical serialization), shared with the CLI through
//! [`ModelSession`].
//!
//! Every request is also *observable* ([`obs`]): a monotonic request
//! id echoed in the `x-fmperf-request-id` header and JSON bodies, a
//! per-request `timings` attribution (queue wait / parse / compile /
//! eval), per-endpoint latency histograms on `/metrics`, a structured
//! JSON-lines access log, and the N slowest requests with full span
//! trees at `GET /debug/slow`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod hash;
pub mod http;
pub mod obs;
pub mod queue;
pub mod server;
pub mod session;
pub mod work;

pub use cache::{approx_artifact_bytes, ArtifactCache, CacheEntryInfo, CacheKey};
pub use hash::{sha256, sha256_hex};
pub use obs::{Endpoint, RequestObs, RequestRecord, SlowEntry, Timings};
pub use queue::BoundedQueue;
pub use server::{DrainReport, ServeConfig, Server, ServerHandle, DEBUG_SCHEMA, SCHEMA};
pub use session::{model_content_hash, ModelSession, SessionError};
pub use work::{
    analyze_model, campaign_model, sweep_model, AnalyzeOutcome, AnalyzeParams, CacheStatus,
    CampaignOutcome, CampaignParams, CampaignScenario, SweepOutcome, SweepParams,
};
