//! The shared model session: one parsed, linted, content-addressed
//! model — the pipeline stage the CLI and the daemon have in common.
//!
//! A session is source text taken through parse → lint preflight, plus
//! the model's stable content hash.  The hash is computed over the
//! *canonical* serialization ([`fmperf_text::write_model`]), so two
//! sources differing only in whitespace, comments or option order map
//! to the same cache key and the same `model_hash` in reports.

use crate::hash::sha256_hex;
use fmperf_ftlqn::{FtTaskId, FtlqnModel};
use fmperf_lint::{Diagnostic, Severity};
use fmperf_mama::MamaModel;
use fmperf_obs::{Phase, Recorder, Span};
use fmperf_text::{
    parse_bounded, parse_lenient, write_model, ParseError, ParseLimits, ParsedModel,
};

/// The stable content hash of a model: `sha256:` over the canonical
/// [`write_model`] serialization (whitespace- and comment-insensitive).
pub fn model_content_hash(
    app: &FtlqnModel,
    mama: &MamaModel,
    rewards: &[(FtTaskId, f64)],
) -> String {
    format!(
        "sha256:{}",
        sha256_hex(write_model(app, mama, rewards).as_bytes())
    )
}

/// Why a source text failed to become a [`ModelSession`].
#[derive(Debug)]
pub enum SessionError {
    /// Syntax or unresolved-reference errors (possibly several, from
    /// the bounded parser's error budget).
    Syntax(Vec<ParseError>),
    /// The model parsed but lint preflight found error-level
    /// diagnostics; all diagnostics (any severity) are included.
    Lint(Vec<Diagnostic>),
}

impl SessionError {
    /// Every problem as a `(line, message)` pair, for rendering.
    pub fn diagnostics(&self) -> Vec<(usize, String)> {
        match self {
            SessionError::Syntax(errs) => {
                errs.iter().map(|e| (e.line, e.message.clone())).collect()
            }
            SessionError::Lint(diags) => diags
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .map(|d| (d.line.unwrap_or(0), format!("{}: {}", d.code, d.message)))
                .collect(),
        }
    }
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, (line, msg)) in self.diagnostics().iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            if *line == 0 {
                write!(f, "{msg}")?;
            } else {
                write!(f, "line {line}: {msg}")?;
            }
        }
        Ok(())
    }
}

impl std::error::Error for SessionError {}

/// A parsed, lint-checked, content-addressed model ready for analysis.
#[derive(Debug, Clone)]
pub struct ModelSession {
    model: ParsedModel,
    hash: String,
    diagnostics: Vec<Diagnostic>,
}

impl ModelSession {
    /// Opens a session from trusted source text (CLI path): plain
    /// [`parse_lenient`], failing hard on the first syntax error.
    ///
    /// # Errors
    ///
    /// [`SessionError::Syntax`] on a parse failure,
    /// [`SessionError::Lint`] when preflight finds error-level
    /// diagnostics.
    pub fn open(src: &str) -> Result<ModelSession, SessionError> {
        Self::open_observed(src, None)
    }

    /// [`open`](ModelSession::open) with parse / lint-preflight phases
    /// recorded on `recorder`.
    ///
    /// # Errors
    ///
    /// See [`open`](ModelSession::open).
    pub fn open_observed(
        src: &str,
        recorder: Option<&dyn Recorder>,
    ) -> Result<ModelSession, SessionError> {
        let lenient = {
            let _s = Span::enter(recorder, Phase::Parse);
            parse_lenient(src).map_err(|e| SessionError::Syntax(vec![e]))?
        };
        Self::finish(lenient, recorder)
    }

    /// Opens a session from *untrusted* source text (network path):
    /// size caps and an error budget via
    /// [`parse_bounded`], so a hostile body yields a bounded diagnostic
    /// list instead of unbounded memory or a panic.
    ///
    /// # Errors
    ///
    /// See [`open`](ModelSession::open); `Syntax` may carry several
    /// collected errors.
    pub fn open_untrusted(
        src: &str,
        limits: &ParseLimits,
        recorder: Option<&dyn Recorder>,
    ) -> Result<ModelSession, SessionError> {
        let lenient = {
            let _s = Span::enter(recorder, Phase::Parse);
            parse_bounded(src, limits).map_err(SessionError::Syntax)?
        };
        Self::finish(lenient, recorder)
    }

    fn finish(
        lenient: fmperf_text::LenientParse,
        recorder: Option<&dyn Recorder>,
    ) -> Result<ModelSession, SessionError> {
        let diagnostics = {
            let _s = Span::enter(recorder, Phase::LintPreflight);
            fmperf_lint::lint(&lenient)
        };
        if fmperf_lint::count(&diagnostics, Severity::Error) > 0 {
            return Err(SessionError::Lint(diagnostics));
        }
        let model = lenient.model;
        let hash = model_content_hash(&model.app, &model.mama, &model.rewards);
        Ok(ModelSession {
            model,
            hash,
            diagnostics,
        })
    }

    /// The parsed model.
    pub fn model(&self) -> &ParsedModel {
        &self.model
    }

    /// The stable content hash (`sha256:<hex>` over the canonical
    /// serialization) — the cache key and the `model_hash` report
    /// field.
    pub fn hash(&self) -> &str {
        &self.hash
    }

    /// Every lint diagnostic from preflight (warnings and notes; a
    /// session with error-level diagnostics never opens).
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of warning-level preflight diagnostics.
    pub fn warnings(&self) -> usize {
        fmperf_lint::count(&self.diagnostics, Severity::Warning)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODEL: &str = "processor pc cores inf\nprocessor p1 fail 0.1\n\
        users u on pc population 5 think 1.0\ntask s on p1 fail 0.1\n\
        entry eu of u\nentry es of s demand 0.2\ncall eu -> es\nreward u 1.0\n";

    #[test]
    fn open_produces_stable_hash() {
        let a = ModelSession::open(MODEL).unwrap();
        // Same model, different whitespace and comments.
        let noisy = format!("# a comment\n\n{}", MODEL.replace(' ', "  "));
        let b = ModelSession::open(&noisy).unwrap();
        assert_eq!(a.hash(), b.hash());
        assert!(a.hash().starts_with("sha256:"), "{}", a.hash());
        assert_eq!(a.hash().len(), "sha256:".len() + 64);
    }

    #[test]
    fn different_models_hash_differently() {
        let a = ModelSession::open(MODEL).unwrap();
        let b = ModelSession::open(&MODEL.replace("fail 0.1", "fail 0.2")).unwrap();
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn syntax_error_reported() {
        let err = ModelSession::open("frobnicate\n").unwrap_err();
        match err {
            SessionError::Syntax(errs) => assert_eq!(errs.len(), 1),
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn untrusted_collects_errors() {
        let err = ModelSession::open_untrusted(
            "processor p\nbogus a\nbogus b\n",
            &ParseLimits::default(),
            None,
        )
        .unwrap_err();
        match err {
            SessionError::Syntax(errs) => assert_eq!(errs.len(), 2),
            other => panic!("expected syntax errors, got {other:?}"),
        }
    }

    #[test]
    fn untrusted_rejects_oversized() {
        let limits = ParseLimits {
            max_bytes: 8,
            ..ParseLimits::default()
        };
        let err = ModelSession::open_untrusted(MODEL, &limits, None).unwrap_err();
        assert!(err.to_string().contains("too large"), "{err}");
    }
}
