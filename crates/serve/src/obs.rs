//! Request-level observability for the daemon: latency histograms,
//! structured JSON-lines access logging, and per-request budget
//! attribution.
//!
//! PR 9 made the daemon crash-tolerant; this layer makes it
//! *operable*.  Three pieces, all lock-light on the request path:
//!
//! * **Histograms** — per-endpoint request latency, queue wait and
//!   body size, plus the compile-vs-eval split keyed by cache
//!   disposition, all on the sharded log2 [`Histogram`] from
//!   `fmperf-obs`.  Scraped from `/metrics` in Prometheus histogram
//!   exposition format.
//! * **Access log** — one JSON line per request (id, method, path,
//!   status, model hash, engine, degradation rung, cache and
//!   shed/drain disposition, and the full nanosecond timing
//!   breakdown), written to a file or stdout and flushed per line so a
//!   crash loses nothing.  The monotonic request id in each line is
//!   echoed in the `x-fmperf-request-id` response header and in every
//!   JSON body, so one grep joins a client-observed response to its
//!   server-side record.
//! * **Slow-request ring** — the N slowest requests the daemon has
//!   seen, each with its full span tree (captured by a per-request
//!   `TraceRecorder` teed into the shared metrics recorder), dumped on
//!   demand at `GET /debug/slow` without restarting the daemon.

use fmperf_obs::{Histogram, TraceEvent};
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::http::json_escape;

/// The endpoint classes tracked with separate histogram series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/analyze`.
    Analyze,
    /// `POST /v1/sweep`.
    Sweep,
    /// `POST /v1/campaign`.
    Campaign,
    /// Operational endpoints: health, readiness, metrics, debug,
    /// drain, test routes.
    Ops,
    /// Unknown paths and transport-level (`http`) rejections.
    Other,
}

impl Endpoint {
    /// Number of endpoint classes.
    pub const COUNT: usize = 5;

    /// Every endpoint class, in declaration order.
    pub const ALL: [Endpoint; Endpoint::COUNT] = [
        Endpoint::Analyze,
        Endpoint::Sweep,
        Endpoint::Campaign,
        Endpoint::Ops,
        Endpoint::Other,
    ];

    /// Stable label used in metric series and access-log lines.
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::Analyze => "analyze",
            Endpoint::Sweep => "sweep",
            Endpoint::Campaign => "campaign",
            Endpoint::Ops => "ops",
            Endpoint::Other => "other",
        }
    }

    /// Classifies a request path.
    pub fn classify(path: &str) -> Endpoint {
        match path {
            "/v1/analyze" => Endpoint::Analyze,
            "/v1/sweep" => Endpoint::Sweep,
            "/v1/campaign" => Endpoint::Campaign,
            "/healthz" | "/readyz" | "/metrics" | "/quitquitquit" | "/debug/slow"
            | "/debug/cache" => Endpoint::Ops,
            p if p.starts_with("/v1/test/") => Endpoint::Ops,
            _ => Endpoint::Other,
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// The per-request attribution breakdown, in wall-clock nanoseconds.
/// Every field the daemon reports in the response `timings` object and
/// in the access log comes from here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Timings {
    /// Time spent waiting in the admission queue before a worker
    /// picked the connection up.
    pub queue_wait_ns: u64,
    /// Parse + lint-preflight time for the posted model.
    pub parse_ns: u64,
    /// MTBDD compile time (successful or refused; zero on a cache
    /// hit).
    pub compile_ns: u64,
    /// Evaluation time: diagram pass, ladder descent or campaign run,
    /// plus configuration ranking and the reward solve.
    pub eval_ns: u64,
    /// End-to-end request time including the queue wait.
    pub total_ns: u64,
}

impl Timings {
    /// The `timings` JSON object embedded in responses and log lines.
    pub fn json(&self) -> String {
        format!(
            "{{\"queue_wait_ns\": {}, \"parse_ns\": {}, \"compile_ns\": {}, \
             \"eval_ns\": {}, \"total_ns\": {}}}",
            self.queue_wait_ns, self.parse_ns, self.compile_ns, self.eval_ns, self.total_ns
        )
    }
}

/// What one handled request looked like, accumulated while routing and
/// consumed by [`RequestObs::observe`].
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// Monotonic request id (also the `x-fmperf-request-id` header).
    pub id: u64,
    /// Request method.
    pub method: String,
    /// Request path.
    pub path: String,
    /// Endpoint class.
    pub endpoint: Endpoint,
    /// Response status.
    pub status: u16,
    /// Request body size in bytes.
    pub body_bytes: u64,
    /// Content hash of the posted model, once parsed.
    pub model_hash: Option<String>,
    /// The engine that answered — the request's final degradation
    /// rung.
    pub engine: Option<String>,
    /// Cache disposition (`hit`/`miss`/`bypass`), when the endpoint
    /// uses the artifact cache.
    pub cache: Option<&'static str>,
    /// Ladder descents taken (0 = the first rung answered).
    pub descents: u64,
    /// How the request left the daemon: `ok`, `drain` (completed while
    /// draining), `shed` (admission control) or `panic` (isolation
    /// boundary).
    pub disposition: &'static str,
    /// The attribution breakdown.
    pub timings: Timings,
}

impl RequestRecord {
    /// A fresh record for an admitted request.
    pub fn new(id: u64, queue_wait_ns: u64) -> RequestRecord {
        RequestRecord {
            id,
            method: String::new(),
            path: String::new(),
            endpoint: Endpoint::Other,
            status: 0,
            body_bytes: 0,
            model_hash: None,
            engine: None,
            cache: None,
            descents: 0,
            disposition: "ok",
            timings: Timings {
                queue_wait_ns,
                ..Timings::default()
            },
        }
    }

    /// The access-log line (no trailing newline): one flat JSON object
    /// per request.
    pub fn access_line(&self) -> String {
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mut line = format!(
            "{{\"ts_ms\": {ts_ms}, \"id\": {}, \"method\": \"{}\", \"path\": \"{}\", \
             \"endpoint\": \"{}\", \"status\": {}, \"disposition\": \"{}\", \
             \"body_bytes\": {}",
            self.id,
            json_escape(&self.method),
            json_escape(&self.path),
            self.endpoint.name(),
            self.status,
            self.disposition,
            self.body_bytes,
        );
        if let Some(hash) = &self.model_hash {
            line.push_str(&format!(", \"model_hash\": \"{}\"", json_escape(hash)));
        }
        if let Some(engine) = &self.engine {
            line.push_str(&format!(", \"engine\": \"{}\"", json_escape(engine)));
            line.push_str(&format!(", \"descents\": {}", self.descents));
        }
        if let Some(cache) = self.cache {
            line.push_str(&format!(", \"cache\": \"{cache}\""));
        }
        line.push_str(&format!(
            ", \"queue_wait_ns\": {}, \"parse_ns\": {}, \"compile_ns\": {}, \
             \"eval_ns\": {}, \"total_ns\": {}}}",
            self.timings.queue_wait_ns,
            self.timings.parse_ns,
            self.timings.compile_ns,
            self.timings.eval_ns,
            self.timings.total_ns,
        ));
        line
    }
}

/// Where access-log lines go.
enum AccessSink {
    Stdout,
    File(Mutex<std::fs::File>),
}

/// One entry of the slow-request ring: the request record plus its
/// span tree.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    /// The request's access record.
    pub record: RequestRecord,
    /// The request's span tree, as captured by its per-request trace
    /// recorder.
    pub spans: Vec<TraceEvent>,
}

/// The request-observability state shared by the acceptor and every
/// worker; see the module docs.
pub struct RequestObs {
    next_id: AtomicU64,
    latency: Vec<Histogram>,
    queue_wait: Vec<Histogram>,
    body_bytes: Vec<Histogram>,
    compile_ns: Histogram,
    eval_hit_ns: Histogram,
    eval_miss_ns: Histogram,
    access: Option<AccessSink>,
    lines_logged: AtomicU64,
    slow: Mutex<Vec<SlowEntry>>,
    slow_keep: usize,
}

impl RequestObs {
    /// Builds the observability state.  `access_log` is `None` (no
    /// log), `Some("-")` (stdout) or a file path opened for append;
    /// `slow_keep` bounds the slow-request ring.
    ///
    /// # Errors
    ///
    /// Propagates the access-log file open failure (the daemon should
    /// refuse to start over a misconfigured log path, not silently
    /// drop its audit trail).
    pub fn new(access_log: Option<&str>, slow_keep: usize) -> std::io::Result<RequestObs> {
        let access = match access_log {
            None => None,
            Some("-") => Some(AccessSink::Stdout),
            Some(path) => Some(AccessSink::File(Mutex::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            ))),
        };
        Ok(RequestObs {
            next_id: AtomicU64::new(1),
            latency: (0..Endpoint::COUNT).map(|_| Histogram::new()).collect(),
            queue_wait: (0..Endpoint::COUNT).map(|_| Histogram::new()).collect(),
            body_bytes: (0..Endpoint::COUNT).map(|_| Histogram::new()).collect(),
            compile_ns: Histogram::new(),
            eval_hit_ns: Histogram::new(),
            eval_miss_ns: Histogram::new(),
            access,
            lines_logged: AtomicU64::new(0),
            slow: Mutex::new(Vec::new()),
            slow_keep,
        })
    }

    /// Allocates the next monotonic request id (the first id is 1).
    pub fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Access-log lines written so far.
    pub fn lines_logged(&self) -> u64 {
        self.lines_logged.load(Ordering::Relaxed)
    }

    /// Records a completed (or shed / panicked) request: histograms,
    /// the access-log line, and slow-ring admission.
    pub fn observe(&self, record: &RequestRecord, spans: Vec<TraceEvent>) {
        if record.disposition != "shed" {
            let ix = record.endpoint.index();
            self.latency[ix].record(record.timings.total_ns);
            self.queue_wait[ix].record(record.timings.queue_wait_ns);
            self.body_bytes[ix].record(record.body_bytes);
            if record.timings.compile_ns > 0 {
                self.compile_ns.record(record.timings.compile_ns);
            }
            match record.cache {
                Some("hit") => self.eval_hit_ns.record(record.timings.eval_ns),
                Some("miss") | Some("bypass") => self.eval_miss_ns.record(record.timings.eval_ns),
                _ => {}
            }
            self.admit_slow(record, spans);
        }
        self.log_line(&record.access_line());
    }

    fn log_line(&self, line: &str) {
        let Some(sink) = &self.access else {
            return;
        };
        // Count before writing: "logged" means "the daemon accounted
        // for it", and a torn write at crash still shows intent.
        self.lines_logged.fetch_add(1, Ordering::Relaxed);
        match sink {
            AccessSink::Stdout => {
                let stdout = std::io::stdout();
                let mut lock = stdout.lock();
                let _ = writeln!(lock, "{line}");
                let _ = lock.flush();
            }
            AccessSink::File(file) => {
                let mut file = file.lock().unwrap_or_else(|e| e.into_inner());
                let _ = writeln!(file, "{line}");
                let _ = file.flush();
            }
        }
    }

    /// Keeps the `slow_keep` slowest requests by total time.
    fn admit_slow(&self, record: &RequestRecord, spans: Vec<TraceEvent>) {
        if self.slow_keep == 0 {
            return;
        }
        let mut slow = self.slow.lock().unwrap_or_else(|e| e.into_inner());
        if slow.len() < self.slow_keep {
            slow.push(SlowEntry {
                record: record.clone(),
                spans,
            });
        } else if let Some((ix, fastest)) = slow
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.record.timings.total_ns)
        {
            if record.timings.total_ns > fastest.record.timings.total_ns {
                slow[ix] = SlowEntry {
                    record: record.clone(),
                    spans,
                };
            }
        }
    }

    /// The slow ring, slowest first.
    pub fn slowest(&self) -> Vec<SlowEntry> {
        let mut out = self.slow.lock().unwrap_or_else(|e| e.into_inner()).clone();
        out.sort_by_key(|e| std::cmp::Reverse(e.record.timings.total_ns));
        out
    }

    /// Every endpoint's `(latency, queue-wait, body-size)` snapshots,
    /// for rendering; in [`Endpoint::ALL`] order.
    pub fn endpoint_snapshots(
        &self,
    ) -> Vec<(
        Endpoint,
        fmperf_obs::HistogramSnapshot,
        fmperf_obs::HistogramSnapshot,
        fmperf_obs::HistogramSnapshot,
    )> {
        Endpoint::ALL
            .iter()
            .map(|&e| {
                let ix = e.index();
                (
                    e,
                    self.latency[ix].snapshot(),
                    self.queue_wait[ix].snapshot(),
                    self.body_bytes[ix].snapshot(),
                )
            })
            .collect()
    }

    /// The compile-time histogram snapshot (cold requests only).
    pub fn compile_snapshot(&self) -> fmperf_obs::HistogramSnapshot {
        self.compile_ns.snapshot()
    }

    /// The eval-time histogram snapshot for one cache disposition
    /// (`hit`, or everything else pooled as `miss`).
    pub fn eval_snapshot(&self, hit: bool) -> fmperf_obs::HistogramSnapshot {
        if hit {
            self.eval_hit_ns.snapshot()
        } else {
            self.eval_miss_ns.snapshot()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_classification() {
        assert_eq!(Endpoint::classify("/v1/analyze"), Endpoint::Analyze);
        assert_eq!(Endpoint::classify("/v1/sweep"), Endpoint::Sweep);
        assert_eq!(Endpoint::classify("/v1/campaign"), Endpoint::Campaign);
        assert_eq!(Endpoint::classify("/metrics"), Endpoint::Ops);
        assert_eq!(Endpoint::classify("/debug/slow"), Endpoint::Ops);
        assert_eq!(Endpoint::classify("/v1/test/panic"), Endpoint::Ops);
        assert_eq!(Endpoint::classify("/nope"), Endpoint::Other);
        for (i, e) in Endpoint::ALL.iter().enumerate() {
            assert_eq!(e.index(), i);
        }
    }

    #[test]
    fn ids_are_monotonic_from_one() {
        let obs = RequestObs::new(None, 4).unwrap();
        assert_eq!(obs.next_id(), 1);
        assert_eq!(obs.next_id(), 2);
        assert_eq!(obs.next_id(), 3);
    }

    #[test]
    fn access_line_is_flat_json_with_attribution() {
        let mut r = RequestRecord::new(7, 1_000);
        r.method = "POST".into();
        r.path = "/v1/analyze".into();
        r.endpoint = Endpoint::Analyze;
        r.status = 200;
        r.body_bytes = 321;
        r.model_hash = Some("sha256:ab".into());
        r.engine = Some("mtbdd".into());
        r.cache = Some("hit");
        r.timings.parse_ns = 10;
        r.timings.eval_ns = 20;
        r.timings.total_ns = 1_030;
        let line = r.access_line();
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        for needle in [
            "\"id\": 7",
            "\"method\": \"POST\"",
            "\"path\": \"/v1/analyze\"",
            "\"endpoint\": \"analyze\"",
            "\"status\": 200",
            "\"disposition\": \"ok\"",
            "\"model_hash\": \"sha256:ab\"",
            "\"engine\": \"mtbdd\"",
            "\"cache\": \"hit\"",
            "\"queue_wait_ns\": 1000",
            "\"parse_ns\": 10",
            "\"compile_ns\": 0",
            "\"eval_ns\": 20",
            "\"total_ns\": 1030",
        ] {
            assert!(line.contains(needle), "missing {needle} in {line}");
        }
    }

    #[test]
    fn slow_ring_keeps_the_n_slowest() {
        let obs = RequestObs::new(None, 2).unwrap();
        for (id, total) in [(1u64, 50u64), (2, 500), (3, 10), (4, 300)] {
            let mut r = RequestRecord::new(id, 0);
            r.endpoint = Endpoint::Analyze;
            r.timings.total_ns = total;
            obs.observe(&r, Vec::new());
        }
        let slow = obs.slowest();
        assert_eq!(slow.len(), 2);
        assert_eq!(slow[0].record.id, 2);
        assert_eq!(slow[1].record.id, 4);
    }

    #[test]
    fn shed_requests_log_but_do_not_pollute_histograms() {
        let dir = std::env::temp_dir().join(format!("fmperf-obs-test-{}", std::process::id()));
        let _ = std::fs::remove_file(&dir);
        let obs = RequestObs::new(Some(dir.to_str().unwrap()), 4).unwrap();
        let mut shed = RequestRecord::new(1, 0);
        shed.disposition = "shed";
        shed.status = 503;
        obs.observe(&shed, Vec::new());
        let mut ok = RequestRecord::new(2, 5);
        ok.endpoint = Endpoint::Analyze;
        ok.status = 200;
        ok.timings.total_ns = 100;
        obs.observe(&ok, Vec::new());
        assert_eq!(obs.lines_logged(), 2);
        let snaps = obs.endpoint_snapshots();
        let analyze = &snaps[0];
        assert_eq!(analyze.1.count(), 1, "only the served request counted");
        let logged = std::fs::read_to_string(&dir).unwrap();
        assert_eq!(logged.lines().count(), 2);
        assert!(logged.contains("\"disposition\": \"shed\""), "{logged}");
        assert!(logged.contains("\"disposition\": \"ok\""), "{logged}");
        let _ = std::fs::remove_file(&dir);
    }
}
