//! The content-hash-keyed LRU cache of compiled MTBDD artifacts.
//!
//! [`CompiledMtbdd`] is fully owned (no lifetimes), so artifacts are
//! shared as `Arc`s across worker threads; the per-request fault graph
//! and knowledge table are rebuilt cheaply instead.  Capacity is
//! byte-approximate: a diagram's cost is dominated by its decision
//! nodes and configuration table, both of which the artifact reports.

use fmperf_core::CompiledMtbdd;
use fmperf_ftlqn::KnowPolicy;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// A cache key: the model's content hash plus every knob that changes
/// the compiled diagram.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Stable model content hash (`sha256:…`).
    pub hash: String,
    /// Knowledge policy the diagram was compiled under.
    pub policy_any: bool,
    /// Unmonitored-known semantics the diagram was compiled under.
    pub unmonitored_known: bool,
}

impl CacheKey {
    /// Builds a key from the request's knobs.
    pub fn new(hash: &str, policy: KnowPolicy, unmonitored_known: bool) -> CacheKey {
        CacheKey {
            hash: hash.to_string(),
            policy_any: matches!(policy, KnowPolicy::AnyFailedComponent),
            unmonitored_known,
        }
    }
}

/// Approximate resident size of a compiled artifact, in bytes: decision
/// nodes (two branch indices + a variable), the configuration table and
/// the availability vector.
pub fn approx_artifact_bytes(compiled: &CompiledMtbdd) -> usize {
    compiled.node_count() * 32
        + compiled.configurations().len() * 64
        + compiled.baseline_up().len() * 8
}

struct Entry {
    artifact: Arc<CompiledMtbdd>,
    bytes: usize,
    last_used: u64,
    inserted: Instant,
}

/// One cached artifact as seen by the observability endpoints
/// (`/debug/cache` and the per-entry age gauges on `/metrics`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntryInfo {
    /// The entry's cache key.
    pub key: CacheKey,
    /// Approximate resident bytes.
    pub bytes: usize,
    /// Seconds since the artifact was (re)inserted.
    pub age_seconds: u64,
    /// LRU tick of the last lookup or insert that touched the entry.
    pub last_used: u64,
}

struct CacheState {
    map: HashMap<CacheKey, Entry>,
    bytes: usize,
    tick: u64,
}

/// A byte-bounded LRU of compiled artifacts, safe to share across
/// worker threads.  A panicking worker can never poison it: the inner
/// lock is recovered on poison (the state is a plain map plus counters,
/// valid at every suspension point).
pub struct ArtifactCache {
    state: Mutex<CacheState>,
    capacity_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ArtifactCache {
    /// A cache bounded at `capacity_bytes`; zero disables caching.
    pub fn new(capacity_bytes: usize) -> ArtifactCache {
        ArtifactCache {
            state: Mutex::new(CacheState {
                map: HashMap::new(),
                bytes: 0,
                tick: 0,
            }),
            capacity_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, CacheState> {
        // Poison-proof: a panic between operations leaves the map
        // consistent, so recovery is always safe.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks an artifact up, counting a hit or miss and refreshing its
    /// LRU position.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CompiledMtbdd>> {
        if self.capacity_bytes == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut state = self.lock();
        state.tick += 1;
        let tick = state.tick;
        match state.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.artifact))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts an artifact, evicting least-recently-used entries until
    /// the cache fits its capacity.  An artifact larger than the whole
    /// cache is simply not retained.
    pub fn insert(&self, key: CacheKey, artifact: Arc<CompiledMtbdd>) {
        let bytes = approx_artifact_bytes(&artifact);
        if bytes > self.capacity_bytes {
            return;
        }
        let mut state = self.lock();
        state.tick += 1;
        let tick = state.tick;
        if let Some(old) = state.map.remove(&key) {
            state.bytes -= old.bytes;
        }
        while state.bytes + bytes > self.capacity_bytes {
            let Some(lru_key) = state
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(evicted) = state.map.remove(&lru_key) {
                state.bytes -= evicted.bytes;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        state.bytes += bytes;
        state.map.insert(
            key,
            Entry {
                artifact,
                bytes,
                last_used: tick,
                inserted: Instant::now(),
            },
        );
    }

    /// Number of cached artifacts.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident bytes.
    pub fn bytes(&self) -> usize {
        self.lock().bytes
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed (or found caching disabled).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted to make room (capacity pressure, not
    /// replacement of the same key).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// The configured capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// A snapshot of every cached entry, most recently used first.
    pub fn entries(&self) -> Vec<CacheEntryInfo> {
        let state = self.lock();
        let mut out: Vec<CacheEntryInfo> = state
            .map
            .iter()
            .map(|(key, e)| CacheEntryInfo {
                key: key.clone(),
                bytes: e.bytes,
                age_seconds: e.inserted.elapsed().as_secs(),
                last_used: e.last_used,
            })
            .collect();
        out.sort_by_key(|e| std::cmp::Reverse(e.last_used));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmperf_core::Analysis;
    use fmperf_mama::ComponentSpace;
    use fmperf_text::parse;

    fn artifact() -> Arc<CompiledMtbdd> {
        let m = parse(
            "processor pc cores inf\nprocessor p1 fail 0.1\nusers u on pc\n\
             task s on p1 fail 0.1\nentry eu of u\nentry es of s demand 0.2\ncall eu -> es\n",
        )
        .unwrap();
        let graph = fmperf_ftlqn::FaultGraph::build(&m.app).unwrap();
        let space = ComponentSpace::app_only(&m.app);
        let compiled = Analysis::new(&graph, &space).compile_mtbdd();
        Arc::new(compiled)
    }

    fn key(n: u32) -> CacheKey {
        CacheKey::new(
            &format!("sha256:{n:064}"),
            KnowPolicy::AnyFailedComponent,
            false,
        )
    }

    #[test]
    fn hit_after_insert() {
        let cache = ArtifactCache::new(1 << 20);
        let a = artifact();
        cache.insert(key(1), Arc::clone(&a));
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let a = artifact();
        let one = approx_artifact_bytes(&a);
        // Room for exactly two artifacts.
        let cache = ArtifactCache::new(one * 2 + 1);
        cache.insert(key(1), Arc::clone(&a));
        cache.insert(key(2), Arc::clone(&a));
        // Touch 1 so 2 is the LRU.
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(3), Arc::clone(&a));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_none(), "LRU entry evicted");
        assert!(cache.get(&key(3)).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = ArtifactCache::new(0);
        cache.insert(key(1), artifact());
        assert!(cache.get(&key(1)).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn evictions_are_counted_and_entries_are_observable() {
        let a = artifact();
        let one = approx_artifact_bytes(&a);
        let cache = ArtifactCache::new(one * 2 + 1);
        cache.insert(key(1), Arc::clone(&a));
        cache.insert(key(2), Arc::clone(&a));
        assert_eq!(cache.evictions(), 0);
        cache.insert(key(3), Arc::clone(&a));
        assert_eq!(cache.evictions(), 1, "capacity pressure evicted one");
        // Replacing an existing key is not an eviction.
        cache.insert(key(3), Arc::clone(&a));
        assert_eq!(cache.evictions(), 1);
        let entries = cache.entries();
        assert_eq!(entries.len(), 2);
        assert!(entries[0].last_used >= entries[1].last_used, "MRU first");
        for e in &entries {
            assert_eq!(e.bytes, one);
            assert!(e.age_seconds < 60, "fresh entries have small ages");
            assert!(e.key.hash.starts_with("sha256:"));
        }
        assert_eq!(cache.capacity_bytes(), one * 2 + 1);
    }

    #[test]
    fn distinct_policies_are_distinct_keys() {
        let a = CacheKey::new("sha256:x", KnowPolicy::AnyFailedComponent, false);
        let b = CacheKey::new("sha256:x", KnowPolicy::AllFailedComponents, false);
        let c = CacheKey::new("sha256:x", KnowPolicy::AnyFailedComponent, true);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
