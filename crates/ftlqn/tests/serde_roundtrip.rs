//! Serde round-trips for FTLQN models: the deserialised model must yield
//! the identical fault-propagation analysis.

use fmperf_ftlqn::examples::das_woodside_system;
use fmperf_ftlqn::{FaultGraph, FtlqnModel, KnowPolicy, PerfectKnowledge};

/// Under the hermetic offline build, `serde_json` is the vendored shim
/// at `compat/serde_json`, which cannot serialise; skip instead of
/// failing so the round-trips light up again under the real crates.
macro_rules! json_or_skip {
    ($expr:expr) => {
        match $expr {
            Ok(v) => v,
            Err(e) if e.to_string().contains("serde_json shim") => {
                eprintln!("skipping: {e}");
                return;
            }
            Err(e) => panic!("{e}"),
        }
    };
}

#[test]
fn paper_system_roundtrips_through_json() {
    let sys = das_woodside_system();
    let json = json_or_skip!(serde_json::to_string(&sys.model));
    let back: FtlqnModel = serde_json::from_str(&json).expect("deserialises");

    assert_eq!(back.task_count(), sys.model.task_count());
    assert_eq!(back.entry_count(), sys.model.entry_count());
    assert_eq!(back.service_count(), sys.model.service_count());
    assert_eq!(back.component_count(), sys.model.component_count());
    back.validate().unwrap();

    // Identical configurations state by state over the whole space.
    let g1 = FaultGraph::build(&sys.model).unwrap();
    let g2 = FaultGraph::build(&back).unwrap();
    let n = sys.model.component_count();
    for mask in 0..(1u32 << n.min(16)) {
        let state: Vec<bool> = (0..n).map(|i| mask & (1 << (i % 16)) != 0).collect();
        let c1 = g1.configuration(&state, &PerfectKnowledge, KnowPolicy::AnyFailedComponent);
        let c2 = g2.configuration(&state, &PerfectKnowledge, KnowPolicy::AnyFailedComponent);
        assert_eq!(c1, c2, "state {mask:#x}");
    }
}

#[test]
fn fail_probs_survive_roundtrip() {
    let sys = das_woodside_system();
    let json = json_or_skip!(serde_json::to_string(&sys.model));
    let back: FtlqnModel = serde_json::from_str(&json).unwrap();
    for c in sys.model.components() {
        assert_eq!(sys.model.fail_prob(c), back.fail_prob(c));
        assert_eq!(sys.model.component_name(c), back.component_name(c));
    }
}
