//! # fmperf-ftlqn
//!
//! Fault-Tolerant Layered Queueing Network (FTLQN) models — the
//! application-side notation of the DSN 2002 paper (§2, §3).
//!
//! An FTLQN is an ordinary layered client/server model (tasks with
//! entries, blocking requests, processors) extended with:
//!
//! * per-component **failure probabilities** (tasks, processors and,
//!   as an extension, network links);
//! * **services** — redirection points with priority-ordered alternative
//!   target entries (`#1`, `#2`, …), the paper's mechanism for modelling
//!   backup servers.
//!
//! From an FTLQN this crate derives the **fault propagation graph** (§3,
//! Fig. 5) — an AND-OR graph whose leaves are components, whose AND nodes
//! are entries and whose OR nodes are the services and the root — and
//! evaluates, for a given up/down state of every component and a given
//! *knowledge oracle*, which **operational configuration** the system
//! reaches (Definition 1 plus the `know`-gated service selection rule).
//! A configuration can then be lowered to a plain [`fmperf_lqn::LqnModel`]
//! and solved for throughput.
//!
//! The knowledge oracle abstracts the management architecture: the
//! perfect-knowledge oracle reproduces the earlier IPDS'98 analysis, while
//! `fmperf-mama` provides oracles derived from MAMA architectures.
//!
//! ```
//! use fmperf_ftlqn::{examples, KnowledgeOracle, KnowPolicy, PerfectKnowledge};
//!
//! let system = examples::das_woodside_system();
//! let graph = system.fault_graph().unwrap();
//! // All components up: both user groups run on the primary server.
//! let all_up = vec![true; system.model.component_count()];
//! let cfg = graph.configuration(&all_up, &PerfectKnowledge, KnowPolicy::AllFailedComponents);
//! assert!(!cfg.is_failed());
//! assert_eq!(cfg.user_chains.len(), 2);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dot;
pub mod examples;
pub mod faultgraph;
pub mod lower;
pub mod model;

pub use faultgraph::{
    Configuration, FaultGraph, KnowPolicy, KnowledgeOracle, MaskOracleGate, MaskServiceGate,
    PerfectKnowledge,
};
pub use lower::LoweredLqn;
pub use model::{
    Component, FtEntryId, FtProcId, FtTaskId, FtlqnError, FtlqnModel, LinkId, ModelRef,
    RequestTarget, ServiceId,
};
// The builder API takes multiplicities; re-exported so downstream model
// generators need not depend on `fmperf-lqn` directly.
pub use fmperf_lqn::Multiplicity;
