//! Canonical example systems, including the paper's Figure 1 model.

use crate::model::{FtEntryId, FtProcId, FtTaskId, FtlqnModel, RequestTarget, ServiceId};
use fmperf_lqn::Multiplicity;

/// The client-server system of the paper's Figure 1, with every id
/// exposed for test and benchmark use.
///
/// Two user groups (`UserA` × 50, `UserB` × 100) access departmental
/// applications (`AppA`, `AppB`), which read enterprise data through
/// `serviceA`/`serviceB`: primary target `Server1` (entries `eA-1`,
/// `eB-1`), backup `Server2` (entries `eA-2`, `eB-2`).
#[derive(Debug, Clone)]
pub struct DasWoodsideSystem {
    /// The assembled model.
    pub model: FtlqnModel,
    /// UserA reference task (50 users, perfectly reliable).
    pub user_a: FtTaskId,
    /// UserB reference task (100 users, perfectly reliable).
    pub user_b: FtTaskId,
    /// Department A application task.
    pub app_a: FtTaskId,
    /// Department B application task.
    pub app_b: FtTaskId,
    /// Primary data server.
    pub server1: FtTaskId,
    /// Backup data server.
    pub server2: FtTaskId,
    /// Processor of UserA (perfectly reliable).
    pub proc_a: FtProcId,
    /// Processor of UserB (perfectly reliable).
    pub proc_b: FtProcId,
    /// Processor of AppA.
    pub proc1: FtProcId,
    /// Processor of AppB.
    pub proc2: FtProcId,
    /// Processor of Server1.
    pub proc3: FtProcId,
    /// Processor of Server2.
    pub proc4: FtProcId,
    /// UserA's entry.
    pub e_user_a: FtEntryId,
    /// UserB's entry.
    pub e_user_b: FtEntryId,
    /// AppA's entry (demand 1 s).
    pub e_a: FtEntryId,
    /// AppB's entry (demand 0.5 s).
    pub e_b: FtEntryId,
    /// Server1 entry serving A (demand 1 s).
    pub e_a1: FtEntryId,
    /// Server1 entry serving B (demand 0.5 s).
    pub e_b1: FtEntryId,
    /// Server2 entry serving A (demand 1 s).
    pub e_a2: FtEntryId,
    /// Server2 entry serving B (demand 0.5 s).
    pub e_b2: FtEntryId,
    /// Data service used by AppA (#1 = `eA-1`, #2 = `eA-2`).
    pub service_a: ServiceId,
    /// Data service used by AppB (#1 = `eB-1`, #2 = `eB-2`).
    pub service_b: ServiceId,
}

/// Parameters for [`das_woodside_system_with`].
#[derive(Debug, Clone, Copy)]
pub struct DasWoodsideParams {
    /// Failure probability of AppA, AppB, Server1, Server2, proc1–proc4
    /// (the paper uses 0.1).
    pub fail_prob: f64,
    /// UserA population (paper: 50).
    pub users_a: u32,
    /// UserB population (paper: 100).
    pub users_b: u32,
    /// User think time (paper: none given; 0 makes users saturate the
    /// system, which matches the reported throughputs).
    pub think_time: f64,
}

impl Default for DasWoodsideParams {
    fn default() -> Self {
        DasWoodsideParams {
            fail_prob: 0.1,
            users_a: 50,
            users_b: 100,
            think_time: 0.0,
        }
    }
}

/// Builds the paper's Figure 1 system with its Section 6.1 parameters.
pub fn das_woodside_system() -> DasWoodsideSystem {
    das_woodside_system_with(DasWoodsideParams::default())
}

/// Builds the Figure 1 system with custom parameters (for sweeps and
/// sensitivity studies).
pub fn das_woodside_system_with(params: DasWoodsideParams) -> DasWoodsideSystem {
    let p = params.fail_prob;
    let mut m = FtlqnModel::new();
    let proc_a = m.add_processor("procA", 0.0, Multiplicity::Infinite);
    let proc_b = m.add_processor("procB", 0.0, Multiplicity::Infinite);
    let proc1 = m.add_processor("proc1", p, Multiplicity::Finite(1));
    let proc2 = m.add_processor("proc2", p, Multiplicity::Finite(1));
    let proc3 = m.add_processor("proc3", p, Multiplicity::Finite(1));
    let proc4 = m.add_processor("proc4", p, Multiplicity::Finite(1));

    let user_a = m.add_reference_task("UserA", proc_a, 0.0, params.users_a, params.think_time);
    let user_b = m.add_reference_task("UserB", proc_b, 0.0, params.users_b, params.think_time);
    let app_a = m.add_task("AppA", proc1, p, Multiplicity::Finite(1));
    let app_b = m.add_task("AppB", proc2, p, Multiplicity::Finite(1));
    let server1 = m.add_task("Server1", proc3, p, Multiplicity::Finite(1));
    let server2 = m.add_task("Server2", proc4, p, Multiplicity::Finite(1));

    let e_user_a = m.add_entry("userA", user_a, 0.0);
    let e_user_b = m.add_entry("userB", user_b, 0.0);
    let e_a = m.add_entry("eA", app_a, 1.0);
    let e_b = m.add_entry("eB", app_b, 0.5);
    let e_a1 = m.add_entry("eA-1", server1, 1.0);
    let e_b1 = m.add_entry("eB-1", server1, 0.5);
    let e_a2 = m.add_entry("eA-2", server2, 1.0);
    let e_b2 = m.add_entry("eB-2", server2, 0.5);

    let service_a = m.add_service("serviceA");
    m.add_alternative(service_a, e_a1, None);
    m.add_alternative(service_a, e_a2, None);
    let service_b = m.add_service("serviceB");
    m.add_alternative(service_b, e_b1, None);
    m.add_alternative(service_b, e_b2, None);

    m.add_request(e_user_a, RequestTarget::Entry(e_a), 1.0, None);
    m.add_request(e_user_b, RequestTarget::Entry(e_b), 1.0, None);
    m.add_request(e_a, RequestTarget::Service(service_a), 1.0, None);
    m.add_request(e_b, RequestTarget::Service(service_b), 1.0, None);

    debug_assert!(m.validate().is_ok());
    DasWoodsideSystem {
        model: m,
        user_a,
        user_b,
        app_a,
        app_b,
        server1,
        server2,
        proc_a,
        proc_b,
        proc1,
        proc2,
        proc3,
        proc4,
        e_user_a,
        e_user_b,
        e_a,
        e_b,
        e_a1,
        e_b1,
        e_a2,
        e_b2,
        service_a,
        service_b,
    }
}

impl DasWoodsideSystem {
    /// Convenience: the fault propagation graph of this system.
    ///
    /// # Errors
    ///
    /// Propagates validation failures (none for the canonical builders).
    pub fn fault_graph(&self) -> Result<crate::faultgraph::FaultGraph<'_>, crate::FtlqnError> {
        crate::faultgraph::FaultGraph::build(&self.model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultgraph::{KnowPolicy, PerfectKnowledge};
    use crate::model::Component;

    #[test]
    fn paper_system_validates() {
        let s = das_woodside_system();
        s.model.validate().unwrap();
        assert_eq!(s.model.component_count(), 6 + 6); // 6 tasks + 6 procs
    }

    #[test]
    fn fallible_component_count_matches_paper() {
        // The paper's perfect-knowledge case enumerates 2^8 = 256 states:
        // AppA, AppB, Server1, Server2, proc1..proc4 are fallible.
        let s = das_woodside_system();
        let fallible = s
            .model
            .components()
            .filter(|&c| s.model.fail_prob(c) > 0.0)
            .count();
        assert_eq!(fallible, 8);
    }

    #[test]
    fn all_up_gives_configuration_c5() {
        let s = das_woodside_system();
        let g = s.fault_graph().unwrap();
        let state = vec![true; s.model.component_count()];
        let cfg = g.configuration(&state, &PerfectKnowledge, KnowPolicy::AllFailedComponents);
        assert_eq!(cfg.user_chains.len(), 2);
        assert_eq!(cfg.used_services[&s.service_a], s.e_a1);
        assert_eq!(cfg.used_services[&s.service_b], s.e_b1);
    }

    #[test]
    fn proc3_down_gives_configuration_c6_under_perfect_knowledge() {
        let s = das_woodside_system();
        let g = s.fault_graph().unwrap();
        let mut state = vec![true; s.model.component_count()];
        state[s.model.component_index(Component::Processor(s.proc3))] = false;
        let cfg = g.configuration(&state, &PerfectKnowledge, KnowPolicy::AllFailedComponents);
        assert_eq!(cfg.used_services[&s.service_a], s.e_a2);
        assert_eq!(cfg.used_services[&s.service_b], s.e_b2);
        assert_eq!(cfg.user_chains.len(), 2);
    }

    #[test]
    fn parameterised_builder_applies_params() {
        let s = das_woodside_system_with(DasWoodsideParams {
            fail_prob: 0.25,
            users_a: 10,
            users_b: 20,
            think_time: 1.5,
        });
        assert_eq!(s.model.fail_prob(Component::Task(s.app_a)), 0.25);
        assert_eq!(s.model.fail_prob(Component::Task(s.user_a)), 0.0);
    }
}
