//! Lowering an operational configuration to a plain LQN.
//!
//! Step 5 of the paper's performability algorithm: "Each `C_i ∈ Z`
//! determines the service alternatives, so it defines an ordinary Layered
//! Queueing Network model."  This module materialises that LQN: only the
//! tasks, processors and entries *in use* appear, and every service
//! request is rewired to the alternative the configuration selected.

use crate::faultgraph::Configuration;
use crate::model::{FtEntryId, FtProcId, FtTaskId, FtTaskKind, FtlqnModel, RequestTarget};
use fmperf_lqn::{EntryId, LqnModel, ModelError, ProcessorId, TaskId};
use std::fmt;

/// Errors from [`lower`].
#[derive(Debug, Clone, PartialEq)]
pub enum LowerError {
    /// The configuration has no operational user chain; there is no LQN to
    /// build (its reward is zero by definition).
    FailedConfiguration,
    /// The generated LQN failed validation — indicates an inconsistent
    /// configuration for this model (e.g. produced by a different model).
    Inconsistent(ModelError),
    /// The configuration references an entry (as a call target or service
    /// choice) that it does not itself mark as used.
    MissingEntry(FtEntryId),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::FailedConfiguration => {
                write!(f, "cannot lower the failed configuration to an LQN")
            }
            LowerError::Inconsistent(e) => {
                write!(f, "configuration inconsistent with model: {e}")
            }
            LowerError::MissingEntry(e) => {
                write!(f, "configuration references unused entry e{}", e.index())
            }
        }
    }
}

impl std::error::Error for LowerError {}

/// An LQN generated from one operational configuration, with id mappings
/// back to the FTLQN.
#[derive(Debug, Clone)]
pub struct LoweredLqn {
    /// The generated model (validated).
    pub model: LqnModel,
    entry_map: Vec<Option<EntryId>>,
    task_map: Vec<Option<TaskId>>,
    proc_map: Vec<Option<ProcessorId>>,
}

impl LoweredLqn {
    /// The LQN entry corresponding to an FTLQN entry, if in use.
    pub fn entry(&self, e: FtEntryId) -> Option<EntryId> {
        self.entry_map[e.index()]
    }
    /// The LQN task corresponding to an FTLQN task, if in use.
    pub fn task(&self, t: FtTaskId) -> Option<TaskId> {
        self.task_map[t.index()]
    }
    /// The LQN processor corresponding to an FTLQN processor, if in use.
    pub fn processor(&self, p: FtProcId) -> Option<ProcessorId> {
        self.proc_map[p.index()]
    }
}

/// Builds the ordinary LQN defined by `config` (paper §5, step 5).
///
/// # Errors
///
/// [`LowerError::FailedConfiguration`] when `config.is_failed()`;
/// [`LowerError::Inconsistent`] if the configuration does not fit `model`.
pub fn lower(model: &FtlqnModel, config: &Configuration) -> Result<LoweredLqn, LowerError> {
    if config.is_failed() {
        return Err(LowerError::FailedConfiguration);
    }
    let mut lqn = LqnModel::new();
    let mut entry_map: Vec<Option<EntryId>> = vec![None; model.entry_count()];
    let mut task_map: Vec<Option<TaskId>> = vec![None; model.task_count()];
    let mut proc_map: Vec<Option<ProcessorId>> = vec![None; model.processor_count()];

    // Materialise processors and tasks hosting used entries.
    for &e in &config.used_entries {
        let t = model.task_of(e);
        if task_map[t.index()].is_none() {
            let p = model.processor_of(t);
            if proc_map[p.index()].is_none() {
                proc_map[p.index()] = Some(lqn.add_processor(
                    model.processor_name(p),
                    model.processors[p.index()].multiplicity,
                ));
            }
            let lp = proc_map[p.index()].expect("just created");
            let task = &model.tasks[t.index()];
            let lt = match task.kind {
                FtTaskKind::Reference {
                    population,
                    think_time,
                } => lqn.add_reference_task(&task.name, lp, population, think_time),
                FtTaskKind::Server => lqn.add_task(&task.name, lp, task.multiplicity),
            };
            task_map[t.index()] = Some(lt);
        }
    }
    // Entries (both phases carried through).
    for &e in &config.used_entries {
        let t = model.task_of(e);
        let lt = task_map[t.index()].expect("created above");
        let le = lqn.add_entry(
            model.entry_name(e),
            lt,
            model.entries[e.index()].host_demand,
        );
        let ph2 = model.entries[e.index()].second_phase_demand;
        if ph2 > 0.0 {
            lqn.set_second_phase_demand(le, ph2);
        }
        entry_map[e.index()] = Some(le);
    }
    // Calls, with services rewired to their selected alternative.
    for &e in &config.used_entries {
        let from = entry_map[e.index()].expect("created above");
        for r in &model.entries[e.index()].requests {
            let target_ft = match r.target {
                RequestTarget::Entry(te) => te,
                RequestTarget::Service(s) => match config.used_services.get(&s) {
                    Some(&chosen) => chosen,
                    None => return Err(LowerError::MissingEntry(e)),
                },
            };
            let to = entry_map[target_ft.index()].ok_or(LowerError::MissingEntry(target_ft))?;
            lqn.add_call_in_phase(from, to, r.mean_calls, r.phase)
                .map_err(LowerError::Inconsistent)?;
        }
    }
    lqn.validate().map_err(LowerError::Inconsistent)?;
    Ok(LoweredLqn {
        model: lqn,
        entry_map,
        task_map,
        proc_map,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultgraph::{FaultGraph, KnowPolicy, PerfectKnowledge};
    use crate::model::{Component, FtlqnModel};
    use fmperf_lqn::{solve, Multiplicity};

    fn fixture() -> (FtlqnModel, FtTaskId, FtTaskId, FtTaskId) {
        let mut m = FtlqnModel::new();
        let pc = m.add_processor("pc", 0.0, Multiplicity::Infinite);
        let p1 = m.add_processor("p1", 0.1, Multiplicity::Finite(1));
        let p2 = m.add_processor("p2", 0.1, Multiplicity::Finite(1));
        let users = m.add_reference_task("users", pc, 0.0, 10, 1.0);
        let primary = m.add_task("primary", p1, 0.1, Multiplicity::Finite(1));
        let backup = m.add_task("backup", p2, 0.1, Multiplicity::Finite(1));
        let eu = m.add_entry("cycle", users, 0.0);
        let e1 = m.add_entry("serve1", primary, 0.5);
        let e2 = m.add_entry("serve2", backup, 0.4);
        let svc = m.add_service("data");
        m.add_alternative(svc, e1, None);
        m.add_alternative(svc, e2, None);
        m.add_request(eu, RequestTarget::Service(svc), 1.0, None);
        (m, users, primary, backup)
    }

    #[test]
    fn lowered_primary_configuration_solves() {
        let (m, users, primary, backup) = fixture();
        let g = FaultGraph::build(&m).unwrap();
        let state = vec![true; m.component_count()];
        let cfg = g.configuration(&state, &PerfectKnowledge, KnowPolicy::AllFailedComponents);
        let lowered = lower(&m, &cfg).unwrap();
        assert!(lowered.task(primary).is_some());
        assert!(lowered.task(backup).is_none(), "backup not in use");
        let sol = solve(&lowered.model).unwrap();
        let lt = lowered.task(users).unwrap();
        assert!(sol.task_throughput(lt) > 0.0);
    }

    #[test]
    fn lowered_backup_configuration_uses_backup_demand() {
        let (m, users, primary, backup) = fixture();
        let g = FaultGraph::build(&m).unwrap();
        let mut state = vec![true; m.component_count()];
        state[m.component_index(Component::Task(primary))] = false;
        let cfg = g.configuration(&state, &PerfectKnowledge, KnowPolicy::AllFailedComponents);
        let lowered = lower(&m, &cfg).unwrap();
        assert!(lowered.task(primary).is_none());
        let bt = lowered.task(backup).unwrap();
        let sol = solve(&lowered.model).unwrap();
        assert!(sol.task_throughput(bt) > 0.0);
        let ut = lowered.task(users).unwrap();
        // Backup is faster (0.4 vs 0.5): users should do slightly better
        // than the primary configuration under 10 users and 1s think.
        let primary_cfg = {
            let state = vec![true; m.component_count()];
            let cfg = g.configuration(&state, &PerfectKnowledge, KnowPolicy::AllFailedComponents);
            let l = lower(&m, &cfg).unwrap();
            let s = solve(&l.model).unwrap();
            s.task_throughput(l.task(users).unwrap())
        };
        assert!(sol.task_throughput(ut) >= primary_cfg);
    }

    #[test]
    fn failed_configuration_rejected() {
        let (m, ..) = fixture();
        let cfg = Configuration::default();
        assert_eq!(
            lower(&m, &cfg).unwrap_err(),
            LowerError::FailedConfiguration
        );
    }

    #[test]
    fn mappings_roundtrip_names() {
        let (m, users, primary, _) = fixture();
        let g = FaultGraph::build(&m).unwrap();
        let state = vec![true; m.component_count()];
        let cfg = g.configuration(&state, &PerfectKnowledge, KnowPolicy::AllFailedComponents);
        let lowered = lower(&m, &cfg).unwrap();
        let lt = lowered.task(users).unwrap();
        assert_eq!(lowered.model.task(lt).name, "users");
        let lp = lowered.task(primary).unwrap();
        assert_eq!(lowered.model.task(lp).name, "primary");
    }
}
